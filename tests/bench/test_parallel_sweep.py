"""Parallel sweeps must be byte-identical to serial ones.

``harness.sweep(workers=N)`` fans grid points out over a process pool;
because every simulation point is an independent, deterministic run,
the only observable difference from serial execution is wall-clock
time.  These tests pin that: once with a toy function, and twice with
real experiment sweeps (a Fig.-5 bandwidth grid and a scale-out-style
parallel-write sweep), comparing full row dumps.

Point functions are module-level so the pool can pickle them.
"""

import json

import pytest

from repro.bench.experiments import fig5_bandwidth
from repro.bench.harness import sweep
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload


def _toy_point(a, b):
    return {"sum": a + b, "prod": a * b}


def _write_point(nodes, arch):
    """Aggregate parallel-write bandwidth (bench_scaleout's measurement)."""
    cluster = build_cluster(trojans_cluster(n=nodes, k=1), architecture=arch)
    wl = ParallelIOWorkload(cluster, clients=nodes, op="write", size=1 * MB)
    return {"mb_s": round(wl.run().aggregate_bandwidth_mb_s, 2)}


def _dump(result):
    return json.dumps(result.rows, sort_keys=True)


def test_toy_sweep_parallel_matches_serial():
    grid = {"a": [1, 2, 3], "b": [10, 20]}
    serial = sweep("toy", _toy_point, grid)
    parallel = sweep("toy", _toy_point, grid, workers=3)
    assert _dump(serial) == _dump(parallel)
    assert serial.param_names == parallel.param_names
    assert serial.metric_names == parallel.metric_names


def test_workers_one_and_none_stay_serial():
    grid = {"a": [1], "b": [2]}
    # Closures are fine when no pool is involved.
    res = sweep("t", lambda a, b: {"s": a + b}, grid, workers=1)
    assert res.rows == [{"a": 1, "b": 2, "s": 3}]


def test_fig5_grid_parallel_matches_serial():
    kw = dict(
        archs=("raidx", "nfs"),
        client_counts=(1, 4),
        workloads=("large_read", "small_write"),
    )
    serial = fig5_bandwidth(**kw)
    parallel = fig5_bandwidth(**kw, workers=2)
    assert _dump(serial) == _dump(parallel)


def test_scaleout_grid_parallel_matches_serial():
    grid = {"nodes": [4, 8], "arch": ["raidx", "nfs"]}
    serial = sweep("scaleout_small", _write_point, grid)
    parallel = sweep("scaleout_small", _write_point, grid, workers=4)
    assert _dump(serial) == _dump(parallel)


def test_mismatched_metric_keys_rejected():
    def fn(a):
        return {"x": a} if a < 2 else {"y": a}

    with pytest.raises(ValueError, match="metric keys"):
        sweep("bad", fn, {"a": [1, 2]})


def test_empty_grid_rejected_with_workers():
    with pytest.raises(ValueError):
        sweep("demo", _toy_point, {"a": [], "b": [1]}, workers=2)

"""Bench-test isolation: keep the sweep cache out of default runs.

``fig5_bandwidth`` (and future experiment entry points) default to
``cache=True``; under test that would write ``.bench_cache/`` into the
working directory and could serve rows from a previous run, masking
regressions the test meant to catch.  Disabling the *default-on* path
here keeps every existing test hermetic, while the dedicated cache
tests opt back in by passing an explicit ``SweepCache`` instance
(which :func:`repro.bench.cache.resolve` honours regardless).
"""

import pytest


@pytest.fixture(autouse=True)
def _no_default_sweep_cache(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE", "0")

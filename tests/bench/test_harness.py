"""Experiment sweep harness."""

import pytest

from repro.bench.harness import ExperimentResult, sweep


def test_sweep_cartesian_product():
    calls = []

    def fn(a, b):
        calls.append((a, b))
        return {"sum": a + b}

    res = sweep("demo", fn, {"a": [1, 2], "b": [10, 20]})
    assert len(res.rows) == 4
    assert calls == [(1, 10), (1, 20), (2, 10), (2, 20)]
    assert res.column("sum") == [11, 21, 12, 22]


def test_empty_grid_rejected():
    with pytest.raises(ValueError):
        sweep("demo", lambda a: {"x": a}, {"a": []})


def test_filter_and_pivot():
    res = ExperimentResult("r", ["arch", "n"], ["bw"])
    for arch in ("a", "b"):
        for n in (1, 2):
            res.add({"arch": arch, "n": n}, {"bw": n * 10})
    sub = res.filter(arch="a")
    assert len(sub.rows) == 2
    piv = res.pivot("arch", "n", "bw")
    assert piv["b"][2] == 20


def test_name_clash_rejected():
    res = ExperimentResult("r", ["a"], ["a"])
    with pytest.raises(ValueError):
        res.add({"a": 1}, {"a": 2})


def test_render_contains_values():
    res = ExperimentResult("r", ["n"], ["bw"])
    res.add({"n": 4}, {"bw": 12.5})
    out = res.render("My Table")
    assert "My Table" in out
    assert "12.50" in out

"""The `python -m repro.bench` artifact runner."""

import pytest

from repro.bench.__main__ import ARTIFACTS, main


def test_list_mode(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for key in ARTIFACTS:
        assert key in out


def test_single_artifact(capsys):
    assert main(["t2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "raidx" in out


def test_layout_artifacts(capsys):
    assert main(["f1", "f3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 3" in out
    assert "M0" in out


def test_unknown_artifact_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["f99"])


def test_artifact_table_complete():
    # Every paper artifact id from DESIGN.md's index has a runner, plus
    # the write-path trace demo, the scale sweep, and the telemetry
    # report.
    assert set(ARTIFACTS) == {"t2", "f1", "f3", "f5", "t3", "f6", "f7",
                              "c1", "tr", "sc", "report"}
    for _title, fn in ARTIFACTS.values():
        assert callable(fn)


def test_report_artifact_not_in_default_run():
    from repro.bench.__main__ import _ON_REQUEST

    assert "report" in _ON_REQUEST


def test_trace_flag_writes_perfetto_trace(tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "spans.jsonl"
    # --trace with no artifact ids defaults to the 'tr' trace demo.
    assert main([
        "--trace", str(trace_path),
        "--jsonl", str(jsonl_path),
        "--metrics",
    ]) == 0
    out = capsys.readouterr().out
    assert "Write-path trace" in out
    assert "Cluster-wide metrics" in out

    doc = json.loads(trace_path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    names = {
        e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"
    }
    for kind in ("disk.queue_wait", "disk.service", "net.tx", "net.rx",
                 "lock.wait", "mirror.flush"):
        assert kind in names, f"missing {kind} in exported trace"
    assert jsonl_path.read_text().count("\n") == len(
        [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    )


def test_trace_flag_honours_sampling(tmp_path, capsys):
    import json

    full_path = tmp_path / "full.json"
    thin_path = tmp_path / "thin.json"
    assert main(["--trace", str(full_path)]) == 0
    assert main([
        "--trace", str(thin_path), "--sample-rate", "0.2",
        "--sample-seed", "7",
    ]) == 0
    capsys.readouterr()
    n_full = len(json.loads(full_path.read_text())["traceEvents"])
    n_thin = len(json.loads(thin_path.read_text())["traceEvents"])
    assert 0 < n_thin < n_full


def test_counter_tracks_in_exported_trace(tmp_path):
    import json

    trace_path = tmp_path / "trace.json"
    assert main(["--trace", str(trace_path)]) == 0
    counters = [
        e for e in json.loads(trace_path.read_text())["traceEvents"]
        if e.get("ph") == "C"
    ]
    names = {e["name"] for e in counters}
    assert any(n.endswith(".queue_depth") for n in names)
    assert any(n.endswith(".occupancy") for n in names)
    assert all("value" in e["args"] for e in counters)


def test_report_artifact_json(capsys):
    assert main([
        "report", "--json", "--shards", "2", "--requests", "400",
        "--no-cache",
    ]) == 0
    import json

    from repro.bench import cache as bench_cache

    bench_cache.set_enabled(True)
    out = capsys.readouterr().out
    payload = out[out.index("{"):out.rindex("}") + 1]
    data = json.loads(payload)
    assert {p["n_nodes"] for p in data["points"]} == {12, 64, 256}
    for p in data["points"]:
        assert p["latency_ms"]["p50"] <= p["latency_ms"]["p99"]
        assert p["disk_util"]["skew"] >= 1.0
        assert p["queue_depth_hw"]["max"] >= 1
    assert data["attribution"]["bottleneck"]["name"]
    assert data["attribution"]["n_spans"] > 0


def test_trace_flag_leaves_tracing_disabled(tmp_path):
    from repro.obs import runtime as obs_runtime

    main(["--trace", str(tmp_path / "t.json")])
    assert not obs_runtime.TRACER.enabled


def test_profile_flag_writes_pstats(tmp_path, capsys):
    import pstats

    out_path = tmp_path / "bench.pstats"
    assert main(["t2", "--profile", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "profile: pstats" in out
    stats = pstats.Stats(str(out_path))
    assert stats.total_calls > 0


def test_no_cache_flag_disables_default(capsys):
    from repro.bench import cache as bench_cache

    try:
        assert main(["t2", "--no-cache"]) == 0
        assert not bench_cache.default_enabled()
    finally:
        bench_cache.set_enabled(True)
    assert "Table 2" in capsys.readouterr().out

"""The `python -m repro.bench` artifact runner."""

import pytest

from repro.bench.__main__ import ARTIFACTS, main


def test_list_mode(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for key in ARTIFACTS:
        assert key in out


def test_single_artifact(capsys):
    assert main(["t2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "raidx" in out


def test_layout_artifacts(capsys):
    assert main(["f1", "f3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 3" in out
    assert "M0" in out


def test_unknown_artifact_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["f99"])


def test_artifact_table_complete():
    # Every paper artifact id from DESIGN.md's index has a runner.
    assert set(ARTIFACTS) == {"t2", "f1", "f3", "f5", "t3", "f6", "f7",
                              "c1"}
    for _title, fn in ARTIFACTS.values():
        assert callable(fn)

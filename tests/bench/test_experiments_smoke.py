"""Smoke tests of the canned experiments (small configurations)."""

import pytest

from repro.bench import experiments as ex


def test_fig1_layout_maps_verify():
    out = ex.fig1_layout_maps()
    assert "raidx" in out and "chained" in out
    assert "M0" in out


def test_fig3_map():
    out = ex.fig3_nk_map(n=4, k=3)
    assert "4x3" in out
    assert "B0" in out


def test_table2_renders():
    out = ex.table2_peak(n=4)
    assert "nB" in out and "raidx" in out


def test_fig5_small_sweep():
    res = ex.fig5_bandwidth(
        archs=("raidx", "nfs"),
        client_counts=(1, 2),
        workloads=("small_write",),
    )
    assert len(res.rows) == 4
    assert all(r["mb_s"] > 0 for r in res.rows)
    out = ex.render_fig5(res)
    assert "small_write" in out


def test_table3_small():
    res = ex.table3_improvement(archs=("raidx",), endpoints=(1, 2))
    assert len(res.rows) == 3
    for row in res.rows:
        assert row["improvement"] > 0


def test_fig7_small():
    res = ex.fig7_checkpoint(
        schemes=(("parallel", None), ("staggered", None)),
        processes=4,
        state_bytes=512 * 1024,
        n=4,
    )
    assert len(res.rows) == 2
    par = res.filter(scheme="parallel").rows[0]
    st = res.filter(scheme="staggered").rows[0]
    assert par["epoch_s"] <= st["epoch_s"]
    assert st["mean_C_s"] <= par["mean_C_s"] * 1.05

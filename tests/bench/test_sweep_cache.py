"""The content-addressed sweep cache: hits, misses, and invalidation.

The cache key is SHA-256 over (canonical config point, experiment name
+ point function, source fingerprint of ``src/repro``), so these tests
pin the contract: identical reruns do zero simulations, any config or
code change re-simulates exactly what changed, corrupted entries heal
themselves, and the escape hatches really escape.
"""

import json

import pytest

from repro.bench import cache as bench_cache
from repro.bench.cache import SweepCache, code_fingerprint
from repro.bench.harness import sweep

CALLS = []


def _point(a, b):
    CALLS.append((a, b))
    return {"sum": a + b, "ratio": a / b}


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


@pytest.fixture
def cache(tmp_path):
    return SweepCache(root=tmp_path / "cache", fingerprint="fp0")


GRID = {"a": [1, 2], "b": [10, 20]}


def test_identical_rerun_hits_every_row(cache):
    first = sweep("exp", _point, GRID, cache=cache)
    assert len(CALLS) == 4
    assert cache.stores == 4 and cache.hits == 0

    second = sweep("exp", _point, GRID, cache=cache)
    assert len(CALLS) == 4  # zero new simulations
    assert cache.hits == 4
    assert second.rows == first.rows
    assert json.dumps(second.rows, sort_keys=True) == json.dumps(
        first.rows, sort_keys=True
    )


def test_config_change_misses_only_new_points(cache):
    sweep("exp", _point, GRID, cache=cache)
    CALLS.clear()
    sweep("exp", _point, {"a": [1, 2, 3], "b": [10, 20]}, cache=cache)
    # The four old points hit; only the a=3 column simulates.
    assert sorted(CALLS) == [(3, 10), (3, 20)]


def test_source_fingerprint_change_invalidates(tmp_path):
    root = tmp_path / "cache"
    sweep("exp", _point, GRID, cache=SweepCache(root, fingerprint="fp0"))
    CALLS.clear()
    sweep("exp", _point, GRID, cache=SweepCache(root, fingerprint="fp1"))
    assert len(CALLS) == 4  # every row re-simulated


def test_experiment_name_partitions_entries(cache):
    sweep("exp", _point, GRID, cache=cache)
    CALLS.clear()
    sweep("other", _point, GRID, cache=cache)
    assert len(CALLS) == 4


def test_corrupted_entry_recovers(cache):
    sweep("exp", _point, GRID, cache=cache)
    # Mangle one entry three ways: truncation, bad JSON, wrong shape.
    files = sorted(cache.root.rglob("*.json"))
    assert len(files) == 4
    files[0].write_text("")
    files[1].write_text("{not json")
    files[2].write_text(json.dumps({"metrics": [1, 2]}))
    CALLS.clear()
    result = sweep("exp", _point, GRID, cache=cache)
    assert len(CALLS) == 3  # the intact entry still hits
    assert all(r["sum"] == r["a"] + r["b"] for r in result.rows)
    # The bad files were overwritten: a rerun is all hits again.
    CALLS.clear()
    sweep("exp", _point, GRID, cache=cache)
    assert CALLS == []


def test_rows_identical_across_hit_and_miss(cache):
    first = sweep("exp", _point, GRID, cache=cache)
    second = sweep("exp", _point, GRID, cache=cache)
    # Float metrics roundtrip exactly through the JSON store.
    for r1, r2 in zip(first.rows, second.rows):
        assert r1 == r2
        assert repr(r1["ratio"]) == repr(r2["ratio"])


def _tuple_point(a):
    CALLS.append((a,))
    return {"pair": (a, a + 1)}


def test_non_roundtrippable_metrics_not_cached(cache):
    sweep("exp", _tuple_point, {"a": [1]}, cache=cache)
    assert cache.stores == 0  # tuple would come back as a list: skip
    CALLS.clear()
    result = sweep("exp", _tuple_point, {"a": [1]}, cache=cache)
    assert len(CALLS) == 1  # recomputed, not served mangled
    assert result.rows[0]["pair"] == (1, 2)


def test_cache_true_respects_kill_switch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path / "c"))
    monkeypatch.setenv("REPRO_BENCH_CACHE", "1")
    sweep("exp", _point, GRID, cache=True)
    CALLS.clear()
    monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
    sweep("exp", _point, GRID, cache=True)
    assert len(CALLS) == 4  # env kill switch: nothing served


def test_no_cache_cli_flag_disables_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path / "c"))
    monkeypatch.setenv("REPRO_BENCH_CACHE", "1")
    sweep("exp", _point, GRID, cache=True)
    CALLS.clear()
    bench_cache.set_enabled(False)  # what --no-cache does
    try:
        sweep("exp", _point, GRID, cache=True)
    finally:
        bench_cache.set_enabled(True)
    assert len(CALLS) == 4


def test_default_is_no_caching(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    sweep("exp", _point, GRID)
    CALLS.clear()
    sweep("exp", _point, GRID)
    assert len(CALLS) == 4  # bare sweep() never caches
    assert not (tmp_path / ".bench_cache").exists()


def test_parallel_sweep_uses_cache(cache):
    serial = sweep("exp", _point, GRID, cache=cache)
    hits_before = cache.hits
    parallel = sweep("exp", _point, GRID, workers=2, cache=cache)
    assert cache.hits == hits_before + 4  # no pool dispatch needed
    assert parallel.rows == serial.rows


def test_code_fingerprint_tracks_source(tmp_path):
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "a.py").write_text("x = 1\n")
    fp1 = code_fingerprint(src)
    assert fp1 == code_fingerprint(src)  # memoized, stable
    bench_cache._fingerprints.clear()
    (src / "a.py").write_text("x = 2\n")
    fp2 = code_fingerprint(src)
    assert fp1 != fp2
    bench_cache._fingerprints.clear()
    (src / "b.py").write_text("")
    assert code_fingerprint(src) != fp2  # new files count too

"""Generous-floor throughput guards for the simulation kernel.

Runs the ``benchmarks/bench_kernel.py`` scenarios at a tiny scale and
asserts events/sec stays above the floors committed in
``BENCH_kernel_floors.json`` — set ~20-50x below the numbers measured
on the development machine (see BENCH_kernel.json).  The point is to
catch *catastrophic* hot-path regressions (an accidental O(n) scan, a
debug hook left on) without ever flaking on slow CI hardware.  Keeping
the floors in a committed file beside the measurements makes a floor
bump an explicit, reviewable change.

Deselect with ``pytest -m "not perf_smoke"``.
"""

import importlib.util
import json
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).parent.parent
_BENCH = _ROOT / "benchmarks" / "bench_kernel.py"
_FLOORS_FILE = _ROOT / "BENCH_kernel_floors.json"


def _load_bench_kernel():
    spec = importlib.util.spec_from_file_location("bench_kernel", _BENCH)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


bench_kernel = _load_bench_kernel()

_FLOORS_DOC = json.loads(_FLOORS_FILE.read_text())
FLOORS = _FLOORS_DOC["floors"]
SCALE = _FLOORS_DOC["scale"]


def test_floors_cover_every_scenario():
    # A new scenario must ship with a floor (and vice versa), so the
    # guard can't silently skip the path it was added to protect.
    assert sorted(FLOORS) == sorted(bench_kernel.SCENARIOS)


@pytest.mark.perf_smoke
@pytest.mark.parametrize("scenario", sorted(FLOORS))
def test_kernel_throughput_floor(scenario):
    stats = bench_kernel.measure(scenario, scale=SCALE, repeats=1)
    assert "error" not in stats, stats
    rate = stats["events_per_sec"]
    assert rate > FLOORS[scenario], (
        f"{scenario}: {rate:,.0f} events/sec is below the generous "
        f"{FLOORS[scenario]:,} floor — the kernel hot path regressed badly"
    )

"""Generous-floor throughput guards for the simulation kernel.

Runs the ``benchmarks/bench_kernel.py`` scenarios at a tiny scale and
asserts events/sec stays above a floor set ~20-50x below the numbers
measured on the development machine (see BENCH_kernel.json).  The point
is to catch *catastrophic* hot-path regressions (an accidental O(n)
scan, a debug hook left on) without ever flaking on slow CI hardware.

Deselect with ``pytest -m "not perf_smoke"``.
"""

import importlib.util
import pathlib

import pytest

_BENCH = pathlib.Path(__file__).parent.parent / "benchmarks" / "bench_kernel.py"


def _load_bench_kernel():
    spec = importlib.util.spec_from_file_location("bench_kernel", _BENCH)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


bench_kernel = _load_bench_kernel()

#: events/sec floors, ~20-50x below measured rates — generous on purpose.
FLOORS = {
    "timeout_chain": 30_000,
    "sleep_chain": 50_000,
    "event_relay": 15_000,
    "store_producer_consumer": 15_000,
}


@pytest.mark.perf_smoke
@pytest.mark.parametrize("scenario", sorted(FLOORS))
def test_kernel_throughput_floor(scenario):
    stats = bench_kernel.measure(scenario, scale=0.05, repeats=1)
    assert "error" not in stats, stats
    rate = stats["events_per_sec"]
    assert rate > FLOORS[scenario], (
        f"{scenario}: {rate:,.0f} events/sec is below the generous "
        f"{FLOORS[scenario]:,} floor — the kernel hot path regressed badly"
    )

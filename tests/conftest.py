"""Shared fixtures: small, fast cluster configurations."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.cluster import build_cluster
from repro.config import ArrayGeometry, ClusterConfig, trojans_cluster
from repro.sim.core import Environment
from repro.units import KiB, MB


@pytest.fixture
def env():
    return Environment()


def small_config(n: int = 4, k: int = 1, block_size: int = 32 * KiB,
                 disk_mb: int = 64) -> ClusterConfig:
    """A small cluster config with tiny disks (fast to enumerate)."""
    cfg = trojans_cluster(n=n, k=k)
    disk = replace(cfg.disk, capacity_bytes=disk_mb * MB)
    geo = ArrayGeometry(n=n, k=k, block_size=block_size)
    return replace(cfg, disk=disk, geometry=geo)


@pytest.fixture
def config4():
    return small_config(n=4)


@pytest.fixture
def raidx_cluster():
    return build_cluster(small_config(n=4), architecture="raidx")


@pytest.fixture(params=["raid0", "raid5", "raid10", "chained", "raidx"])
def any_array_cluster(request):
    """A cluster per distributed-array architecture."""
    return build_cluster(small_config(n=4), architecture=request.param)


@pytest.fixture(params=["raid0", "raid5", "raid10", "chained", "raidx",
                        "nfs"])
def any_cluster(request):
    """A cluster per architecture, NFS included."""
    return build_cluster(small_config(n=4), architecture=request.param)


def run_proc(cluster_or_env, gen):
    """Drive one process generator to completion; returns its value."""
    env = getattr(cluster_or_env, "env", cluster_or_env)
    return env.run(env.process(gen))

"""Deterministic trace sampling: the keep/drop hash and its contracts.

The sampler's whole value is that a trace id's keep/drop decision is a
pure function of ``(trace, sample_seed, sample_rate)`` — no RNG state,
no draw order, no process identity.  These tests pin that: decisions
are stable across tracer instances and across *separate interpreter
processes* (the sharded-sweep case), the realized keep fraction tracks
the configured rate, and sampled-out requests still feed every
histogram (statistics stay exact over the full population).
"""

import subprocess
import sys

import pytest

from repro.obs.trace import Tracer

IDS = list(range(1, 2001))


def test_same_id_same_decision_across_instances():
    a = Tracer(sample_rate=0.3, sample_seed=42)
    b = Tracer(sample_rate=0.3, sample_seed=42)
    assert [a.keeps(t) for t in IDS] == [b.keeps(t) for t in IDS]


def test_decision_is_stable_across_processes():
    """A fresh interpreter reaches the identical keep set.

    This is what lets sweep shards running in a process pool sample
    coherently: the decision depends only on (trace, seed, rate).
    """
    code = (
        "from repro.obs.trace import Tracer\n"
        "t = Tracer(sample_rate=0.3, sample_seed=42)\n"
        "print(''.join('1' if t.keeps(i) else '0' "
        "for i in range(1, 2001)))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()
    local = Tracer(sample_rate=0.3, sample_seed=42)
    assert out == "".join("1" if local.keeps(i) else "0" for i in IDS)


def test_keep_fraction_tracks_rate():
    for rate in (0.1, 0.5, 0.9):
        t = Tracer(sample_rate=rate, sample_seed=7)
        kept = sum(t.keeps(i) for i in IDS) / len(IDS)
        assert kept == pytest.approx(rate, abs=0.05)


def test_seed_changes_the_sample_not_the_rate():
    a = Tracer(sample_rate=0.5, sample_seed=1)
    b = Tracer(sample_rate=0.5, sample_seed=2)
    decisions_a = [a.keeps(t) for t in IDS]
    decisions_b = [b.keeps(t) for t in IDS]
    assert decisions_a != decisions_b
    assert sum(decisions_a) == pytest.approx(sum(decisions_b), rel=0.15)


def test_rate_boundaries():
    keep_all = Tracer(sample_rate=1.0)
    assert all(keep_all.keeps(t) for t in IDS)
    keep_none = Tracer(sample_rate=0.0)
    assert not any(keep_none.keeps(t) for t in IDS)
    # Untraced spans (background flushes, checkpoints) are always kept.
    assert keep_none.keeps(None)


def test_rate_validated():
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)
    with pytest.raises(ValueError):
        Tracer(sample_rate=-0.1)


def test_sampled_out_spans_still_feed_metrics():
    t = Tracer(sample_rate=0.0, sample_seed=0)
    for i in IDS[:100]:
        assert t.record("request", "node0", 0.0, 0.001, trace=i) is None
    assert len(t.spans) == 0
    assert t.metrics.histogram("request").count == 100


def test_sampled_in_subset_of_full_trace():
    full = Tracer(sample_rate=1.0)
    thin = Tracer(sample_rate=0.25, sample_seed=9)
    for i in IDS[:200]:
        full.record("request", "node0", 0.0, 0.001, trace=i)
        thin.record("request", "node0", 0.0, 0.001, trace=i)
    kept = {s.trace for s in thin.spans}
    assert 0 < len(kept) < 200
    assert kept == {i for i in IDS[:200] if thin.keeps(i)}
    # Metrics populations are identical despite the thinned span list.
    assert (
        thin.metrics.histogram("request").count
        == full.metrics.histogram("request").count
    )


def test_observe_matches_record_side_effects():
    """Tracer.observe (the fast-forward sampled-out path) feeds the
    same histogram keys record() would."""
    via_record = Tracer(label="raidx")
    via_record.record("request", "node0", 0.0, 0.004, trace=1)
    via_observe = Tracer(label="raidx", sample_rate=0.0)
    via_observe.observe("request", 0.004)
    assert (
        via_record.metrics.histogram_names()
        == via_observe.metrics.histogram_names()
    )
    for name in via_record.metrics.histogram_names():
        assert (
            via_record.metrics.histogram(name).to_payload()
            == via_observe.metrics.histogram(name).to_payload()
        )

"""Obs-suite fixtures: never leak an installed tracer across tests."""

import pytest

from repro.obs import runtime as obs_runtime


@pytest.fixture(autouse=True)
def _reset_tracer():
    yield
    obs_runtime.reset()

"""Tracer, NullTracer, and the process-wide runtime slot."""

from repro.obs import runtime as obs_runtime
from repro.obs.trace import (
    DISK_SERVICE,
    NULL_TRACER,
    REQUEST,
    SPAN_KINDS,
    NullTracer,
    Tracer,
)


class TestTracer:
    def test_record_and_introspect(self):
        tr = Tracer()
        t = tr.new_trace()
        tr.record(DISK_SERVICE, "node0.disk1", 1.0, 1.5, trace=t, op="read")
        tr.record(REQUEST, "node0.request", 0.5, 2.0, trace=t)
        assert len(tr) == 2
        assert tr.kinds() == {DISK_SERVICE, REQUEST}
        assert tr.tracks() == ["node0.disk1", "node0.request"]
        assert [s.kind for s in tr.by_trace(t)] == [DISK_SERVICE, REQUEST]
        span = tr.by_kind(DISK_SERVICE)[0]
        assert span.duration == 0.5
        assert span.args == {"op": "read"}

    def test_trace_ids_monotonic(self):
        tr = Tracer()
        ids = [tr.new_trace() for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_record_feeds_metrics(self):
        tr = Tracer()
        tr.record(DISK_SERVICE, "d", 0.0, 0.25)
        h = tr.metrics.histogram(DISK_SERVICE)
        assert len(h) == 1
        assert h.max == 0.25

    def test_label_prefixes_tracks_and_metric_keys(self):
        tr = Tracer(label="raidx")
        tr.record(DISK_SERVICE, "node0.disk1", 0.0, 0.1)
        tr.count("flushes")
        assert tr.spans[0].track == "raidx/node0.disk1"
        assert "raidx:disk.service" in tr.metrics.histogram_names()
        assert DISK_SERVICE in tr.metrics.histogram_names()
        assert tr.metrics.counter("raidx:flushes").value == 1

    def test_span_to_dict_roundtrip_fields(self):
        tr = Tracer()
        s = tr.record(DISK_SERVICE, "d", 1.0, 2.0, trace=7, nbytes=4096)
        d = s.to_dict()
        assert d == {
            "kind": DISK_SERVICE,
            "track": "d",
            "start": 1.0,
            "end": 2.0,
            "trace": 7,
            "args": {"nbytes": 4096},
        }

    def test_clear(self):
        tr = Tracer()
        tr.record(DISK_SERVICE, "d", 0.0, 0.1)
        tr.clear()
        assert len(tr) == 0
        assert tr.metrics.histogram_names() == []

    def test_taxonomy_is_complete(self):
        assert len(SPAN_KINDS) == len(set(SPAN_KINDS)) == 14


class TestNullTracer:
    def test_disabled_and_inert(self):
        nt = NullTracer()
        assert not nt.enabled
        assert nt.new_trace() is None
        assert nt.record(DISK_SERVICE, "d", 0.0, 1.0) is None
        nt.count("anything")
        assert len(nt) == 0
        assert nt.spans == ()


class TestRuntimeSlot:
    def test_default_is_null(self):
        obs_runtime.reset()
        assert obs_runtime.TRACER is NULL_TRACER
        assert not obs_runtime.current().enabled

    def test_install_and_reset(self):
        tr = obs_runtime.install()
        try:
            assert obs_runtime.TRACER is tr
            assert tr.enabled
        finally:
            obs_runtime.reset()
        assert obs_runtime.TRACER is NULL_TRACER

    def test_tracing_context_restores_previous(self):
        obs_runtime.reset()
        with obs_runtime.tracing() as tr:
            assert obs_runtime.TRACER is tr
            inner = Tracer()
            with obs_runtime.tracing(inner):
                assert obs_runtime.TRACER is inner
            assert obs_runtime.TRACER is tr
        assert obs_runtime.TRACER is NULL_TRACER

    def test_tracing_restores_on_exception(self):
        obs_runtime.reset()
        try:
            with obs_runtime.tracing():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs_runtime.TRACER is NULL_TRACER

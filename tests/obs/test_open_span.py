"""OpenSpan: the explicit open/close span API."""

from __future__ import annotations

import pytest

from repro.obs import NULL_TRACER, REQUEST, OpenSpan, Tracer
from repro.sim.core import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tracer():
    return Tracer()


def test_close_records_open_to_now(env, tracer):
    env._now = 2.0
    span = tracer.open_span(REQUEST, "node0", env, trace=7, client=3)
    assert isinstance(span, OpenSpan)
    assert not span.closed
    env._now = 5.5
    recorded = span.close(outcome="ok")
    assert span.closed
    assert recorded.start == 2.0
    assert recorded.end == 5.5
    assert recorded.trace == 7
    assert recorded.args == {"client": 3, "outcome": "ok"}
    assert tracer.spans == [recorded]


def test_close_is_idempotent(env, tracer):
    span = tracer.open_span(REQUEST, "node0", env)
    first = span.close()
    env._now = 9.0
    assert span.close(extra=1) is first
    assert len(tracer) == 1
    assert first.end == 0.0


def test_context_manager_closes_and_tags_errors(env, tracer):
    with tracer.open_span(REQUEST, "node0", env):
        env._now = 1.0
    assert tracer.spans[-1].end == 1.0

    with pytest.raises(RuntimeError):
        with tracer.open_span(REQUEST, "node0", env):
            raise RuntimeError("boom")
    assert tracer.spans[-1].args["error"] == "RuntimeError"


def test_open_span_feeds_kind_metrics(env, tracer):
    span = tracer.open_span(REQUEST, "node0", env)
    env._now = 4.0
    span.close()
    hist = tracer.metrics.histogram(REQUEST)
    assert hist.count == 1


def test_null_tracer_open_span_is_free(env):
    span = NULL_TRACER.open_span(REQUEST, "node0", env)
    with span:
        pass
    assert span.close() is None
    assert len(NULL_TRACER) == 0

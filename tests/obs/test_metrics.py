"""Counters, log-bucketed histograms, and the metrics registry."""

import math

import pytest

from repro.obs.metrics import Counter, LogHistogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("ops")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_delta_allowed(self):
        c = Counter()
        c.inc(-2)
        assert c.value == -2


class TestLogHistogram:
    def test_exact_min_max_mean(self):
        h = LogHistogram("lat")
        for v in (0.001, 0.010, 0.100):
            h.add(v)
        assert h.min == 0.001
        assert h.max == 0.100
        assert h.mean == pytest.approx(0.037, rel=1e-9)
        assert len(h) == 3

    def test_rejects_negative(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.add(-1e-9)

    def test_zero_samples_counted(self):
        h = LogHistogram()
        h.add(0.0)
        h.add(0.0)
        h.add(1.0)
        assert h.zeros == 2
        assert h.percentile(50) == 0.0
        assert h.percentile(100) == 1.0

    def test_empty_is_nan(self):
        h = LogHistogram()
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)
        assert math.isnan(h.min)

    def test_percentile_within_bucket_error(self):
        """Any quantile lands within the bucket growth (~±9%) of exact."""
        h = LogHistogram()
        values = [1.5 ** i * 1e-3 for i in range(200)]
        for v in values:
            h.add(v)
        exact = sorted(values)
        for q in (10, 50, 90, 95, 99):
            rank = max(1, math.ceil(q / 100 * len(exact)))
            assert h.percentile(q) == pytest.approx(
                exact[rank - 1], rel=0.10
            )

    def test_percentile_clamped_into_observed_range(self):
        h = LogHistogram()
        h.add(0.005)
        for q in (0, 50, 100):
            assert h.percentile(q) == 0.005

    def test_percentile_validates_q(self):
        h = LogHistogram()
        h.add(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_keys(self):
        h = LogHistogram()
        h.add(2.0)
        assert set(h.summary()) == {
            "count", "mean", "p50", "p95", "p99", "max",
        }

    def test_memory_stays_bounded(self):
        """Bucket count grows with dynamic range, not sample count."""
        h = LogHistogram()
        for i in range(10_000):
            h.add(1e-3 * (1 + (i % 100) / 100.0))
        assert len(h.counts) < 10


class TestMetricsRegistry:
    def test_lazy_creation(self):
        reg = MetricsRegistry()
        reg.inc("a.count")
        reg.observe("a.latency", 0.5)
        assert reg.counter_names() == ["a.count"]
        assert reg.histogram_names() == ["a.latency"]
        assert reg.counter("a.count").value == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["histograms"]["h"]["count"] == 1.0

    def test_render_contains_all_names(self):
        reg = MetricsRegistry()
        reg.observe("disk.service", 0.010)
        reg.inc("sched.enqueued", 7)
        text = reg.render("test metrics")
        assert "disk.service" in text
        assert "sched.enqueued" in text
        assert "test metrics" in text

    def test_render_empty(self):
        assert "(empty)" in MetricsRegistry().render()

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 1.0)
        reg.clear()
        assert reg.counter_names() == []
        assert reg.histogram_names() == []

"""Counters, log-bucketed histograms, and the metrics registry."""

import json
import math

import pytest

from repro.obs.metrics import Counter, LogHistogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("ops")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_delta_allowed(self):
        c = Counter()
        c.inc(-2)
        assert c.value == -2


class TestLogHistogram:
    def test_exact_min_max_mean(self):
        h = LogHistogram("lat")
        for v in (0.001, 0.010, 0.100):
            h.add(v)
        assert h.min == 0.001
        assert h.max == 0.100
        assert h.mean == pytest.approx(0.037, rel=1e-9)
        assert len(h) == 3

    def test_rejects_negative(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.add(-1e-9)

    def test_zero_samples_counted(self):
        h = LogHistogram()
        h.add(0.0)
        h.add(0.0)
        h.add(1.0)
        assert h.zeros == 2
        assert h.percentile(50) == 0.0
        assert h.percentile(100) == 1.0

    def test_empty_is_nan(self):
        h = LogHistogram()
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)
        assert math.isnan(h.min)

    def test_percentile_within_bucket_error(self):
        """Any quantile lands within the bucket growth (~±9%) of exact."""
        h = LogHistogram()
        values = [1.5 ** i * 1e-3 for i in range(200)]
        for v in values:
            h.add(v)
        exact = sorted(values)
        for q in (10, 50, 90, 95, 99):
            rank = max(1, math.ceil(q / 100 * len(exact)))
            assert h.percentile(q) == pytest.approx(
                exact[rank - 1], rel=0.10
            )

    def test_percentile_clamped_into_observed_range(self):
        h = LogHistogram()
        h.add(0.005)
        for q in (0, 50, 100):
            assert h.percentile(q) == 0.005

    def test_percentile_validates_q(self):
        h = LogHistogram()
        h.add(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_keys(self):
        h = LogHistogram()
        h.add(2.0)
        assert set(h.summary()) == {
            "count", "mean", "p50", "p95", "p99", "max",
        }

    def test_memory_stays_bounded(self):
        """Bucket count grows with dynamic range, not sample count."""
        h = LogHistogram()
        for i in range(10_000):
            h.add(1e-3 * (1 + (i % 100) / 100.0))
        assert len(h.counts) < 10


class TestMetricsRegistry:
    def test_lazy_creation(self):
        reg = MetricsRegistry()
        reg.inc("a.count")
        reg.observe("a.latency", 0.5)
        assert reg.counter_names() == ["a.count"]
        assert reg.histogram_names() == ["a.latency"]
        assert reg.counter("a.count").value == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["histograms"]["h"]["count"] == 1.0

    def test_render_contains_all_names(self):
        reg = MetricsRegistry()
        reg.observe("disk.service", 0.010)
        reg.inc("sched.enqueued", 7)
        text = reg.render("test metrics")
        assert "disk.service" in text
        assert "sched.enqueued" in text
        assert "test metrics" in text

    def test_render_empty(self):
        assert "(empty)" in MetricsRegistry().render()

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 1.0)
        reg.clear()
        assert reg.counter_names() == []
        assert reg.histogram_names() == []


def _registry(counters, samples):
    reg = MetricsRegistry()
    for name, v in counters.items():
        reg.counter(name).value = v
    for name, values in samples.items():
        for v in values:
            reg.observe(name, v)
    return reg


def _flat(reg):
    """Registry contents as comparable plain data (exact, not summary)."""
    return (
        {n: reg.counter(n).value for n in reg.counter_names()},
        {n: reg.histogram(n).to_payload() for n in reg.histogram_names()},
    )


class TestMetricsRegistryMerge:
    """The shard-merge algebra the sweep reducer relies on."""

    A = ({"ops": 3, "busy": 1.25}, {"lat": [0.001, 0.004, 0.010]})
    B = ({"ops": 5, "bytes": 4096}, {"lat": [0.002], "wait": [0.5]})
    C = ({"busy": 0.5}, {"wait": [0.25, 0.125]})

    def test_empty_is_identity(self):
        reg = _registry(*self.A)
        reg.merge(MetricsRegistry())
        assert _flat(reg) == _flat(_registry(*self.A))
        empty = MetricsRegistry()
        empty.merge(_registry(*self.A))
        assert _flat(empty) == _flat(_registry(*self.A))

    def test_commutative(self):
        ab = _registry(*self.A)
        ab.merge(_registry(*self.B))
        ba = _registry(*self.B)
        ba.merge(_registry(*self.A))
        # Disjoint-or-integer counters and bucketed histograms make the
        # merge exactly commutative here; shared float counters are
        # commutative too (IEEE a+b == b+a) though not associative.
        assert _flat(ab) == _flat(ba)

    def test_associative(self):
        left = _registry(*self.A)
        left.merge(_registry(*self.B))
        left.merge(_registry(*self.C))
        bc = _registry(*self.B)
        bc.merge(_registry(*self.C))
        right = _registry(*self.A)
        right.merge(bc)
        assert _flat(left) == _flat(right)

    def test_payload_roundtrip_exact(self):
        reg = _registry(*self.A)
        reg.merge(_registry(*self.B))
        payload = reg.to_payload()
        via_json = json.loads(json.dumps(payload, sort_keys=True))
        rebuilt = MetricsRegistry.from_payload(via_json)
        assert _flat(rebuilt) == _flat(reg)
        assert rebuilt.to_payload() == payload

    def test_merge_matches_single_registry(self):
        """Sharded collection then merge == one registry fed everything."""
        merged = _registry(*self.A)
        for part in (self.B, self.C):
            merged.merge(_registry(*part))
        whole = MetricsRegistry()
        for counters, samples in (self.A, self.B, self.C):
            for name, v in counters.items():
                whole.counter(name).value += v
            for name, values in samples.items():
                for v in values:
                    whole.observe(name, v)
        assert _flat(merged) == _flat(whole)

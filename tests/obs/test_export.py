"""JSONL and Chrome trace-event exporters."""

import json

from repro.obs.export import (
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import Tracer


def _sample_tracer() -> Tracer:
    tr = Tracer()
    t = tr.new_trace()
    tr.record("disk.service", "node0.disk1", 0.001, 0.004, trace=t,
              op="write")
    tr.record("net.tx", "node0.nic.tx", 0.0, 0.001, trace=t, nbytes=32768)
    tr.record("request", "node1.request", 0.0, 0.005, trace=t, op="write")
    return tr


def test_write_jsonl(tmp_path):
    tr = _sample_tracer()
    path = tmp_path / "spans.jsonl"
    assert write_jsonl(tr.spans, str(path)) == 3
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    first = json.loads(lines[0])
    assert first["kind"] == "disk.service"
    assert first["trace"] == 1
    assert first["args"] == {"op": "write"}


def test_chrome_events_metadata_and_tracks():
    events = chrome_trace_events(_sample_tracer().spans)
    meta = [e for e in events if e["ph"] == "M"]
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == 3
    # node0 and node1 become processes; disk1/nic.tx/request threads.
    proc_names = {
        e["args"]["name"] for e in meta if e["name"] == "process_name"
    }
    thread_names = {
        e["args"]["name"] for e in meta if e["name"] == "thread_name"
    }
    assert proc_names == {"node0", "node1"}
    assert thread_names == {"disk1", "nic.tx", "request"}
    # Every X event references a declared pid/tid pair.
    declared = {
        (e["pid"], e["tid"]) for e in meta if e["name"] == "thread_name"
    }
    assert all((e["pid"], e["tid"]) in declared for e in xs)


def test_chrome_events_units_and_args():
    events = chrome_trace_events(_sample_tracer().spans)
    disk = next(e for e in events if e.get("name") == "disk.service")
    assert disk["ts"] == 1000.0  # 0.001 s -> µs
    assert disk["dur"] == 3000.0
    assert disk["cat"] == "disk"
    assert disk["args"]["op"] == "write"
    assert disk["args"]["trace"] == 1


def test_chrome_track_without_dot_is_own_process():
    tr = Tracer()
    tr.record("request", "backplane", 0.0, 1.0)
    events = chrome_trace_events(tr.spans)
    proc = next(e for e in events if e["name"] == "process_name")
    assert proc["args"]["name"] == "backplane"


def test_label_prefix_separates_process_groups():
    tr = Tracer(label="raidx")
    tr.record("disk.service", "node0.disk1", 0.0, 1.0)
    tr.label = "raid5"
    tr.record("disk.service", "node0.disk1", 0.0, 1.0)
    events = chrome_trace_events(tr.spans)
    proc_names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert proc_names == {"raidx/node0", "raid5/node0"}


def test_write_chrome_trace_document(tmp_path):
    path = tmp_path / "trace.json"
    doc = write_chrome_trace(_sample_tracer().spans, str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk == doc
    assert on_disk["displayTimeUnit"] == "ms"
    assert isinstance(on_disk["traceEvents"], list)


def test_negative_duration_clamped():
    """Zero-length/reversed spans export with dur >= 0 (Perfetto chokes
    on negatives)."""
    tr = Tracer()
    tr.record("request", "node0.request", 5.0, 5.0)
    ev = [e for e in chrome_trace_events(tr.spans) if e["ph"] == "X"][0]
    assert ev["dur"] == 0.0

"""End-to-end tracing through the full request path.

A locked RAID-x write burst must produce spans from every layer a
request touches: the root request, kernel driver entries, protocol CPU,
NIC tx/rx, SCSI, disk queue+service, lock-grant waits, and the deferred
background image flushes.
"""

import pytest

from repro.cluster.cluster import build_cluster
from repro.obs import runtime as obs_runtime
from repro.obs.trace import (
    CKPT_SYNC,
    CKPT_WRITE,
    CPU_DRIVER,
    CPU_PROTO,
    DISK_QUEUE_WAIT,
    DISK_SERVICE,
    LOCK_WAIT,
    MIRROR_FLUSH,
    NET_RX,
    NET_TX,
    REQUEST,
    SCSI_TRANSFER,
)
from repro.units import KiB, MB
from repro.workloads.parallel_io import ParallelIOWorkload
from tests.conftest import small_config


def _run_raidx_writes(tracer, clients: int = 4):
    cluster = build_cluster(
        small_config(n=4, k=2), architecture="raidx", locking=True
    )
    wl = ParallelIOWorkload(
        cluster, clients, op="write", size=256 * KiB, queue_depth=2
    )
    wl.run()
    cluster.env.run(cluster.env.process(cluster.storage.drain()))
    return cluster


def test_locked_raidx_write_covers_all_layers():
    tracer = obs_runtime.install()
    _run_raidx_writes(tracer)
    kinds = tracer.kinds()
    for kind in (
        REQUEST,
        DISK_QUEUE_WAIT,
        DISK_SERVICE,
        NET_TX,
        NET_RX,
        LOCK_WAIT,
        MIRROR_FLUSH,
        CPU_DRIVER,
        CPU_PROTO,
        SCSI_TRANSFER,
    ):
        assert kind in kinds, f"missing span kind {kind}"


def test_trace_id_links_request_to_leaf_spans():
    tracer = obs_runtime.install()
    _run_raidx_writes(tracer, clients=2)
    for root in tracer.by_kind(REQUEST):
        assert root.trace is not None
        linked = tracer.by_trace(root.trace)
        leaf_kinds = {s.kind for s in linked}
        # Every request reaches a disk, and all linked spans nest inside
        # the request window (background flushes may outlive it).
        assert DISK_SERVICE in leaf_kinds
        for s in linked:
            if s.kind in (MIRROR_FLUSH, REQUEST):
                continue
            assert s.start >= root.start - 1e-12
    # Distinct requests get distinct ids.
    ids = [r.trace for r in tracer.by_kind(REQUEST)]
    assert len(ids) == len(set(ids))


def test_mirror_flush_spans_are_background():
    tracer = obs_runtime.install()
    _run_raidx_writes(tracer)
    flushes = tracer.by_kind(MIRROR_FLUSH)
    assert flushes
    assert all(s.args["deferred"] for s in flushes)
    assert all(s.track.endswith(".mirror") for s in flushes)
    # Background disk ops carry priority=1 on their service spans.
    bg = [
        s for s in tracer.by_kind(DISK_SERVICE)
        if s.args.get("priority") == 1
    ]
    assert bg


def test_disk_spans_account_for_service_components():
    tracer = obs_runtime.install()
    cluster = _run_raidx_writes(tracer, clients=2)
    overhead = cluster.config.disk.controller_overhead_s
    for s in tracer.by_kind(DISK_SERVICE):
        parts = s.args["seek"] + s.args["rotation"] + s.args["transfer"]
        assert s.duration == pytest.approx(parts + overhead, rel=1e-9)


def test_metrics_histograms_populated_per_layer():
    tracer = obs_runtime.install()
    _run_raidx_writes(tracer)
    names = tracer.metrics.histogram_names()
    assert DISK_SERVICE in names
    assert REQUEST in names
    req = tracer.metrics.histogram(REQUEST)
    assert req.percentile(50) <= req.percentile(99) <= req.max


def test_disabled_tracer_records_nothing():
    obs_runtime.reset()
    cluster = build_cluster(
        small_config(n=4), architecture="raidx", locking=True
    )
    cluster.env.run(cluster.storage.write(0, 0, 128 * KiB))
    assert len(obs_runtime.TRACER) == 0


def test_tracing_is_timing_neutral():
    """Tracing observes; it must not change simulated timing."""
    def elapsed(with_tracing: bool) -> float:
        if with_tracing:
            obs_runtime.install()
        else:
            obs_runtime.reset()
        cluster = build_cluster(
            small_config(n=4, k=2), architecture="raidx", locking=True
        )
        ParallelIOWorkload(
            cluster, 4, op="write", size=256 * KiB, queue_depth=2
        ).run()
        cluster.env.run(cluster.env.process(cluster.storage.drain()))
        return cluster.env.now

    assert elapsed(False) == elapsed(True)


def test_raid5_stripe_lock_wait_spans():
    tracer = obs_runtime.install()
    cluster = build_cluster(small_config(n=4), architecture="raid5")
    ParallelIOWorkload(cluster, 4, op="write", size=512 * KiB).run()
    stripe_waits = [
        s for s in tracer.by_kind(LOCK_WAIT)
        if s.args.get("scope") == "stripe"
    ]
    assert stripe_waits


def test_nfs_requests_traced():
    tracer = obs_runtime.install()
    cluster = build_cluster(small_config(n=4), architecture="nfs")
    cluster.env.run(cluster.storage.write(1, 0, 64 * KiB))
    kinds = tracer.kinds()
    assert REQUEST in kinds
    assert NET_TX in kinds and NET_RX in kinds
    assert DISK_SERVICE in kinds


def test_checkpoint_spans():
    from repro.checkpoint.coordinated import CheckpointConfig, CheckpointRun

    tracer = obs_runtime.install()
    cluster = build_cluster(small_config(n=4, k=2), architecture="raidx")
    run = CheckpointRun(
        cluster,
        CheckpointConfig(processes=4, state_bytes=1 * MB, scheme="parallel"),
    )
    run.run()
    kinds = tracer.kinds()
    assert CKPT_SYNC in kinds
    assert CKPT_WRITE in kinds
    writes = tracer.by_kind(CKPT_WRITE)
    assert len(writes) == 4
    assert {s.args["process"] for s in writes} == {0, 1, 2, 3}


def test_bottleneck_report_uses_spans():
    from repro.analysis.bottleneck import resource_usage

    tracer = obs_runtime.install()
    cluster = _run_raidx_writes(tracer)
    by_name = {u.name: u for u in resource_usage(cluster, tracer.spans)}
    assert by_name["disk"].peak > 0
    # Background flush service inflates total disk busy over foreground.
    assert by_name["disk"].peak >= by_name["disk_foreground"].peak
    assert by_name["nic_tx"].peak > 0

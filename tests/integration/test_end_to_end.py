"""Cross-module integration: FS over every architecture, faults mid-run,
trace replay consistency, locking under contention."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.fault import FailureEvent, FaultInjector
from repro.fs import FileSystem
from repro.units import KiB
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.traces import TraceRecorder, replay_trace
from tests.conftest import run_proc, small_config


def test_filesystem_works_on_every_architecture(any_cluster):
    fs = FileSystem(any_cluster)

    def p():
        yield from fs.mkdir(1, "/home")
        yield from fs.create(1, "/home/f")
        yield from fs.write_file(1, "/home/f", 20_000)
        size = yield from fs.read_file(2, "/home/f")
        assert size == 20_000
        names = yield from fs.readdir(3, "/home")
        assert names == ["f"]

    run_proc(any_cluster, p())


def test_fs_survives_disk_failure_on_raidx():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    fs = FileSystem(cluster)

    def write_phase():
        yield from fs.create(0, "/f")
        yield from fs.write_file(0, "/f", 60_000)
        yield from cluster.storage.drain()

    run_proc(cluster, write_phase())
    cluster.storage.fail_disk(1)

    def read_phase():
        size = yield from fs.read_file(2, "/f")
        assert size == 60_000

    run_proc(cluster, read_phase())


def test_locking_cluster_serializes_conflicting_writes():
    cluster = build_cluster(
        small_config(n=4), architecture="raidx", locking=True
    )
    env = cluster.env
    order = []

    def writer(node):
        ev = cluster.storage.submit(node, "write", 0, 32 * KiB)

        def mark(_e, node=node):
            order.append((node, env.now))

        ev.callbacks.append(mark)
        yield ev

    env.process(writer(1))
    env.process(writer(2))
    env.run()
    assert len(order) == 2
    assert cluster.lock_manager.table.grants == 2
    assert len(cluster.lock_manager.table) == 0  # all released


def test_synthetic_workload_on_all_architectures(any_cluster):
    wl = SyntheticWorkload(
        any_cluster, clients=2, ops_per_client=6, read_fraction=0.5
    )
    r = wl.run()
    assert r.elapsed > 0


def test_trace_replay_preserves_op_count_across_architectures():
    src = build_cluster(small_config(n=4), architecture="raid0")
    rec = TraceRecorder(src.storage)
    src_backup, src.storage = src.storage, rec
    # Keep the address region within the smallest layout's capacity so
    # the same trace replays everywhere.
    wl = SyntheticWorkload(
        src, clients=2, ops_per_client=5, region_bytes=16_000_000
    )
    wl.run()
    src.storage = src_backup
    assert len(rec.ops) >= 10
    for arch in ("raid5", "raid10", "raidx"):
        dst = build_cluster(small_config(n=4), architecture=arch)
        _elapsed, completed = replay_trace(dst, rec.ops)
        assert completed == len(rec.ops)


def test_fault_during_filesystem_activity():
    cluster = build_cluster(small_config(n=4), architecture="raid10")
    fs = FileSystem(cluster)
    inj = FaultInjector(cluster, [FailureEvent(0.002, disk=2)])
    inj.start()

    def p():
        yield from fs.mkdir(0, "/d")
        for i in range(6):
            yield from fs.create(0, f"/d/f{i}")
            yield from fs.write_file(0, f"/d/f{i}", 8_000)
        for i in range(6):
            size = yield from fs.read_file(1, f"/d/f{i}")
            assert size == 8_000

    run_proc(cluster, p())
    assert inj.log.data_loss_at is None


def test_rebuild_then_full_service():
    from repro.raid.reconstruct import execute_rebuild

    cluster = build_cluster(small_config(n=4), architecture="raidx")

    def io(op):
        yield cluster.storage.submit(0, op, 0, 128 * KiB)
        yield from cluster.storage.drain()

    run_proc(cluster, io("write"))
    cluster.storage.fail_disk(1)
    cluster.storage.repair_disk(1)
    res = execute_rebuild(cluster, 1, max_blocks=32)
    assert res.blocks_rebuilt > 0
    cluster.storage.failed_disks.discard(1)
    run_proc(cluster, io("read"))  # full service restored


def test_scheduler_policy_plumbs_through():
    for policy in ("fifo", "sstf", "look"):
        cluster = build_cluster(
            small_config(n=4),
            architecture="raidx",
            scheduler_policy=policy,
        )

        def p(c=cluster):
            yield c.storage.submit(0, "write", 0, 64 * KiB)

        run_proc(cluster, p())

"""End-to-end assertions of the paper's qualitative results.

These run the real simulator on a reduced Trojans configuration (to stay
fast) and check the *shapes* the paper reports: who wins, roughly by how
much, and how curves scale with clients.  The full-scale numbers are
produced by the ``benchmarks/`` scripts.
"""

import pytest

from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import KiB, MB
from repro.workloads.parallel_io import (
    ParallelIOWorkload,
    large_read,
    large_write,
    small_write,
)


def bw(arch, maker, clients, n=12):
    cluster = build_cluster(trojans_cluster(n=n), architecture=arch)
    return maker(cluster, clients).run().aggregate_bandwidth_mb_s


@pytest.fixture(scope="module")
def fig5_12cl():
    """One pass of the Fig.-5 measurements at 12 clients, shared."""
    out = {}
    for arch in ("nfs", "raid5", "raid10", "raidx"):
        out[arch] = {
            "LR": bw(arch, large_read, 12),
            "LW": bw(arch, large_write, 12),
            "SW": bw(arch, small_write, 12),
        }
    return out


def test_reads_scale_nfs_flat(fig5_12cl):
    lr1 = bw("nfs", large_read, 1)
    assert fig5_12cl["nfs"]["LR"] < 2.0 * lr1  # server-bound: ~flat
    rx1 = bw("raidx", large_read, 1)
    assert fig5_12cl["raidx"]["LR"] > 2.5 * rx1  # distributed: scales


def test_raidx_read_beats_nfs_by_factor(fig5_12cl):
    """Conclusions: parallel reads ~3.7x NFS at 12 clients."""
    ratio = fig5_12cl["raidx"]["LR"] / fig5_12cl["nfs"]["LR"]
    assert 2.0 < ratio < 8.0


def test_large_write_ordering(fig5_12cl):
    """Fig. 5c: RAID-x > RAID-10 > RAID-5 >> NFS."""
    r = fig5_12cl
    assert r["raidx"]["LW"] > r["raid10"]["LW"] > r["raid5"]["LW"]
    assert r["raid5"]["LW"] > r["nfs"]["LW"]


def test_raidx_large_write_factor_over_raid10(fig5_12cl):
    """OSM's background mirroring ~doubles foreground write bandwidth."""
    ratio = fig5_12cl["raidx"]["LW"] / fig5_12cl["raid10"]["LW"]
    assert 1.3 < ratio < 3.0


def test_small_write_raidx_3x_raid5(fig5_12cl):
    """Conclusions: small writes ~3x RAID-5."""
    ratio = fig5_12cl["raidx"]["SW"] / fig5_12cl["raid5"]["SW"]
    assert 2.0 < ratio < 5.0


def test_reads_comparable_across_distributed(fig5_12cl):
    """Fig. 5a: the three distributed layouts read at similar rates."""
    r = fig5_12cl
    reads = [r["raidx"]["LR"], r["raid10"]["LR"], r["raid5"]["LR"]]
    assert max(reads) / min(reads) < 1.3


def test_improvement_factor_raidx_highest():
    """Table 3: RAID-x shows the strongest 12-vs-1 improvement in
    writes among the distributed arrays; NFS the weakest."""
    imp = {}
    for arch in ("nfs", "raid5", "raid10", "raidx"):
        one = bw(arch, large_write, 1)
        twelve = bw(arch, large_write, 12)
        imp[arch] = twelve / one
    assert imp["raidx"] >= imp["raid10"]
    assert imp["raidx"] > imp["nfs"]


def test_raidx_write_latency_hides_mirroring():
    """A single small write completes in ~half the RAID-10 time."""

    def latency(arch):
        cluster = build_cluster(
            trojans_cluster(n=12), architecture=arch
        )
        wl = ParallelIOWorkload(cluster, 1, op="write", size=32 * KiB)
        return wl.run().elapsed

    assert latency("raidx") < latency("raid10")


def test_andrew_ordering():
    """Fig. 6: RAID-x best, RAID-5 worst among the arrays, NFS poor."""
    from repro.workloads.andrew import AndrewBenchmark, AndrewConfig

    cfg = AndrewConfig(n_dirs=3, files_per_dir=3)
    totals = {}
    for arch in ("nfs", "raid5", "raid10", "raidx"):
        cluster = build_cluster(trojans_cluster(), architecture=arch)
        totals[arch] = AndrewBenchmark(cluster, 8, config=cfg).run().total
    assert totals["raidx"] <= totals["raid10"]
    assert totals["raidx"] < totals["raid5"]
    assert totals["raidx"] < totals["nfs"]
    # RAID-5's small-write problem dominates at higher client counts.
    assert totals["raid5"] > totals["raid10"]


def test_checkpoint_tradeoff():
    """Fig. 7: staggering trades epoch time for per-process overhead."""
    from repro.checkpoint import CheckpointConfig, CheckpointRun

    results = {}
    for scheme, groups in (
        ("parallel", None),
        ("striped_staggered", 3),
        ("staggered", None),
    ):
        cluster = build_cluster(trojans_cluster(), architecture="raidx")
        cfg = CheckpointConfig(
            processes=12,
            state_bytes=2 * MB,
            scheme=scheme,
            stagger_groups=groups,
        )
        results[scheme] = CheckpointRun(cluster, cfg).run()
    # Epoch wall clock: parallel < striped_staggered < staggered.
    assert (
        results["parallel"].total_time
        < results["striped_staggered"].total_time
        < results["staggered"].total_time
    )
    # Per-process overhead C: the other way around.
    mean_c = {
        k: sum(r.per_process_write.values()) / r.processes
        for k, r in results.items()
    }
    assert (
        mean_c["staggered"]
        < mean_c["striped_staggered"]
        < mean_c["parallel"]
    )


def test_transient_recovery_faster_than_permanent():
    """§6: local-mirror recovery beats striped degraded recovery."""
    from repro.checkpoint import CheckpointConfig, CheckpointRun, recover
    from tests.conftest import run_proc

    cluster = build_cluster(trojans_cluster(), architecture="raidx")
    cfg = CheckpointConfig(processes=12, state_bytes=2 * MB)
    run = CheckpointRun(cluster, cfg)
    run.run()
    run_proc(cluster, cluster.storage.drain())
    t = recover(run, 2, "transient")
    p = recover(run, 2, "permanent")
    assert t.used_local_mirror and not p.used_local_mirror
    assert t.elapsed < p.elapsed


def test_pipelined_disk_groups_raise_bandwidth():
    """Fig. 3: 'Consecutive stripe groups can be accessed in a
    pipelined fashion, because they are retrieved from disk groups
    attached to the same SCSI buses' — adding disks per node (k) lifts
    per-node throughput even though node count is fixed."""
    from tests.conftest import small_config

    def read_bw(k):
        cluster = build_cluster(
            small_config(n=4, k=k), architecture="raidx"
        )
        wl = ParallelIOWorkload(
            cluster, 4, op="read", size=2 * MB, queue_depth=8
        )
        return wl.run().aggregate_bandwidth_mb_s

    one, two, three = read_bw(1), read_bw(2), read_bw(3)
    assert two > 1.5 * one
    assert three > two


def test_4x3_array_tolerates_three_spread_failures():
    """§6: the 4×3 RAID-x array survives 3 failures in 3 groups."""
    from repro.workloads.parallel_io import ParallelIOWorkload

    cluster = build_cluster(
        trojans_cluster(n=4, k=3), architecture="raidx"
    )
    for disk in (0, 5, 10):  # one per disk group
        cluster.storage.fail_disk(disk)
    assert cluster.storage.layout.tolerates(cluster.storage.failed_disks)
    r = ParallelIOWorkload(cluster, 4, op="read", size=512 * KiB).run()
    assert r.elapsed > 0  # degraded but every block served

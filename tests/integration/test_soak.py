"""Soak test: everything at once, for a long simulated stretch.

Locking enabled, file-system churn, raw block traffic, Zipf hot spots,
a disk failure and repair mid-run, background mirror flushes, and a
final full-state audit.  The point is cross-feature interference: each
subsystem works alone (unit tests); this checks they work *together*.
"""

import pytest

from repro.cluster.cluster import build_cluster
from repro.fault import FailureEvent, FaultInjector
from repro.fs import FileSystem, FsConfig
from repro.units import KiB, MB
from tests.conftest import run_proc, small_config


def test_soak_raidx_full_stack():
    cluster = build_cluster(
        small_config(n=4, disk_mb=128),
        architecture="raidx",
        locking=True,
    )
    env = cluster.env
    fs = FileSystem(cluster, FsConfig(cache_blocks_per_node=64))
    rng = cluster.rand.stream("soak")

    injector = FaultInjector(
        cluster,
        [
            FailureEvent(0.4, disk=2, action="fail"),
            FailureEvent(1.2, disk=2, action="repair"),
        ],
    )
    injector.start()

    file_sizes = {}

    def fs_churn(client):
        root = f"/u{client}"
        yield from fs.mkdir(client, root)
        for i in range(6):
            path = f"{root}/f{i}"
            size = int(rng.integers(1_000, 40_000))
            yield from fs.create(client, path)
            yield from fs.write_file(client, path, size)
            file_sizes[path] = size
            if i % 2:
                got = yield from fs.read_file(client, path)
                assert got == size
        names = yield from fs.readdir(client, root)
        assert len(names) == 6

    def block_churn(client):
        base = 40 * MB + client * 12 * MB
        for i in range(10):
            op = "write" if i % 3 else "read"
            off = base + int(rng.integers(0, 64)) * 32 * KiB
            yield cluster.storage.submit(client, op, off, 32 * KiB)

    def driver():
        procs = []
        for c in range(4):
            procs.append(env.process(fs_churn(c)))
            procs.append(env.process(block_churn(c)))
        yield env.all_of(procs)
        yield from cluster.storage.drain()

    run_proc(cluster, driver())

    # Audit: every file still stats and reads at its recorded size.
    def audit():
        for path, size in file_sizes.items():
            st = yield from fs.stat(0, path)
            assert st.size == size
            got = yield from fs.read_file(1, path)
            assert got == size

    run_proc(cluster, audit())

    # System-level invariants after the storm.
    assert injector.log.data_loss_at is None
    assert len(injector.log.applied) == 2
    assert cluster.storage.pending_background_flushes == 0
    assert not cluster.storage._dirty_groups
    assert len(cluster.lock_manager.table) == 0  # all locks released
    assert cluster.lock_manager.table.grants == (
        cluster.lock_manager.table.releases
    )
    assert env.now > 0.5
    st = cluster.transport.stats
    assert st.remote_block_ops > 0 and st.local_block_ops > 0


@pytest.mark.parametrize("arch", ["raid5", "raid10", "chained"])
def test_soak_other_architectures_brief(arch):
    cluster = build_cluster(
        small_config(n=4, disk_mb=128), architecture=arch, locking=True
    )
    env = cluster.env
    fs = FileSystem(cluster)

    def driver(client):
        root = f"/w{client}"
        yield from fs.mkdir(client, root)
        for i in range(4):
            path = f"{root}/f{i}"
            yield from fs.create(client, path)
            yield from fs.write_file(client, path, 9_000)
            got = yield from fs.read_file((client + 1) % 4, path)
            assert got == 9_000
            yield from fs.unlink(client, path)

    procs = [env.process(driver(c)) for c in range(4)]
    env.run(env.all_of(procs))
    assert len(cluster.lock_manager.table) == 0

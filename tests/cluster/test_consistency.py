"""The distributed lock-group protocol and its replicated table."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.consistency import (
    DistributedLockManager,
    LockGroupTable,
)
from repro.errors import LockProtocolError
from tests.conftest import run_proc, small_config


def manager(cluster, **kw):
    return DistributedLockManager(
        cluster.env, cluster.transport, cluster.n_nodes, **kw
    )


def test_table_grant_release_cycle():
    t = LockGroupTable()
    t.record_grant(5, owner=2, now=0.0)
    assert t.holder(5) == 2
    assert len(t) == 1
    t.record_release(5, owner=2)
    assert t.holder(5) is None
    assert t.grants == 1 and t.releases == 1


def test_table_double_grant_rejected():
    t = LockGroupTable()
    t.record_grant(1, 0, 0.0)
    with pytest.raises(LockProtocolError):
        t.record_grant(1, 1, 0.0)


def test_table_foreign_release_rejected():
    t = LockGroupTable()
    t.record_grant(1, 0, 0.0)
    with pytest.raises(LockProtocolError):
        t.record_release(1, owner=3)
    with pytest.raises(LockProtocolError):
        t.record_release(99, owner=0)


def test_groups_for_blocks_sorted_unique():
    cluster = Cluster(small_config(n=4))
    lm = manager(cluster, lock_group_blocks=10)
    assert lm.groups_for_blocks([25, 5, 15, 7]) == [0, 1, 2]


def test_acquire_release_roundtrip():
    cluster = Cluster(small_config(n=4))
    lm = manager(cluster)

    def p():
        h = yield from lm.acquire(0, [0, 1, 2])
        assert lm.table.holder(0) == 0
        yield from lm.release(h)
        assert lm.table.holder(0) is None

    run_proc(cluster, p())


def test_contending_writers_serialize():
    cluster = Cluster(small_config(n=4))
    lm = manager(cluster)
    env = cluster.env
    order = []

    def writer(node, hold):
        h = yield from lm.acquire(node, [0])
        order.append(("in", node, env.now))
        yield env.timeout(hold)
        yield from lm.release(h)
        order.append(("out", node, env.now))

    env.process(writer(1, 1.0))
    env.process(writer(2, 1.0))
    env.run()
    ins = [e for e in order if e[0] == "in"]
    outs = [e for e in order if e[0] == "out"]
    # Second writer enters only after the first released.
    assert ins[1][2] >= outs[0][2]


def test_remote_lock_costs_messages():
    cluster = Cluster(small_config(n=4))
    lm = manager(cluster)
    before = cluster.transport.stats.total_messages

    def p():
        # Group 1's home is node 1; client is node 0 -> remote grant.
        h = yield from lm.acquire(0, [lm.lock_group_blocks])
        yield from lm.release(h)

    run_proc(cluster, p())
    assert cluster.transport.stats.total_messages > before


def test_local_home_lock_is_message_free():
    cluster = Cluster(small_config(n=4))
    lm = manager(cluster)
    before = cluster.transport.stats.total_messages

    def p():
        h = yield from lm.acquire(0, [0])  # group 0's home is node 0
        yield from lm.release(h)

    run_proc(cluster, p())
    assert cluster.transport.stats.total_messages == before


def test_broadcast_grants_notifies_peers():
    cluster = Cluster(small_config(n=4))
    lm = manager(cluster, broadcast_grants=True)

    def p():
        h = yield from lm.acquire(0, [0])
        yield from lm.release(h)

    run_proc(cluster, p())
    cluster.env.run()  # drain async broadcasts
    kinds = cluster.transport.stats.by_kind
    assert kinds.get("lock_grant", (0, 0))[0] >= 2


def test_ordered_acquisition_prevents_deadlock():
    cluster = Cluster(small_config(n=4))
    lm = manager(cluster, lock_group_blocks=1)
    env = cluster.env
    done = []

    def writer(node, blocks):
        h = yield from lm.acquire(node, blocks)
        yield env.timeout(0.01)
        yield from lm.release(h)
        done.append(node)

    # Opposite textual order, same sorted lock order -> no deadlock.
    env.process(writer(0, [0, 1]))
    env.process(writer(1, [1, 0]))
    env.run()
    assert sorted(done) == [0, 1]

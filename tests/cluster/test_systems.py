"""Per-architecture I/O protocol behaviour: op counts, degraded modes."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.errors import (
    ConfigurationError,
    DataLossError,
    DegradedModeError,
)
from repro.raid.mirror_policy import MirrorPolicy
from repro.sim.core import SimulationError
from repro.units import KiB
from tests.conftest import run_proc, small_config

BS = 32 * KiB


def cluster_for(arch, n=4, **kw):
    return build_cluster(small_config(n=n), architecture=arch, **kw)


def total_disk_writes(cluster):
    return sum(d.stats.writes for d in cluster.all_disks())


def total_disk_reads(cluster):
    return sum(d.stats.reads for d in cluster.all_disks())


def do_io(cluster, op, offset, nbytes, client=0):
    def p():
        yield cluster.storage.submit(client, op, offset, nbytes)
        yield from cluster.storage.drain()

    run_proc(cluster, p())


# -- write op counts -------------------------------------------------------

def test_raid0_write_one_op_per_block():
    c = cluster_for("raid0")
    do_io(c, "write", 0, 4 * BS)
    assert total_disk_writes(c) == 4


def test_raid10_write_two_ops_per_block():
    c = cluster_for("raid10")
    do_io(c, "write", 0, 2 * BS)
    assert total_disk_writes(c) == 4


def test_chained_write_two_ops_per_block():
    c = cluster_for("chained")
    do_io(c, "write", 0, 2 * BS)
    assert total_disk_writes(c) == 4


def test_raidx_write_data_plus_clustered_image():
    c = cluster_for("raidx")
    # A full mirror group (n-1 = 3 blocks): 3 data writes + ONE long
    # image write after drain.
    do_io(c, "write", 0, 3 * BS)
    assert total_disk_writes(c) == 4
    img_writes = [
        d.stats.writes for d in c.all_disks() if d.stats.bytes_written > BS * 1.5
    ]
    assert img_writes == [1]  # one disk got one 3-block extent


def test_raid5_small_write_rmw_ops():
    c = cluster_for("raid5")
    do_io(c, "write", 0, BS)
    # Read old data + old parity; write data + parity.
    assert total_disk_reads(c) == 2
    assert total_disk_writes(c) == 2


def test_raid5_full_stripe_optimization_skips_reads():
    c = cluster_for("raid5", full_stripe_optimization=True)
    width = c.storage.layout.n_disks - 1
    do_io(c, "write", 0, width * BS)
    assert total_disk_reads(c) == 0
    assert total_disk_writes(c) == width + 1  # data + parity


def test_raid5_rmw_without_optimization_reads_old_data():
    c = cluster_for("raid5")
    width = c.storage.layout.n_disks - 1
    do_io(c, "write", 0, width * BS)
    assert total_disk_reads(c) > 0


# -- reads ------------------------------------------------------------------

def test_reads_touch_one_disk_per_block(any_array_cluster):
    c = any_array_cluster
    do_io(c, "write", 0, 2 * BS)
    before = total_disk_reads(c)
    do_io(c, "read", 0, 2 * BS)
    delta = total_disk_reads(c) - before
    # RAID-5 pre-writes may have read; the read itself adds exactly 2.
    assert delta == 2


def test_bytes_accounting(any_cluster):
    c = any_cluster
    do_io(c, "write", 0, 3 * BS)
    do_io(c, "read", 0, 2 * BS)
    assert c.storage.bytes_written == 3 * BS
    assert c.storage.bytes_read == 2 * BS


# -- degraded operation ---------------------------------------------------

def test_raid10_degraded_read_uses_mirror():
    c = cluster_for("raid10")
    do_io(c, "write", 0, BS)
    loc = c.storage.layout.data_location(0)
    c.storage.fail_disk(loc.disk)
    do_io(c, "read", 0, BS)  # served by the pair partner
    mirror = c.storage.layout.redundancy_locations(0)[0]
    assert c.disk(mirror.disk).stats.reads >= 1


def test_raidx_degraded_read_uses_image():
    c = cluster_for("raidx")
    do_io(c, "write", 0, 3 * BS)
    loc = c.storage.layout.data_location(0)
    c.storage.fail_disk(loc.disk)
    do_io(c, "read", 0, BS)
    image = c.storage.layout.redundancy_locations(0)[0]
    assert c.disk(image.disk).stats.reads >= 1


def test_raid5_degraded_read_reconstructs():
    c = cluster_for("raid5")
    do_io(c, "write", 0, BS)
    loc = c.storage.layout.data_location(0)
    before = total_disk_reads(c)
    c.storage.fail_disk(loc.disk)
    do_io(c, "read", 0, BS)
    # Reconstruction reads the n-1 surviving blocks of the stripe.
    assert total_disk_reads(c) - before == c.n_disks - 1


def test_raid0_fail_disk_raises_degraded_mode():
    """Non-redundant layouts report the loss at fail time, typed."""
    c = cluster_for("raid0")
    do_io(c, "write", 0, BS)
    with pytest.raises(DegradedModeError) as exc:
        c.storage.fail_disk(0)
    assert exc.value.arch == "raid0"
    assert exc.value.disk == 0
    # The disk is still marked failed despite the raise.
    assert 0 in c.storage.failed_disks
    # Reads of the lost range keep failing with the data-loss root class.
    with pytest.raises(DataLossError):
        do_io(c, "read", 0, BS)


def test_nfs_fail_disk_raises_degraded_mode():
    """NFS routes through the same degraded-path report as RAID-0."""
    c = cluster_for("nfs")
    disk = c.storage._server_disks[0]
    with pytest.raises(DegradedModeError) as exc:
        c.storage.fail_disk(disk)
    assert exc.value.arch == "nfs"
    assert disk in c.storage.failed_disks


def test_redundant_systems_fail_disk_does_not_raise():
    for arch in ("raid5", "raid10", "chained", "raidx"):
        c = cluster_for(arch)
        c.storage.fail_disk(1)  # absorbed: redundancy covers it
        assert 1 in c.storage.failed_disks


def test_raid5_two_failures_is_data_loss():
    c = cluster_for("raid5")
    do_io(c, "write", 0, BS)
    c.storage.fail_disk(0)
    c.storage.fail_disk(1)
    with pytest.raises(DataLossError):
        do_io(c, "read", 0, 3 * BS)


def test_mirrored_write_survives_single_failure():
    c = cluster_for("raid10")
    c.storage.fail_disk(0)
    do_io(c, "write", 0, BS)  # lands on the mirror only
    assert total_disk_writes(c) == 1


def test_repair_restores_full_writes():
    c = cluster_for("raid10")
    c.storage.fail_disk(0)
    c.storage.repair_disk(0)
    do_io(c, "write", 0, BS)
    assert total_disk_writes(c) == 2


# -- RAID-x specifics --------------------------------------------------------

def test_raidx_foreground_policy_counts_in_latency():
    bg = cluster_for("raidx", mirror_policy=MirrorPolicy.BACKGROUND)
    fg = cluster_for("raidx", mirror_policy="foreground")

    def timed_write(c):
        t = {}

        def p():
            t0 = c.env.now
            yield c.storage.submit(0, "write", 0, 3 * BS)
            t["w"] = c.env.now - t0
            yield from c.storage.drain()

        run_proc(c, p())
        return t["w"]

    assert timed_write(bg) < timed_write(fg)


def test_raidx_background_bytes_tracked():
    c = cluster_for("raidx")
    do_io(c, "write", 0, 3 * BS)
    assert c.storage.background_bytes == 3 * BS


def test_raidx_dirty_groups_cleared_after_drain():
    c = cluster_for("raidx")
    do_io(c, "write", 0, 3 * BS)
    assert not c.storage._dirty_groups
    assert c.storage.pending_background_flushes == 0


def test_raidx_absorbs_rewrites_of_same_extent():
    c = cluster_for("raidx")

    def p():
        evs = [
            c.storage.submit(0, "write", 0, BS) for _ in range(6)
        ]
        yield c.env.all_of(evs)
        yield from c.storage.drain()

    run_proc(c, p())
    assert c.storage.absorbed_rewrites > 0


def test_raidx_vulnerability_windows_tracked():
    c = cluster_for("raidx")
    do_io(c, "write", 0, 3 * BS)
    stats = c.storage.vulnerability_stats()
    assert stats["count"] >= 1
    assert 0 < stats["mean"] <= stats["max"]
    assert stats["p95"] <= stats["max"]


def test_raidx_foreground_policy_has_no_vulnerability_window():
    c = cluster_for("raidx", mirror_policy="foreground")
    do_io(c, "write", 0, 3 * BS)
    # Foreground flushes are measured too, but there is no *deferred*
    # exposure: the write did not complete before the image landed —
    # the windows list still records the flush durations.
    assert c.storage.vulnerability_stats()["count"] >= 1


def test_raidx_vulnerability_empty_before_writes():
    c = cluster_for("raidx")
    stats = c.storage.vulnerability_stats()
    assert stats == {"count": 0, "mean": 0.0, "max": 0.0, "p95": 0.0}


def test_raidx_mirror_policy_parse_rejects_garbage():
    with pytest.raises(ValueError):
        MirrorPolicy.parse("sometimes")


def test_raidx_read_local_mirror_option():
    # 4 nodes; block 1's data is on disk 1 (node 1); its image disk may
    # be local to another node, which can then read without the network.
    c = cluster_for("raidx", read_local_mirror=True)
    do_io(c, "write", 0, 3 * BS)
    lay = c.storage.layout
    img_disk = lay.redundancy_locations(0)[0].disk
    reader = lay.node_of_disk(img_disk)
    before = c.transport.stats.remote_block_ops
    do_io(c, "read", 0, BS, client=reader)
    assert c.transport.stats.remote_block_ops == before


def test_read_policy_validation():
    with pytest.raises(ConfigurationError):
        cluster_for("raid10", read_policy="roulette")


def test_shortest_queue_diverts_from_deep_queue():
    c = cluster_for("raid10", read_policy="shortest_queue")
    do_io(c, "write", 0, BS)
    lay = c.storage.layout
    primary = lay.data_location(0)
    mirror = lay.redundancy_locations(0)[0]
    # Pile synthetic load onto the primary's disk queue.
    for _ in range(8):
        c.disk(primary.disk).read(0, BS)
    before = c.disk(mirror.disk).stats.reads
    do_io(c, "read", 0, BS)
    assert c.disk(mirror.disk).stats.reads == before + 1


def test_shortest_queue_respects_hysteresis():
    c = cluster_for("raid10", read_policy="shortest_queue")
    do_io(c, "write", 0, BS)
    lay = c.storage.layout
    primary = lay.data_location(0)
    # One queued request is within the margin: stay on the primary.
    c.disk(primary.disk).read(0, BS)
    before = c.disk(primary.disk).stats.reads
    do_io(c, "read", 0, BS)
    assert c.disk(primary.disk).stats.reads == before + 2  # queued + ours


def test_raidx_balanced_read_avoids_dirty_image():
    c = cluster_for("raidx", read_policy="shortest_queue")

    def p():
        # Write without draining: the image is still dirty.
        yield c.storage.submit(0, "write", 0, 3 * BS)
        img = c.storage.layout.redundancy_locations(0)[0]
        primary = c.storage.layout.data_location(0)
        # Deep queue on the primary would normally divert to the image.
        for _ in range(8):
            c.disk(primary.disk).read(0, BS)
        src = c.storage._read_source(0, c.storage.sios.pieces(0, BS)[0])
        # The image may be mid-flush; only a *clean* image is eligible.
        if c.storage._dirty_groups:
            assert src == primary
        else:
            assert src in (primary, img)

    run_proc(c, p())


# -- NFS --------------------------------------------------------------------

def test_nfs_ops_hit_server_disks_only():
    c = cluster_for("nfs")
    do_io(c, "write", 0, 2 * BS, client=1)
    server_disks = set(c.nodes[0].disk_ids)
    for d in c.all_disks():
        if d.disk_id in server_disks:
            assert d.stats.writes > 0
        else:
            assert d.stats.writes == 0


def test_nfs_chunking_produces_rpcs():
    c = cluster_for("nfs")
    do_io(c, "read", 0, 32 * KiB, client=1)
    kinds = c.transport.stats.by_kind
    # 32 KiB at 8 KiB rsize = 4 RPC round trips.
    assert kinds["rpc_req"][0] == 4
    assert kinds["rpc_reply"][0] == 4


def test_nfs_server_cache_hits_skip_disk():
    c = cluster_for("nfs")
    do_io(c, "write", 0, BS, client=1)
    reads_before = total_disk_reads(c)
    do_io(c, "read", 0, BS, client=1)  # warm: written through the cache
    assert total_disk_reads(c) == reads_before


def test_nfs_cold_cache_reads_disk():
    c = cluster_for("nfs", server_cache_mb=0)
    do_io(c, "write", 0, BS, client=1)
    before = total_disk_reads(c)
    do_io(c, "read", 0, BS, client=1)
    assert total_disk_reads(c) > before


def test_nfs_out_of_range_rejected():
    c = cluster_for("nfs")
    with pytest.raises(ConfigurationError):
        do_io(c, "read", c.storage.capacity, 1)


def test_unknown_architecture_rejected():
    with pytest.raises(ConfigurationError):
        build_cluster(small_config(), architecture="raid7")

"""Golden equivalence: the plan/execute engine vs. the pre-refactor systems.

``golden_equivalence.json`` was captured from the per-system protocol
bodies *before* the plan/execute split (the hand-written
``_read``/``_write``/``_reconstruct_read`` paths).  These tests replay
the same seeded mixed workloads — healthy and single-disk-failed, all
five array architectures plus NFS, with and without locking — through
the shared :class:`~repro.cluster.engine.ExecutionEngine` and require
the results to be **byte-identical**: same request completion times
(exact float hex), same full trace-span stream (hash over every span's
kind/track/start/end/args), same per-disk op counters.

If one of these fails, the engine scheduled a different number or order
of simulator events than the protocol it replaced — a timing regression
even if every test of externally visible behaviour still passes.
"""

import json
import pathlib

import pytest

from tests.cluster.equivalence_scenarios import SCENARIOS, run_scenario

GOLDEN = pathlib.Path(__file__).parent / "golden_equivalence.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize(
    "name,arch,build_kw,system_kw,fail_disk",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_engine_matches_pre_refactor_golden(
    golden, name, arch, build_kw, system_kw, fail_disk
):
    got = run_scenario(name, arch, build_kw, system_kw, fail_disk)
    want = golden[name]
    # Compare the cheap discriminators first for a readable failure.
    assert got["final_time"] == want["final_time"], "completion time drifted"
    assert got["n_spans"] == want["n_spans"], "span count drifted"
    assert got["requests"] == want["requests"], "request spans drifted"
    assert got["disks"] == want["disks"], "per-disk op counters drifted"
    assert (
        got["span_stream_sha256"] == want["span_stream_sha256"]
    ), "full span stream drifted"
    assert got == want


def test_golden_covers_every_scenario(golden):
    assert set(golden) == {s[0] for s in SCENARIOS}

"""Cluster time-series monitoring."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.cluster.monitoring import ClusterMonitor
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload
from tests.conftest import small_config


def test_monitor_samples_on_cadence():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    r = ParallelIOWorkload(cluster, 4, op="write", size=1 * MB).run()
    assert len(mon.log) >= 3
    times = mon.log.times()
    assert times == sorted(times)
    # Cadence is the configured interval.
    assert times[1] - times[0] == pytest.approx(0.01)
    assert r.elapsed > 0


def test_monitor_sees_load():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    ParallelIOWorkload(cluster, 4, op="write", size=1 * MB).run()
    assert mon.log.peak("disk_utilization") > 0.1
    assert mon.log.peak("network_utilization") > 0.05
    assert all(
        0 <= u <= 1 for u in mon.log.series("disk_utilization")
    )


def test_monitor_stop():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    ParallelIOWorkload(cluster, 2, op="write", size=256 * 1024).run()
    n = len(mon.log)
    mon.stop()
    # stop() may flush one final partial-interval sample, never more.
    assert n <= len(mon.log) <= n + 1
    n_stopped = len(mon.log)
    ParallelIOWorkload(cluster, 2, op="write", size=256 * 1024).run()
    assert len(mon.log) == n_stopped  # no samples after stop
    mon.stop()  # idempotent
    assert len(mon.log) == n_stopped


def test_monitor_stop_flushes_partial_interval():
    """Work shorter than one interval still yields (exactly) one sample."""
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=1e6)  # cadence never fires
    mon.start()
    ParallelIOWorkload(cluster, 2, op="write", size=256 * 1024).run()
    assert len(mon.log) == 0
    mon.stop()
    assert len(mon.log) == 1
    final = mon.log.samples[0]
    assert final.time == pytest.approx(cluster.env.now)
    # Normalized by the actual elapsed time, not the giant interval.
    assert 0.0 < final.disk_utilization <= 1.0


def test_monitor_stop_before_start():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.stop()  # never started: no-op, no samples
    assert len(mon.log) == 0


def test_monitor_restart_after_stop():
    """A restarted monitor keeps sampling and skips the stopped gap."""
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    ParallelIOWorkload(cluster, 2, op="write", size=256 * 1024).run()
    mon.stop()
    n_stopped = len(mon.log)
    mon.start()
    ParallelIOWorkload(cluster, 2, op="write", size=512 * 1024).run()
    mon.stop()
    assert len(mon.log) > n_stopped
    times = mon.log.times()
    assert all(b >= a for a, b in zip(times, times[1:]))
    assert all(
        0 <= s.disk_utilization <= 1 for s in mon.log.samples
    )


def test_monitor_validation():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    with pytest.raises(ValueError):
        ClusterMonitor(cluster, interval=0)


def test_monitor_start_idempotent():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    mon.start()
    ParallelIOWorkload(cluster, 2, op="read", size=256 * 1024).run()
    # One sampler, strictly increasing times.
    times = mon.log.times()
    assert all(b > a for a, b in zip(times, times[1:]))


def test_monitor_tracks_pending_flushes():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.002)
    mon.start()
    ParallelIOWorkload(cluster, 4, op="write", size=2 * MB).run()
    assert mon.log.peak("pending_flushes") >= 0
    assert mon.log.peak("max_disk_queue") >= 1

"""Cluster time-series monitoring."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.cluster.monitoring import ClusterMonitor
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload
from tests.conftest import small_config


def test_monitor_samples_on_cadence():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    r = ParallelIOWorkload(cluster, 4, op="write", size=1 * MB).run()
    assert len(mon.log) >= 3
    times = mon.log.times()
    assert times == sorted(times)
    # Cadence is the configured interval.
    assert times[1] - times[0] == pytest.approx(0.01)
    assert r.elapsed > 0


def test_monitor_sees_load():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    ParallelIOWorkload(cluster, 4, op="write", size=1 * MB).run()
    assert mon.log.peak("disk_utilization") > 0.1
    assert mon.log.peak("network_utilization") > 0.05
    assert all(
        0 <= u <= 1 for u in mon.log.series("disk_utilization")
    )


def test_monitor_stop():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    ParallelIOWorkload(cluster, 2, op="write", size=256 * 1024).run()
    n = len(mon.log)
    mon.stop()
    ParallelIOWorkload(cluster, 2, op="write", size=256 * 1024).run()
    assert len(mon.log) == n  # no samples after stop
    mon.stop()  # idempotent


def test_monitor_validation():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    with pytest.raises(ValueError):
        ClusterMonitor(cluster, interval=0)


def test_monitor_start_idempotent():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.01)
    mon.start()
    mon.start()
    ParallelIOWorkload(cluster, 2, op="read", size=256 * 1024).run()
    # One sampler, strictly increasing times.
    times = mon.log.times()
    assert all(b > a for a, b in zip(times, times[1:]))


def test_monitor_tracks_pending_flushes():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    mon = ClusterMonitor(cluster, interval=0.002)
    mon.start()
    ParallelIOWorkload(cluster, 4, op="write", size=2 * MB).run()
    assert mon.log.peak("pending_flushes") >= 0
    assert mon.log.peak("max_disk_queue") >= 1

"""Cached fast-forward vs phase path: byte-identity (DESIGN §6.18).

PR 10 lets the fast path price cache hits and clean-miss fills in
closed form while a :class:`~repro.cluster.cache_stage.CacheStage` is
attached.  The legality claim is *byte-identity*: with the node
fast-forward on, every completion time (float-hex), the sampled span
stream (sha256 over the rendered spans), and every cache/disk/link
counter must equal the event-driven run's.  These tests drive seeded
mixed workloads — concurrent bursts, remote placements, partial-block
ops, destage pressure — through both paths and diff the signatures.

The deterministic sweep pins the regressions the development of the
fill stepper actually hit (same-instant claim-order inversion,
same-time completion-tie callback order, double-preload through the
deferral window); the Hypothesis property searches the neighborhood.
"""

import hashlib
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, cache_enabled
from repro.cluster.cluster import build_cluster
from repro.hardware import node as node_mod
from repro.obs import runtime as obs_runtime
from tests.conftest import small_config
from tests.hardware.test_node_fastforward import _hex, _signature

pytestmark = pytest.mark.skipif(
    not cache_enabled(), reason="REPRO_CACHE=0 disables the cache layer"
)

CACHE_STAT_KEYS = (
    "hits", "misses", "fills", "write_absorbed", "destaged", "lost",
    "invalidations", "evictions", "dirty_hw", "destage_batches",
)


@pytest.fixture(autouse=True)
def _reset_tracer():
    yield
    obs_runtime.reset()


def _run(
    node_ff, arch="raidx", traced=False, sample=1.0, capacity=64,
    mode="writeback", ops=None,
):
    """One cached run; returns (signature, span sha) for diffing.

    ``ops`` is a list of (op, client, block, nbytes, gap_s) steps; a
    zero gap submits the next request at the same instant — the regime
    where claim ordering and completion ties live.
    """
    old = node_mod.NODE_FAST_FORWARD
    node_mod.NODE_FAST_FORWARD = node_ff
    try:
        cluster = build_cluster(
            small_config(n=4), architecture=arch,
            cache=CacheConfig(capacity_blocks=capacity, destage_batch=8,
                              mode=mode),
        )
    finally:
        node_mod.NODE_FAST_FORWARD = old
    env = cluster.env
    storage = cluster.storage
    results = []

    def outcome(i):
        def cb(event):
            if not event._ok:
                event.defused()
            results.append((i, event._ok, _hex(env.now)))
        return cb

    def driver():
        for i, (op, client, offset, nbytes, gap) in enumerate(ops):
            ev = storage.submit(client, op, offset, nbytes)
            ev.callbacks.append(outcome(i))
            if gap:
                yield gap

    spans = []
    if traced:
        ctx = obs_runtime.tracing(sample_rate=sample, sample_seed=7)
        tracer = ctx.__enter__()
    env.process(driver())
    env.run()
    if traced:
        spans = [
            [s.kind, s.track, _hex(s.start), _hex(s.end), s.trace,
             {k: _hex(v) for k, v in sorted((s.args or {}).items())}]
            for s in tracer.spans
        ]
        ctx.__exit__(None, None, None)
    sig = _signature(cluster, results)
    stage = storage.engine.cache
    sig["cache"] = [
        {k: getattr(c.stats, k) for k in CACHE_STAT_KEYS}
        for c in stage.caches
    ]
    sig["fast_split"] = (
        storage.engine.fast_hits + storage.engine.fast_fills
        == storage.engine.fast_submits
    )
    sha = hashlib.sha256(
        json.dumps(spans, sort_keys=True).encode()
    ).hexdigest()
    return sig, sha


def _seeded_ops(seed, span_range, steps=50, bs=32 * 1024, n=4):
    """The mixed workload the development sweeps used: bursts of 1–3
    requests per step, local and remote placements, full and partial
    blocks, gaps from same-instant-adjacent to idle."""
    rnd = random.Random(seed)
    ops = []
    for step in range(steps):
        burst = 1 + step % 3
        for j in range(burst):
            block = rnd.randrange(0, span_range)
            if (step + j) % 2:
                client = block % n
            else:
                client = (step + j) % n
            op = "read" if (step + j) % 3 else "write"
            nbytes = bs if (step + j) % 4 else bs // 2
            gap = rnd.choice((0.0002, 0.003, 0.06)) if j == burst - 1 else 0
            ops.append((op, client, block * bs, nbytes, gap))
    return ops


def _assert_identical(**kw):
    phase_sig, phase_sha = _run(False, **kw)
    ff_sig, ff_sha = _run(True, **kw)
    for key in phase_sig:
        assert ff_sig[key] == phase_sig[key], key
    assert ff_sha == phase_sha


@pytest.mark.parametrize("arch", ["raidx", "raid0", "raid5"])
@pytest.mark.parametrize("traced", [False, True])
def test_cached_ff_identical_on_mixed_workload(arch, traced):
    _assert_identical(
        arch=arch, traced=traced, ops=_seeded_ops(0xA11D, 40)
    )


@pytest.mark.parametrize("mode", ["writeback", "writethrough"])
def test_cached_ff_identical_across_write_modes(mode):
    _assert_identical(
        arch="raidx", traced=True, mode=mode, ops=_seeded_ops(1, 8)
    )


def test_cached_ff_identical_under_sampled_tracing_tie_regression():
    """Seed 99 / span 40 reproduces a same-instant completion tie
    between a phase-vetoed request and a fast-forwarded fill: the
    fill's disk marker must draw its heap key at the dispatch-wake
    pop, not at submit, or the workload callbacks fire in the wrong
    order (the bug the full pop-chain replay in ``_FFFillRun`` fixes).
    """
    for capacity in (8, 64):
        _assert_identical(
            arch="raidx", traced=True, sample=0.4, capacity=capacity,
            ops=_seeded_ops(99, 40),
        )


def test_cached_ff_identical_under_destage_pressure():
    """A small cache forces eviction and destage sweeps between fills;
    the fill veto (dirty blocks, sweeps in flight) must hold the fast
    path off exactly when the phase path's claims are pending."""
    _assert_identical(
        arch="raidx", traced=True, capacity=8, ops=_seeded_ops(2024, 400)
    )


op_st = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=3),   # client
    st.integers(min_value=0, max_value=39),  # block
    st.sampled_from([32 * 1024, 16 * 1024]),  # nbytes
    st.sampled_from([0, 0.0002, 0.01]),      # gap to next submit
)


@given(
    arch=st.sampled_from(["raidx", "raid0", "raid5"]),
    traced=st.booleans(),
    raw=st.lists(op_st, min_size=1, max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_cached_ff_equivalence_property(arch, traced, raw):
    bs = 32 * 1024
    ops = [
        (op, client, block * bs, nbytes, gap)
        for op, client, block, nbytes, gap in raw
    ]
    _assert_identical(arch=arch, traced=traced, ops=ops)

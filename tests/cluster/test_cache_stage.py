"""The engine's buffer-cache stage: hits, write-back, destage, legality."""

import pytest

from repro.cache import CacheConfig, cache_enabled
from repro.cluster.cluster import build_cluster
from repro.obs import runtime as obs_runtime
from repro.obs.load import cache_hit_ratios, collect_load
from repro.obs.trace import CACHE_DESTAGE, CACHE_LOOKUP
from repro.units import KiB
from tests.conftest import run_proc, small_config

BS = 32 * KiB

CFG = CacheConfig(capacity_blocks=64, destage_batch=8)

# Under REPRO_CACHE=0 every cluster here builds cache-less, so the
# stage under test does not exist; the cache-equivalence CI job runs
# in that environment precisely because this whole file skips.
pytestmark = pytest.mark.skipif(
    not cache_enabled(), reason="REPRO_CACHE=0 disables the cache layer"
)


@pytest.fixture(autouse=True)
def _reset_tracer():
    yield
    obs_runtime.reset()


def cached_cluster(arch="raidx", cache=CFG, **kw):
    return build_cluster(
        small_config(n=4), architecture=arch, cache=cache, **kw
    )


def ff_cluster(**kw):
    """A cached cluster with the node fast-forward forced ON, so the
    fast-path accounting tests hold under a REPRO_NODE_FF=0 CI run."""
    from repro.hardware import node as node_mod

    old = node_mod.NODE_FAST_FORWARD
    node_mod.NODE_FAST_FORWARD = True
    try:
        return cached_cluster(**kw)
    finally:
        node_mod.NODE_FAST_FORWARD = old


def do_io(cluster, ops, drain=True):
    def p():
        for client, op, offset, nbytes in ops:
            yield cluster.storage.submit(client, op, offset, nbytes)
        if drain:
            yield from cluster.storage.drain()

    run_proc(cluster, p())


def total_reads(cluster):
    return sum(d.stats.reads for d in cluster.all_disks())


def total_writes(cluster):
    return sum(d.stats.writes for d in cluster.all_disks())


def stage_of(cluster):
    return cluster.storage.engine.cache


# -- read path -------------------------------------------------------------

def test_repeated_reads_hit_after_first_fill():
    c = cached_cluster()
    do_io(c, [(0, "read", 0, 2 * BS)] * 5)
    stage = stage_of(c)
    st = stage.caches[0].stats
    assert st.misses == 2  # only the first pass touches disk
    assert st.hits == 8
    assert stage.hit_rates()[0] == pytest.approx(0.8)


def test_hits_issue_no_disk_reads():
    c = cached_cluster()
    do_io(c, [(0, "read", 0, 2 * BS)])
    first = total_reads(c)
    do_io(c, [(0, "read", 0, 2 * BS)] * 10)
    assert total_reads(c) == first


def test_caches_are_per_node():
    c = cached_cluster()
    do_io(c, [(0, "read", 0, BS)])
    do_io(c, [(1, "read", 0, BS)])  # different node: its own miss
    stage = stage_of(c)
    assert stage.caches[0].stats.misses == 1
    assert stage.caches[1].stats.misses == 1


# -- write-back ------------------------------------------------------------

def test_writeback_defers_disk_writes_until_destage():
    c = cached_cluster()
    do_io(c, [(0, "write", 0, 2 * BS)], drain=False)
    assert total_writes(c) == 0  # dirty in cache only
    assert stage_of(c).dirty_or_destaging
    do_io(c, [], drain=True)
    assert total_writes(c) > 0
    assert not stage_of(c).dirty_or_destaging
    st = stage_of(c).caches[0].stats
    assert st.destaged == 2 and st.lost == 0


def test_rewrites_absorbed_before_destage():
    c = cached_cluster()
    do_io(c, [(0, "write", 0, BS)] * 6, drain=False)
    st = stage_of(c).caches[0].stats
    assert st.write_absorbed == 5  # first write dirties, rest absorb
    do_io(c, [], drain=True)
    assert st.destaged == 1  # one block, written back once


def test_writethrough_commits_immediately():
    c = cached_cluster(cache=CacheConfig(capacity_blocks=64,
                                         mode="writethrough"))
    do_io(c, [(0, "write", 0, 2 * BS)], drain=False)
    assert total_writes(c) > 0
    assert not stage_of(c).dirty_or_destaging
    # The clean cached copy serves the read-back without disk I/O.
    reads_before = total_reads(c)
    do_io(c, [(0, "read", 0, 2 * BS)])
    assert total_reads(c) == reads_before


def test_threshold_destage_triggers_under_pressure():
    cfg = CacheConfig(capacity_blocks=8, dirty_fraction=0.25,
                      destage_batch=4)
    c = cached_cluster(cache=cfg)
    do_io(c, [(0, "write", i * BS, BS) for i in range(6)], drain=False)
    c.env.run()  # let the threshold-triggered background sweep finish
    # 6 dirtied blocks crossed the 2-block threshold mid-stream: the
    # policy destaged without anyone calling drain.
    assert stage_of(c).caches[0].stats.destaged > 0


# -- coherence -------------------------------------------------------------

def test_peer_write_invalidates_cached_reader():
    c = cached_cluster()
    do_io(c, [(1, "read", 0, BS)])  # node 1 caches block 0
    stage = stage_of(c)
    assert 0 in stage.caches[1]
    invalidations = c.transport.stats.by_kind.get("invalidate", (0, 0))[0]
    do_io(c, [(0, "write", 0, BS)])
    assert 0 not in stage.caches[1]  # write-invalidate fired
    new = c.transport.stats.by_kind.get("invalidate", (0, 0))[0]
    assert new > invalidations


# -- RMW absorption --------------------------------------------------------

def test_raid5_destage_absorbs_old_data_prereads():
    """A partial-stripe write of a freshly-filled block destages
    without the old-data pre-read: only the parity read remains."""
    c = cached_cluster(arch="raid5")
    do_io(c, [(0, "write", 0, BS // 2)], drain=False)
    # The RMW fill read the block; remember the read count, then
    # destage: an absorbing RMW adds parity reads but no data re-read.
    fills = total_reads(c)
    assert fills > 0
    do_io(c, [], drain=True)
    absorbed_reads = total_reads(c) - fills

    c2 = build_cluster(small_config(n=4), architecture="raid5")
    do_io(c2, [(0, "write", 0, BS // 2)])
    uncached_reads = total_reads(c2)
    # Uncached RMW reads old data + old parity; the absorbed destage
    # drops the old-data read.
    assert absorbed_reads < uncached_reads


# -- legality --------------------------------------------------------------

def test_kill_switch_disables_cache(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    c = cached_cluster()
    assert c.storage.cache_config is None
    assert c.storage.engine.cache is None


def test_kill_switch_run_identical_to_uncached(monkeypatch):
    ops = [(0, "write", 0, 3 * BS), (1, "read", 0, 2 * BS),
           (0, "read", 4 * BS, BS), (2, "write", 2 * BS, BS)]

    def finish_time(cluster):
        do_io(cluster, ops)
        return cluster.env.now

    monkeypatch.setenv("REPRO_CACHE", "0")
    killed = finish_time(cached_cluster())
    monkeypatch.delenv("REPRO_CACHE")
    plain = finish_time(build_cluster(small_config(n=4),
                                      architecture="raidx"))
    assert killed.hex() == plain.hex()


def test_fast_forward_splits_hits_and_fills_with_cache_attached():
    """A cold single-block read fast-forwards as a clean-miss fill;
    the re-reads fast-forward as resident hits — and the engine
    accounts the split."""
    c = ff_cluster()
    do_io(c, [(0, "read", 0, BS)] * 4)
    eng = c.storage.engine
    assert eng.fast_submits == 4
    assert eng.fast_fills == 1
    assert eng.fast_hits == 3
    st = stage_of(c).caches[0].stats
    assert st.misses == 1
    assert st.hits == 3


def test_fast_forward_write_hits_stay_below_destage_threshold():
    """Write hits fast-forward only while the dirty count stays under
    the destage threshold; the threshold-crossing write takes the
    event path and triggers the sweep."""
    c = ff_cluster()
    stage = stage_of(c)
    threshold = stage.policy.threshold_blocks
    do_io(c, [(0, "write", i * BS, BS) for i in range(threshold)])
    eng = c.storage.engine
    # Every write strictly under the threshold fast-forwarded; the one
    # whose dirtying would reach it was vetoed onto the event path.
    assert eng.fast_submits == threshold - 1
    assert eng.phase_submits == 1
    assert stage.caches[0].stats.destaged > 0


def test_cache_spans_recorded():
    tracer = obs_runtime.install()
    c = cached_cluster()
    do_io(c, [(0, "write", 0, BS), (0, "read", 0, BS)])
    kinds = {s.kind for s in tracer.spans}
    assert CACHE_LOOKUP in kinds
    assert CACHE_DESTAGE in kinds


# -- observability ---------------------------------------------------------

def test_collect_load_exposes_cache_counters():
    c = cached_cluster()
    do_io(c, [(0, "read", 0, 2 * BS)] * 3 + [(0, "write", 0, BS)])
    reg = collect_load(c)
    assert reg.counter("load.node0.cache.hits").value > 0
    assert reg.counter("load.node0.cache.misses").value > 0
    assert reg.counter("load.node0.cache.destaged").value > 0
    ratios = cache_hit_ratios(reg)
    assert 0 < ratios[0] < 1

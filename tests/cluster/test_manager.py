"""Explicit storage-manager servers (cdd_mode='server')."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.errors import ConfigurationError, DiskFailedError
from repro.units import KiB, MB
from repro.workloads.parallel_io import ParallelIOWorkload
from tests.conftest import run_proc, small_config

BS = 32 * KiB


def server_cluster(slots=8, arch="raid0"):
    return build_cluster(
        small_config(n=4),
        architecture=arch,
        cdd_mode="server",
        cdd_service_slots=slots,
    )


def test_bad_mode_rejected():
    with pytest.raises(ConfigurationError):
        build_cluster(small_config(n=4), cdd_mode="carrier-pigeon")


def test_bad_slots_rejected():
    with pytest.raises(ValueError):
        build_cluster(small_config(n=4), cdd_mode="server",
                      cdd_service_slots=0)


def test_server_mode_serves_remote_ops():
    c = server_cluster()

    def p():
        yield c.storage.submit(1, "write", 0, 2 * BS)
        yield c.storage.submit(2, "read", 0, 2 * BS)

    run_proc(c, p())
    served = sum(s.served for s in c.manager_servers)
    assert served > 0
    # Data actually reached the disks.
    assert sum(d.stats.writes for d in c.all_disks()) == 2
    assert sum(d.stats.reads for d in c.all_disks()) == 2


def test_server_mode_matches_inline_op_counts():
    counts = {}
    for mode in ("inline", "server"):
        c = build_cluster(
            small_config(n=4), architecture="raid10", cdd_mode=mode
        )

        def p(c=c):
            yield c.storage.submit(0, "write", 0, 4 * BS)
            yield c.storage.submit(1, "read", 0, 4 * BS)

        run_proc(c, p())
        counts[mode] = (
            sum(d.stats.reads for d in c.all_disks()),
            sum(d.stats.writes for d in c.all_disks()),
        )
    assert counts["inline"] == counts["server"]


def test_single_slot_serializes_service():
    c = server_cluster(slots=1)
    env = c.env
    # Two concurrent remote reads of different disks owned by node 0.
    # (n=4, k=1: node 0 owns only disk 0 — so hit disk 0 twice.)
    done = []

    def issuer(client):
        yield from c.cdds[client].block_io("read", 0, 0, BS)
        done.append(env.now)

    env.process(issuer(1))
    env.process(issuer(2))
    env.run()
    server = c.manager_servers[0]
    assert server.served == 2
    assert server.mean_wait() >= 0
    assert done[1] > done[0]


def test_server_queue_wait_grows_with_load():
    wide = server_cluster(slots=8)
    narrow = server_cluster(slots=1)

    def burst(c):
        r = ParallelIOWorkload(c, 4, op="read", size=512 * KiB).run()
        waits = [s.mean_wait() for s in c.manager_servers if s.served]
        return r.elapsed, max(waits, default=0.0)

    t_wide, w_wide = burst(wide)
    t_narrow, w_narrow = burst(narrow)
    assert w_narrow > w_wide
    assert t_narrow >= t_wide


def test_server_propagates_disk_failure():
    c = server_cluster()
    c.disk(0).fail()
    errors = []

    def p():
        try:
            yield from c.cdds[1].block_io("read", 0, 0, BS)
        except DiskFailedError as e:
            errors.append(e.disk_id)

    run_proc(c, p())
    assert errors == [0]


def test_server_mode_full_workload():
    c = server_cluster(arch="raidx")
    r = ParallelIOWorkload(c, 4, op="write", size=1 * MB).run()
    assert r.aggregate_bandwidth_mb_s > 0
    assert all(s.max_queue_seen >= 0 for s in c.manager_servers)

"""Single-I/O-space address arithmetic."""

import pytest

from repro.cluster.sios import SingleIOSpace
from repro.errors import AddressError
from repro.io.request import IORequest, block_span, split_into_blocks
from repro.raid import make_layout
from repro.units import KiB


def sios(name="raid0", n_disks=4):
    lay = make_layout(
        name,
        n_disks=n_disks,
        block_size=32 * KiB,
        disk_capacity=64 * 32 * KiB,
    )
    return SingleIOSpace(lay)


def test_pieces_cover_range_exactly():
    s = sios()
    pieces = s.pieces(10_000, 100_000)
    assert sum(p.nbytes for p in pieces) == 100_000
    # Contiguity across pieces.
    pos = 10_000
    for p in pieces:
        assert p.block * s.block_size + p.intra == pos
        pos += p.nbytes


def test_pieces_respect_block_boundaries():
    s = sios()
    for p in s.pieces(5, 200_000):
        assert p.intra + p.nbytes <= s.block_size


def test_single_block_piece():
    s = sios()
    pieces = s.pieces(0, 32 * KiB)
    assert len(pieces) == 1
    assert pieces[0].intra == 0 and pieces[0].nbytes == 32 * KiB


def test_out_of_range_rejected():
    s = sios()
    with pytest.raises(AddressError):
        s.pieces(s.capacity, 1)
    with pytest.raises(AddressError):
        s.pieces(-1, 10)


def test_empty_range_ok():
    assert sios().pieces(0, 0) == []


def test_pieces_carry_placement():
    s = sios()
    p = s.pieces(0, 32 * KiB)[0]
    assert p.disk == 0
    assert p.disk_offset == 0
    p2 = s.pieces(32 * KiB, 32 * KiB)[0]
    assert p2.disk == 1


def test_locality_counts():
    s = sios()
    pieces = s.pieces(0, 4 * 32 * KiB)  # one block per disk
    local, remote = s.locality(pieces, node=0)
    assert local == 1 and remote == 3


def test_pieces_by_stripe_grouping():
    s = sios()
    pieces = s.pieces(0, 8 * 32 * KiB)
    groups = s.pieces_by_stripe(pieces)
    assert set(groups) == {0, 1}
    assert all(len(g) == 4 for g in groups.values())


def test_blocks_touched():
    s = sios()
    assert s.blocks_touched(0, 32 * KiB + 1) == [0, 1]


def test_split_into_blocks_edges():
    assert split_into_blocks(0, 0, 10) == []
    assert split_into_blocks(5, 10, 10) == [(0, 5, 5), (1, 0, 5)]
    with pytest.raises(ValueError):
        split_into_blocks(0, 10, 0)
    with pytest.raises(ValueError):
        split_into_blocks(0, -1, 10)


def test_block_span():
    assert list(block_span(0, 1, 10)) == [0]
    assert list(block_span(5, 10, 10)) == [0, 1]
    assert list(block_span(0, 0, 10)) == []


def test_iorequest_validation():
    with pytest.raises(ValueError):
        IORequest(op="append", offset=0, nbytes=1)
    with pytest.raises(ValueError):
        IORequest(op="read", offset=-1, nbytes=1)
    r = IORequest(op="read", offset=10, nbytes=5)
    assert r.end == 15

"""Seeded equivalence scenarios for the plan/execute refactor.

Each scenario drives one architecture with a deterministic mixed
read/write workload (overlapping requests, partial blocks, multiple
clients) under an installed tracer, in healthy mode and — for the
redundant layouts — with a disk failed between two phases.  The
captured signature (request completion times, full span-stream hash,
per-disk op counters, final simulated time) is compared against the
committed golden in ``golden_equivalence.json``, which was generated
from the pre-refactor per-system protocol bodies.

Byte-identical signatures are the refactor's core invariant: the shared
:class:`repro.cluster.engine.ExecutionEngine` must schedule exactly the
same simulator events, in the same order, as the five hand-written
``_read``/``_write`` paths it replaced.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.cluster import build_cluster
from repro.obs import runtime as obs_runtime
from repro.units import KiB
from tests.conftest import small_config

BS = 32 * KiB

#: (name, architecture, build kwargs, system kwargs, disk failed between
#: phase A and phase B — ``None`` = stay healthy).
SCENARIOS: List[Tuple[str, str, dict, dict, Optional[int]]] = [
    ("raid0_healthy", "raid0", {}, {}, None),
    ("nfs_healthy", "nfs", {}, {}, None),
    ("raid5_healthy", "raid5", {}, {}, None),
    ("raid5_degraded", "raid5", {}, {}, 1),
    (
        "raid5_opt_degraded",
        "raid5",
        {},
        {"full_stripe_optimization": True, "batch_rmw": True},
        1,
    ),
    ("raid10_healthy", "raid10", {}, {}, None),
    ("raid10_degraded", "raid10", {}, {}, 1),
    (
        "raid10_shortest_queue",
        "raid10",
        {},
        {"read_policy": "shortest_queue"},
        None,
    ),
    ("chained_degraded", "chained", {}, {}, 1),
    ("raidx_healthy", "raidx", {}, {}, None),
    ("raidx_degraded", "raidx", {}, {}, 1),
    (
        "raidx_foreground_degraded",
        "raidx",
        {},
        {"mirror_policy": "foreground"},
        1,
    ),
    ("raidx_locking", "raidx", {"locking": True}, {}, None),
    ("raid5_locking", "raid5", {"locking": True}, {}, None),
]


def _ops(seed: int, nops: int) -> List[Tuple[str, int, int, int]]:
    """A deterministic mixed workload: (op, client, offset, nbytes)."""
    rng = random.Random(seed)
    ops = []
    for _ in range(nops):
        op = rng.choice(["read", "write", "write"])
        client = rng.randrange(4)
        block = rng.randrange(48)
        if rng.random() < 0.25:
            # Partial / unaligned request exercising intra-block pieces.
            offset = block * BS + rng.choice([512, 4096])
            nbytes = rng.choice([1000, BS // 2, BS + 1000])
        else:
            offset = block * BS
            nbytes = rng.randint(1, 4) * BS
        ops.append((op, client, offset, nbytes))
    return ops


def _drive(cluster, ops) -> None:
    """Submit ops with overlapping in-flight windows, then drain."""
    env = cluster.env
    storage = cluster.storage

    def proc():
        events = []
        for i, (op, client, offset, nbytes) in enumerate(ops):
            events.append(storage.submit(client, op, offset, nbytes))
            if i % 3 == 2:
                # Periodic partial joins vary the queue depths the
                # later requests see (and exercise lock contention).
                yield env.all_of(events[-3:])
        yield env.all_of(events)
        yield from storage.drain()

    env.run(env.process(proc()))


def _hex(x: float) -> str:
    return float(x).hex()


def _canon(value: Any) -> Any:
    """Floats to exact hex, containers canonicalized recursively."""
    if isinstance(value, float):
        return _hex(value)
    if isinstance(value, dict):
        return {k: _canon(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    return value


def run_scenario(
    name: str, arch: str, build_kw: dict, system_kw: dict,
    fail_disk: Optional[int],
) -> Dict[str, Any]:
    """Run one scenario and return its canonical signature."""
    with obs_runtime.tracing() as tracer:
        cluster = build_cluster(
            small_config(n=4), architecture=arch, **build_kw, **system_kw
        )
        ops = _ops(seed=hash_seed(name), nops=18)
        _drive(cluster, ops[:10])
        if fail_disk is not None:
            cluster.storage.fail_disk(fail_disk)
        _drive(cluster, ops[10:])

        spans = [
            [s.kind, s.track, _hex(s.start), _hex(s.end), s.trace,
             _canon(s.args or {})]
            for s in tracer.spans
        ]
        stream = json.dumps(spans, separators=(",", ":"), sort_keys=True)
        requests = [s for s in spans if s[0] == "request"]
        disks = [
            [d.disk_id, d.stats.reads, d.stats.writes,
             _hex(d.stats.bytes_read), _hex(d.stats.bytes_written)]
            for d in cluster.all_disks()
        ]
        return {
            "final_time": _hex(cluster.env.now),
            "n_spans": len(spans),
            "span_stream_sha256": hashlib.sha256(
                stream.encode()
            ).hexdigest(),
            "requests": requests,
            "disks": disks,
            "bytes_read": _hex(cluster.storage.bytes_read),
            "bytes_written": _hex(cluster.storage.bytes_written),
        }


def hash_seed(name: str) -> int:
    """Stable per-scenario workload seed (independent of PYTHONHASHSEED)."""
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], "big")


def run_all() -> Dict[str, Any]:
    return {
        name: run_scenario(name, arch, build_kw, system_kw, fail_disk)
        for name, arch, build_kw, system_kw, fail_disk in SCENARIOS
    }

"""Edge behaviours: NFSv3 async writes, MTU fragmentation, degraded
RAID-5 writes, and NFS close-to-open charging through the FS."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.config import NetworkParams
from repro.hardware.network import Network
from repro.units import KiB
from tests.conftest import run_proc, small_config

BS = 32 * KiB


# -- NFSv3 asynchronous writes ------------------------------------------------

def test_nfs_async_writes_faster_than_stable():
    def write_time(stable):
        c = build_cluster(
            small_config(n=4), architecture="nfs", stable_writes=stable
        )
        t = {}

        def p():
            t0 = c.env.now
            yield c.storage.submit(1, "write", 0, 4 * BS)
            t["w"] = c.env.now - t0

        run_proc(c, p())
        return t["w"]

    assert write_time(stable=False) < write_time(stable=True)


def test_nfs_async_writes_still_hit_disk():
    c = build_cluster(
        small_config(n=4), architecture="nfs", stable_writes=False
    )

    def p():
        yield c.storage.submit(1, "write", 0, 2 * BS)

    run_proc(c, p())
    assert sum(d.stats.writes for d in c.all_disks()) > 0


# -- MTU fragmentation ---------------------------------------------------------

def test_large_message_pipelines_across_fragments(env):
    params = NetworkParams(incast_flow_threshold=None)
    net = Network(env, 2, params)
    mtu = params.mtu_bytes
    done = []

    def p(env):
        yield net.transfer(0, 1, 4 * mtu)
        done.append(env.now)

    env.process(p(env))
    env.run()
    rate = params.link_rate
    store_and_forward = 2 * (4 * mtu / rate)
    pipelined_floor = (4 * mtu + mtu) / rate
    # Faster than store-and-forward, no faster than perfect pipelining.
    assert done[0] < store_and_forward
    assert done[0] >= pipelined_floor


def test_fragments_interleave_between_senders(env):
    """A small message is not stuck behind a whole multi-MTU transfer."""
    params = NetworkParams(incast_flow_threshold=None)
    net = Network(env, 3, params)
    mtu = params.mtu_bytes
    done = {}

    def big(env):
        yield net.transfer(0, 2, 8 * mtu)
        done["big"] = env.now

    def small(env):
        yield env.timeout(0.001)  # arrive while the big one streams
        yield net.transfer(1, 2, mtu // 4)
        done["small"] = env.now

    env.process(big(env))
    env.process(small(env))
    env.run()
    assert done["small"] < done["big"]


# -- degraded RAID-5 writes -----------------------------------------------------

def test_raid5_write_with_failed_parity_disk():
    c = build_cluster(small_config(n=4), architecture="raid5")
    lay = c.storage.layout
    pdisk = lay.parity_disk(0)
    c.storage.fail_disk(pdisk)

    def p():
        yield c.storage.submit(0, "write", 0, BS)

    run_proc(c, p())
    # Data landed; no parity ops were attempted on the dead disk.
    data_disk = lay.data_location(0).disk
    assert c.disk(data_disk).stats.writes == 1
    assert c.disk(pdisk).stats.writes == 0


def test_raid5_write_with_failed_data_disk_updates_parity():
    c = build_cluster(small_config(n=4), architecture="raid5")
    lay = c.storage.layout
    ddisk = lay.data_location(0).disk
    c.storage.fail_disk(ddisk)

    def p():
        yield c.storage.submit(0, "write", 0, BS)

    run_proc(c, p())
    pdisk = lay.parity_disk(lay.stripe_of(0))
    assert c.disk(pdisk).stats.writes == 1


# -- NFS close-to-open charging through the FS ------------------------------------

def test_fs_on_nfs_charges_getattr_rpcs():
    from repro.fs import FileSystem

    c = build_cluster(small_config(n=4), architecture="nfs")
    fs = FileSystem(c)

    def setup():
        yield from fs.create(1, "/f")
        yield from fs.write_file(1, "/f", 4096)
        yield from fs.read_file(2, "/f")

    run_proc(c, setup())
    before = c.transport.stats.by_kind.get("rpc_req", (0, 0))[0]

    def reread():
        # Fully cached on node 2 — but close-to-open still revalidates.
        yield from fs.read_file(2, "/f")

    run_proc(c, reread())
    after = c.transport.stats.by_kind["rpc_req"][0]
    assert after > before


def test_fs_on_nfs_revalidation_can_be_disabled():
    from repro.fs import FileSystem, FsConfig

    c = build_cluster(small_config(n=4), architecture="nfs")
    fs = FileSystem(c, FsConfig(nfs_close_to_open=False))

    def setup():
        yield from fs.create(1, "/f")
        yield from fs.write_file(1, "/f", 2048)
        yield from fs.read_file(2, "/f")

    run_proc(c, setup())
    before = c.transport.stats.by_kind.get("rpc_req", (0, 0))[0]

    def reread():
        yield from fs.read_file(2, "/f")

    run_proc(c, reread())
    after = c.transport.stats.by_kind.get("rpc_req", (0, 0))[0]
    assert after == before  # served wholly from the node cache

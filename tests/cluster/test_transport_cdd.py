"""Transport costs and the cooperative disk driver protocol."""

import pytest

from repro.cluster.cluster import Cluster, build_cluster
from repro.cluster.message import MessageKind
from repro.units import KiB
from tests.conftest import run_proc, small_config


def test_loopback_message_is_cheap():
    cluster = Cluster(small_config(n=4))
    env = cluster.env
    t = {}

    def p():
        t0 = env.now
        yield from cluster.transport.message(
            MessageKind.READ_REQ, 0, 0, 32 * KiB
        )
        t["local"] = env.now - t0
        t0 = env.now
        yield from cluster.transport.message(
            MessageKind.READ_REQ, 0, 1, 32 * KiB
        )
        t["remote"] = env.now - t0

    run_proc(cluster, p())
    assert t["local"] < t["remote"]


def test_message_stats_recorded():
    cluster = Cluster(small_config(n=4))

    def p():
        yield from cluster.transport.message(MessageKind.WRITE_REQ, 0, 1, 100)
        yield from cluster.transport.message(MessageKind.WRITE_ACK, 1, 0, 64)

    run_proc(cluster, p())
    s = cluster.transport.stats
    assert s.total_messages == 2
    assert s.total_bytes == 164
    assert s.by_kind["write_req"][0] == 1


def test_local_block_io_skips_network():
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    cdd = cluster.cdds[0]
    before = cluster.transport.stats.total_messages

    def p():
        yield from cdd.block_io("read", 0, 0, 32 * KiB)

    run_proc(cluster, p())
    assert cluster.transport.stats.total_messages == before
    assert cluster.transport.stats.local_block_ops == 1


def test_remote_block_io_two_messages():
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    cdd = cluster.cdds[0]

    def p():
        yield from cdd.block_io("read", 1, 0, 32 * KiB)

    run_proc(cluster, p())
    s = cluster.transport.stats
    assert s.remote_block_ops == 1
    assert s.by_kind["read_req"][0] == 1
    assert s.by_kind["read_reply"][0] == 1
    # The read reply carried the payload.
    assert s.by_kind["read_reply"][1] > 32 * KiB


def test_remote_write_payload_on_request():
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    cdd = cluster.cdds[0]

    def p():
        yield from cdd.block_io("write", 1, 0, 32 * KiB)

    run_proc(cluster, p())
    s = cluster.transport.stats
    assert s.by_kind["write_req"][1] > 32 * KiB
    assert s.by_kind["write_ack"][1] < 1 * KiB


def test_owner_mapping_matches_fig3():
    cluster = build_cluster(small_config(n=4, k=3), architecture="raid0")
    cdd = cluster.cdds[0]
    assert cdd.owner_of(0) == 0
    assert cdd.owner_of(4) == 0
    assert cdd.owner_of(5) == 1
    assert cdd.owner_of(11) == 3


def test_remote_read_touches_remote_disk():
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    cdd = cluster.cdds[0]

    def p():
        yield from cdd.block_io("read", 2, 0, 32 * KiB)

    run_proc(cluster, p())
    assert cluster.disk(2).stats.reads == 1
    assert cluster.disk(0).stats.reads == 0


def test_cluster_stats_snapshot():
    cluster = build_cluster(small_config(n=4), architecture="raid0")

    def p():
        yield cluster.storage.submit(0, "write", 0, 64 * KiB)

    run_proc(cluster, p())
    snap = cluster.stats()
    assert snap["time"] > 0
    assert 0 <= snap["disk_utilization"] <= 1
    assert snap["messages"]["messages"] >= 0

"""Coordinated checkpointing schedules."""

import pytest

from repro.checkpoint import CheckpointConfig, CheckpointRun, SCHEMES
from repro.cluster.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.units import KiB, MB
from tests.conftest import small_config

STATE = 512 * KiB


def run_scheme(scheme, groups=None, arch="raidx", processes=4):
    cluster = build_cluster(small_config(n=4), architecture=arch)
    cfg = CheckpointConfig(
        processes=processes,
        state_bytes=STATE,
        scheme=scheme,
        stagger_groups=groups,
    )
    run = CheckpointRun(cluster, cfg)
    return run, run.run()


@pytest.mark.parametrize("scheme", SCHEMES)
def test_all_schemes_complete(scheme):
    _, r = run_scheme(scheme, groups=2)
    assert r.total_time > 0
    assert r.write_time > 0
    assert r.sync_overhead >= 0
    assert len(r.per_process_write) == 4
    assert r.aggregate_bandwidth_mb_s > 0


def test_config_validation():
    with pytest.raises(ConfigurationError):
        CheckpointConfig(processes=0).validate()
    with pytest.raises(ConfigurationError):
        CheckpointConfig(state_bytes=0).validate()
    with pytest.raises(ConfigurationError):
        CheckpointConfig(scheme="zigzag").validate()


def test_staggered_processes_write_in_turn():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    cfg = CheckpointConfig(
        processes=4, state_bytes=STATE, scheme="staggered"
    )
    run = CheckpointRun(cluster, cfg)
    run.run()
    starts = run._write_start
    for p in range(1, 4):
        # Process p starts no earlier than p-1 finished.
        assert starts[p] >= run._write_end[p - 1] - 1e-9


def test_striped_staggered_groups_in_turn():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    cfg = CheckpointConfig(
        processes=4,
        state_bytes=STATE,
        scheme="striped_staggered",
        stagger_groups=2,
    )
    run = CheckpointRun(cluster, cfg)
    run.run()
    g0_end = max(run._write_end[p] for p in (0, 1))
    g1_start = min(run._write_start[p] for p in (2, 3))
    assert g1_start >= g0_end - 1e-9


def test_parallel_processes_overlap():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    cfg = CheckpointConfig(
        processes=4, state_bytes=STATE, scheme="parallel"
    )
    run = CheckpointRun(cluster, cfg)
    run.run()
    starts = set(round(t, 9) for t in run._write_start.values())
    assert len(starts) == 1  # everyone starts at the barrier release


def test_parallel_epoch_not_slower_than_staggered():
    _, par = run_scheme("parallel")
    _, st = run_scheme("staggered")
    assert par.total_time <= st.total_time


def test_staggered_per_process_write_shorter():
    _, par = run_scheme("parallel")
    _, st = run_scheme("staggered")
    assert max(st.per_process_write.values()) <= max(
        par.per_process_write.values()
    ) * 1.05


def test_sync_overhead_counted():
    _, r = run_scheme("parallel")
    assert r.sync_overhead > 0  # marker round trips cost time


def test_region_blocks_distinct_per_process():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    cfg = CheckpointConfig(processes=4, state_bytes=STATE)
    run = CheckpointRun(cluster, cfg)
    seen = set()
    for p in range(4):
        blocks = set(run.region_blocks(p))
        assert not blocks & seen
        seen |= blocks


def test_local_image_placement_used_on_raidx():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    cfg = CheckpointConfig(
        processes=4, state_bytes=STATE, local_images=True
    )
    run = CheckpointRun(cluster, cfg)
    lay = cluster.storage.layout
    for p in range(4):
        node = run.node_of_process(p)
        for b in run.region_blocks(p):
            assert lay.mirror_group_of(b).image_disk % 4 == node


def test_generic_placement_on_other_architectures():
    cluster = build_cluster(small_config(n=4), architecture="raid10")
    cfg = CheckpointConfig(processes=2, state_bytes=STATE)
    run = CheckpointRun(cluster, cfg)
    blocks = run.region_blocks(1)
    assert len(blocks) == -(-STATE // cluster.storage.block_size)


def test_striped_staggering_targets_successive_disk_groups():
    """Fig. 7 / Fig. 3: on a 4×3 array with 3 stagger steps, process
    group g checkpoints into disk group g — 'successive stripes are
    accessed ... from different stripes on successive 4-disk groups'."""
    cluster = build_cluster(small_config(n=4, k=3), architecture="raidx")
    cfg = CheckpointConfig(
        processes=12,
        state_bytes=128 * KiB,
        scheme="striped_staggered",
        stagger_groups=3,
        local_images=True,
    )
    run = CheckpointRun(cluster, cfg)
    lay = cluster.storage.layout
    for p in range(12):
        expected_group = p // 4
        for b in run.region_blocks(p):
            data_disk = lay.data_location(b).disk
            assert lay.disk_group(data_disk) == expected_group
    r = run.run()
    assert r.total_time > 0


def test_checkpoint_on_all_architectures():
    for arch in ("raid0", "raid5", "raid10", "chained", "raidx"):
        cluster = build_cluster(small_config(n=4), architecture=arch)
        cfg = CheckpointConfig(
            processes=2, state_bytes=128 * KiB, scheme="parallel"
        )
        r = CheckpointRun(cluster, cfg).run()
        assert r.total_time > 0

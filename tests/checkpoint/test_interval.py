"""Young's checkpoint-interval model."""

import math

import pytest

from repro.checkpoint.interval import (
    optimal_interval,
    overhead_fraction,
    plan_interval,
)


def test_optimal_interval_formula():
    assert optimal_interval(10.0, 20_000.0) == pytest.approx(
        math.sqrt(2 * 10 * 20_000)
    )


def test_optimal_interval_minimizes_overhead():
    c, mtbf = 5.0, 50_000.0
    t_opt = optimal_interval(c, mtbf)
    best = overhead_fraction(c, t_opt, mtbf)
    for factor in (0.5, 0.8, 1.25, 2.0):
        assert overhead_fraction(c, t_opt * factor, mtbf) >= best - 1e-12


def test_overhead_includes_recovery():
    base = overhead_fraction(5.0, 500.0, 50_000.0)
    with_recovery = overhead_fraction(
        5.0, 500.0, 50_000.0, recovery_cost_s=100.0
    )
    assert with_recovery > base


def test_plan_interval_bundles_everything():
    plan = plan_interval(5.0, 50_000.0, recovery_cost_s=2.0)
    assert plan.interval_s == pytest.approx(optimal_interval(5.0, 50_000))
    assert 0 < plan.overhead < 1


def test_cheaper_checkpoints_allow_shorter_intervals():
    """The RAID-x pitch: faster checkpoints (smaller C) shrink both the
    optimal interval and the total overhead."""
    fast = plan_interval(2.0, 50_000.0)
    slow = plan_interval(20.0, 50_000.0)
    assert fast.interval_s < slow.interval_s
    assert fast.overhead < slow.overhead


def test_validation():
    with pytest.raises(ValueError):
        optimal_interval(0, 100)
    with pytest.raises(ValueError):
        optimal_interval(200, 100)
    with pytest.raises(ValueError):
        overhead_fraction(1, 0, 100)


def test_end_to_end_with_measured_checkpoint_cost():
    """Wire a measured C from the simulator into the interval model."""
    from repro.checkpoint import CheckpointConfig, CheckpointRun
    from repro.cluster.cluster import build_cluster
    from tests.conftest import small_config

    cluster = build_cluster(small_config(n=4), architecture="raidx")
    cfg = CheckpointConfig(processes=4, state_bytes=512 * 1024)
    result = CheckpointRun(cluster, cfg).run()
    plan = plan_interval(result.total_time, mtbf_s=24 * 3600.0)
    assert plan.interval_s > result.total_time
    assert plan.overhead < 0.1

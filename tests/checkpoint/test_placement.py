"""Checkpoint placement: disk-group regions and the local-image property."""

import pytest

from repro.checkpoint.placement import (
    local_image_region,
    region_blocks_for_disk_group,
)
from repro.errors import ConfigurationError
from repro.raid import make_layout


def layout(n=4, k=3, rows=64):
    return make_layout(
        "raidx",
        n_disks=n * k,
        block_size=1,
        disk_capacity=rows,
        stripe_width=n,
    )


def test_disk_group_region_stays_in_group():
    lay = layout()
    for group in range(3):
        blocks = region_blocks_for_disk_group(lay, group, 16)
        assert len(blocks) == 16
        for b in blocks:
            assert lay.disk_group(lay.data_location(b).disk) == group


def test_disk_group_region_stripes_over_all_group_disks():
    lay = layout()
    blocks = region_blocks_for_disk_group(lay, 1, 8)
    disks = {lay.data_location(b).disk for b in blocks}
    assert disks == {4, 5, 6, 7}


def test_disk_group_region_bad_group():
    lay = layout()
    with pytest.raises(ConfigurationError):
        region_blocks_for_disk_group(lay, 3, 4)


def test_disk_group_region_capacity_guard():
    lay = layout(rows=4)
    with pytest.raises(ConfigurationError):
        region_blocks_for_disk_group(lay, 0, 10_000)


def test_local_image_region_invariant():
    lay = layout()
    for node in range(4):
        blocks = local_image_region(lay, node, 9, disk_group=1)
        assert len(blocks) == 9
        for b in blocks:
            mg = lay.mirror_group_of(b)
            assert mg.image_disk % 4 == node
            assert lay.disk_group(mg.image_disk) == 1


def test_local_image_region_data_still_striped():
    lay = layout()
    blocks = local_image_region(lay, 0, 9, disk_group=0)
    data_disks = {lay.data_location(b).disk for b in blocks}
    assert len(data_disks) > 1  # striped writes, not a single disk


def test_local_image_regions_disjoint_across_nodes():
    lay = layout()
    seen = set()
    for node in range(4):
        blocks = set(local_image_region(lay, node, 9, disk_group=0))
        assert not blocks & seen
        seen |= blocks


def test_local_image_region_bad_node():
    lay = layout()
    with pytest.raises(ConfigurationError):
        local_image_region(lay, 7, 4)


def test_local_image_region_capacity_guard():
    lay = layout(rows=4)
    with pytest.raises(ConfigurationError):
        local_image_region(lay, 0, 10_000)

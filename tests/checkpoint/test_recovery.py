"""Recovery from striped checkpoints: transient vs permanent."""

import pytest

from repro.checkpoint import CheckpointConfig, CheckpointRun, recover
from repro.cluster.cluster import build_cluster
from repro.errors import CheckpointError
from repro.units import KiB
from tests.conftest import run_proc, small_config

STATE = 512 * KiB


def completed_run(arch="raidx", local_images=True):
    cluster = build_cluster(small_config(n=4), architecture=arch)
    cfg = CheckpointConfig(
        processes=4,
        state_bytes=STATE,
        scheme="striped_staggered",
        stagger_groups=2,
        local_images=local_images,
    )
    run = CheckpointRun(cluster, cfg)
    run.run()
    run_proc(cluster, cluster.storage.drain())
    return run


def test_transient_uses_local_mirror():
    run = completed_run()
    r = recover(run, 0, "transient")
    assert r.used_local_mirror
    assert r.elapsed > 0
    assert r.nbytes == STATE
    assert r.bandwidth_mb_s > 0


def test_transient_recovery_is_network_free():
    run = completed_run()
    before = run.cluster.transport.stats.remote_block_ops
    recover(run, 1, "transient")
    assert run.cluster.transport.stats.remote_block_ops == before


def test_permanent_reads_striped_data():
    run = completed_run()
    before = run.cluster.transport.stats.remote_block_ops
    r = recover(run, 0, "permanent")
    assert not r.used_local_mirror
    # Striped reads must touch remote disks.
    assert run.cluster.transport.stats.remote_block_ops > before


def test_transient_without_local_placement_falls_back():
    run = completed_run(local_images=False)
    r = recover(run, 0, "transient")
    assert not r.used_local_mirror


def test_non_raidx_recovery_is_striped():
    run = completed_run(arch="raid10")
    r = recover(run, 0, "transient")
    assert not r.used_local_mirror
    assert r.elapsed > 0


def test_unknown_kind_rejected():
    run = completed_run()
    with pytest.raises(CheckpointError):
        recover(run, 0, "cosmic")

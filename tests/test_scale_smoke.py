"""Scale-sweep smoke: sharding determinism, cache resume, perf floors.

Runs ``repro.bench.experiments.run_scale`` at a tiny scale and pins the
three contracts CI cares about:

* the sharded runner is deterministic — serial and pooled runs of the
  same points produce byte-identical rows (``_scale_point`` returns
  only simulation-pure metrics, no wall-clock);
* shards compose with the content-addressed sweep cache — a rerun
  simulates nothing, and raising the replica count re-simulates only
  the new seeds;
* fast-forwarded open-loop throughput stays above the generous floors
  committed in ``BENCH_scale_floors.json`` (~20-50x below the numbers
  in ``BENCH_scale.json``, so it only catches catastrophic hot-path
  regressions, never slow CI hardware).

Deselect the timing test with ``pytest -m "not perf_smoke"``.
"""

import json
import pathlib
import time

import pytest

from repro.bench.cache import SweepCache
from repro.bench.experiments import _scale_point, run_scale

_ROOT = pathlib.Path(__file__).parent.parent
_FLOORS_FILE = _ROOT / "BENCH_scale_floors.json"

# Tiny but representative: two cluster sizes, sharded arrivals.
NODES = [4, 8]
REQUESTS = 1200
SHARDS = 3


def _rows(result):
    return json.dumps(result.rows, sort_keys=True)


def test_sharded_sweep_is_deterministic_across_workers():
    serial = run_scale(NODES, REQUESTS, shards=SHARDS, cache=False)
    pooled = run_scale(
        NODES, REQUESTS, shards=SHARDS, cache=False, workers=2
    )
    again = run_scale(NODES, REQUESTS, shards=SHARDS, cache=False)
    assert _rows(serial) == _rows(pooled) == _rows(again)


def test_shards_have_independent_arrival_streams():
    a = _scale_point(n_nodes=4, n_requests=400, seed=0)
    b = _scale_point(n_nodes=4, n_requests=400, seed=1)
    assert a["completed"] == b["completed"] == 400
    assert a["hist"] != b["hist"]  # different seeds, different latencies


def test_scale_rows_expose_fast_forward_hits():
    row = _scale_point(n_nodes=4, n_requests=400, seed=0)
    # The headline scenario is the conflict-free regime: the analytic
    # node fast-forward must serve the overwhelming majority.
    assert row["fast_submits"] > 0.8 * row["completed"]
    assert row["events"] < 6 * row["completed"]


def test_sharded_sweep_composes_with_cache(tmp_path):
    sc = SweepCache(root=tmp_path / "cache", fingerprint="fp-scale")
    first = run_scale(NODES, REQUESTS, shards=SHARDS, cache=sc)
    assert sc.stores == len(NODES) * SHARDS and sc.hits == 0

    second = run_scale(NODES, REQUESTS, shards=SHARDS, cache=sc)
    assert sc.stores == len(NODES) * SHARDS  # zero new simulations
    assert sc.hits == len(NODES) * SHARDS
    assert _rows(second) == _rows(first)

    # A replica bump re-simulates only the new seeds; per-shard request
    # counts must match for the old shards to be cache hits.
    run_scale(
        NODES,
        REQUESTS // SHARDS * (SHARDS + 1),
        shards=SHARDS + 1,
        cache=sc,
    )
    assert sc.stores == len(NODES) * (SHARDS + 1)
    assert sc.hits == 2 * len(NODES) * SHARDS


def test_floors_file_matches_benchmark():
    doc = json.loads(_FLOORS_FILE.read_text())
    assert set(doc["floors"]) == {"requests_per_sec", "events_per_sec"}


@pytest.mark.perf_smoke
def test_scale_throughput_floor():
    doc = json.loads(_FLOORS_FILE.read_text())
    n_requests = doc["scale"]
    t0 = time.perf_counter()
    row = _scale_point(n_nodes=12, n_requests=n_requests, seed=0)
    wall = time.perf_counter() - t0
    req_rate = row["completed"] / wall
    ev_rate = row["events"] / wall
    assert req_rate > doc["floors"]["requests_per_sec"], (
        f"{req_rate:,.0f} requests/sec is below the generous "
        f"{doc['floors']['requests_per_sec']:,} floor — the open-loop "
        f"fast path regressed badly"
    )
    assert ev_rate > doc["floors"]["events_per_sec"]

"""Configuration validation, unit helpers, message sizes, metadata."""

import pytest

import repro
from repro.cluster.message import (
    ACK_BYTES,
    HEADER_BYTES,
    Message,
    MessageKind,
    read_reply_size,
    read_request_size,
    write_ack_size,
    write_request_size,
)
from repro.config import (
    ArrayGeometry,
    ClusterConfig,
    CpuParams,
    DiskParams,
    NetworkParams,
    trojans_cluster,
)
from repro.errors import ConfigurationError, DiskFailedError, ReproError
from repro.units import (
    FAST_ETHERNET_BPS,
    GB,
    KB,
    KiB,
    MB,
    fmt_bytes,
    fmt_time,
    mb_per_s,
)


def test_trojans_preset_shape():
    cfg = trojans_cluster()
    assert cfg.n_nodes == 12
    assert cfg.geometry.total_disks == 12
    assert cfg.geometry.block_size == 32 * KiB
    cfg.validate()


def test_geometry_2d():
    cfg = trojans_cluster(n=4, k=3)
    assert cfg.geometry.total_disks == 12
    assert cfg.n_nodes == 4


def test_with_geometry_copy():
    cfg = trojans_cluster()
    new = cfg.with_geometry(6, 2)
    assert new.geometry.n == 6 and new.geometry.k == 2
    assert cfg.geometry.n == 12  # original untouched


def test_geometry_validation():
    with pytest.raises(ConfigurationError):
        ArrayGeometry(n=1).validate()
    with pytest.raises(ConfigurationError):
        ArrayGeometry(n=4, k=0).validate()
    with pytest.raises(ConfigurationError):
        ArrayGeometry(n=4, block_size=0).validate()


def test_disk_params_validation():
    with pytest.raises(ConfigurationError):
        DiskParams(capacity_bytes=0).validate()
    with pytest.raises(ConfigurationError):
        DiskParams(full_stroke_seek_s=0.001, avg_seek_s=0.01).validate()
    assert DiskParams(rpm=7200).avg_rotation_s == pytest.approx(
        0.5 * 60 / 7200
    )


def test_network_params_validation():
    with pytest.raises(ConfigurationError):
        NetworkParams(link_rate=0).validate()
    with pytest.raises(ConfigurationError):
        NetworkParams(mtu_bytes=0).validate()
    p = NetworkParams()
    cost = p.message_cpu_cost(1000)
    assert cost > p.per_message_overhead_s


def test_cpu_params():
    with pytest.raises(ConfigurationError):
        CpuParams(xor_rate=0).validate()
    p = CpuParams()
    assert p.xor_time(p.xor_rate) == pytest.approx(1.0)


def test_message_sizes():
    assert read_request_size() == HEADER_BYTES
    assert read_reply_size(1000) == HEADER_BYTES + 1000
    assert write_request_size(1000) == HEADER_BYTES + 1000
    assert write_ack_size() == ACK_BYTES
    with pytest.raises(ValueError):
        Message(MessageKind.READ_REQ, 0, 1, -1)


def test_units_constants():
    assert KB == 1000 and MB == 10**6 and GB == 10**9
    assert KiB == 1024
    assert FAST_ETHERNET_BPS == pytest.approx(12.5e6)
    assert mb_per_s(25e6) == pytest.approx(25.0)


def test_fmt_helpers():
    assert fmt_bytes(1_500_000) == "1.50 MB"
    assert fmt_bytes(999) == "999 B"
    assert "ms" in fmt_time(0.005)
    assert "us" in fmt_time(5e-6)
    assert "s" in fmt_time(2.0)


def test_exception_hierarchy():
    assert issubclass(ConfigurationError, ReproError)
    assert issubclass(DiskFailedError, ReproError)
    e = DiskFailedError(7)
    assert e.disk_id == 7
    assert "7" in str(e)


def test_version_metadata():
    assert repro.__version__ == "1.0.0"
    assert callable(repro.build_cluster)


def test_top_level_build_cluster():
    cluster = repro.build_cluster(architecture="raid0")
    assert cluster.n_nodes == 12
    assert cluster.storage.name == "raid0"

"""Floors + headline claims for the buffer-cache benchmark.

Two layers of guard over ``benchmarks/bench_cache.py``:

* **perf_smoke floors** — events/sec at a tiny scale stays above the
  generous floors in ``BENCH_cache_floors.json`` (~30x below the
  committed BENCH_cache.json measurements), catching catastrophic
  cache-stage hot-path regressions without flaking on slow CI;
* **simulation facts** — the acceptance claims the cache layer makes
  (ISSUE 9): Zipf-hotspot read hit ratio > 0 and strictly growing with
  capacity until the hot set fits, and partial-stripe RMW destages
  issuing measurably fewer disk reads than the cache-off baseline.
  These are deterministic simulation outputs, not timing.

Deselect the timing half with ``pytest -m "not perf_smoke"``.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.cache import cache_enabled

_ROOT = pathlib.Path(__file__).parent.parent
_BENCH = _ROOT / "benchmarks" / "bench_cache.py"
_FLOORS_FILE = _ROOT / "BENCH_cache_floors.json"


def _load_bench_cache():
    spec = importlib.util.spec_from_file_location("bench_cache", _BENCH)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


bench_cache = _load_bench_cache()

_FLOORS_DOC = json.loads(_FLOORS_FILE.read_text())
FLOORS = _FLOORS_DOC["floors"]
SCALE = _FLOORS_DOC["scale"]

needs_cache = pytest.mark.skipif(
    not cache_enabled(), reason="REPRO_CACHE=0 disables the cache layer"
)


def test_floors_cover_every_scenario():
    assert sorted(FLOORS) == sorted(bench_cache.SCENARIOS)


@pytest.mark.perf_smoke
@pytest.mark.parametrize("scenario", sorted(FLOORS))
def test_cache_throughput_floor(scenario):
    stats = bench_cache.measure(scenario, scale=SCALE, repeats=1)
    assert "error" not in stats, stats
    rate = stats["events_per_sec"]
    assert rate > FLOORS[scenario], (
        f"{scenario}: {rate:,.0f} events/sec is below the generous "
        f"{FLOORS[scenario]:,} floor — the cache stage regressed badly"
    )


@needs_cache
def test_zipf_hit_ratio_positive_and_reads_reduced():
    _, uncached = bench_cache._zipf_point(None, 1_000)
    _, cached = bench_cache._zipf_point(128, 1_000)
    assert uncached["hit_ratio"] == 0.0
    assert cached["hit_ratio"] > 0
    assert cached["disk_reads"] < uncached["disk_reads"]
    assert cached["lost"] == 0


@needs_cache
def test_cached_fast_forward_engages_on_high_hit_zipf():
    """The PR 10 A/B pair, simulation facts only: with the fast path
    on, nearly every request prices in closed form, and the simulation
    itself is unchanged — same disk ops, same hit ratio (byte-identity
    is asserted request-by-request in
    tests/cluster/test_cache_ff_equivalence.py)."""
    _, phase = bench_cache._ff_ab_point(False, 2_000)
    _, fast = bench_cache._ff_ab_point(True, 2_000)
    assert phase["fast_submits"] == 0
    assert fast["fast_submits"] > 0
    assert fast["ff_fraction"] > 0.9
    assert fast["fast_hits"] + fast["fast_fills"] == fast["fast_submits"]
    for fact in ("hit_ratio", "disk_reads", "disk_writes"):
        assert fast[fact] == phase[fact], fact


@needs_cache
def test_rmw_preread_reduction():
    _, uncached = bench_cache._rmw_point(False, 500)
    _, cached = bench_cache._rmw_point(True, 500)
    # Cache-off RMW: old-data + old-parity pre-read per partial write.
    assert uncached["reads_per_write"] == pytest.approx(2.0)
    # Absorption drops the old-data read; rewrites of hot blocks fold
    # entirely, so the cached stream pays well under half the reads.
    assert cached["reads_per_write"] < uncached["reads_per_write"] / 1.5


def test_committed_measurements_match_claims():
    """BENCH_cache.json (the committed artifact) must actually show the
    acceptance numbers it exists to report."""
    doc = json.loads((_ROOT / "BENCH_cache.json").read_text())
    ratios = doc["summary"]["hit_ratio_by_capacity"]
    assert all(v > 0 for v in ratios.values())
    ordered = [ratios[k] for k in sorted(ratios, key=int)]
    assert ordered == sorted(ordered)  # bigger cache never hits less
    rmw = doc["summary"]["rmw_reads_per_write"]
    assert rmw["cached"] < rmw["uncached"]
    # PR 10 acceptance: closed-form hits/fills buy >= 1.5x requests/sec
    # over the old total-veto behaviour on the high-hit Zipf pair.
    assert doc["summary"]["cache_ff_speedup"] >= 1.5
    assert doc["summary"]["cache_ff_fraction"] > 0.9

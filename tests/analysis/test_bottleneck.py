"""Bottleneck analysis over a run cluster."""

import pytest

from repro.analysis.bottleneck import bottleneck, resource_usage, usage_table
from repro.cluster.cluster import build_cluster
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload
from tests.conftest import small_config


def run_cluster():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    ParallelIOWorkload(cluster, 4, op="write", size=1 * MB).run()
    return cluster


def test_usage_covers_all_resource_classes():
    cluster = run_cluster()
    usages = {u.name for u in resource_usage(cluster)}
    assert usages == {"disk", "disk_foreground", "nic_tx", "nic_rx", "cpu", "scsi"}


def test_usages_bounded():
    cluster = run_cluster()
    for u in resource_usage(cluster):
        assert 0.0 <= u.mean <= u.peak <= 1.0


def test_bottleneck_is_loaded():
    cluster = run_cluster()
    b = bottleneck(cluster)
    assert b.peak > 0.1


def test_bottleneck_before_run_rejected():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    with pytest.raises(ValueError):
        bottleneck(cluster)


def test_foreground_disk_usage_excludes_background():
    cluster = run_cluster()
    table = usage_table(cluster)
    # RAID-x background image flushes inflate total disk busy time.
    assert table["disk_foreground"]["peak"] <= table["disk"]["peak"]


def test_bottleneck_never_names_raw_disk():
    cluster = run_cluster()
    assert bottleneck(cluster).name != "disk"


def test_usage_table_shape():
    cluster = run_cluster()
    table = usage_table(cluster)
    assert set(table) == {"disk", "disk_foreground", "nic_tx", "nic_rx", "cpu", "scsi"}
    for vals in table.values():
        assert set(vals) == {"mean", "peak"}

"""Analytical models: Table 2 formulas, scalability math, reporting."""

import math

import pytest

from repro.analysis.peak import (
    ARCH_ORDER,
    FORMULAS,
    PeakModel,
    peak_table,
    write_improvement_over_chained,
)
from repro.analysis.report import (
    render_series,
    render_sparkline,
    render_table,
)
from repro.analysis.scalability import (
    crossover_points,
    improvement_factor,
    scaling_efficiency,
    speedup_series,
    summarize_table3,
)


def model(n=12):
    return PeakModel(n=n, B=10.0, m=60, R=0.003, W=0.003)


def test_table2_read_bandwidth():
    t = peak_table(model())
    assert t["raidx"]["max_bw_read"] == 120
    assert t["raid5"]["max_bw_read"] == 110
    assert t["raid10"]["max_bw_read"] == 120


def test_table2_raidx_write_advantage():
    t = peak_table(model())
    # RAID-x small/large write bandwidth = full nB, double the mirrors.
    assert t["raidx"]["max_bw_large_write"] == pytest.approx(
        2 * t["raid10"]["max_bw_large_write"]
    )
    assert t["raidx"]["max_bw_small_write"] == pytest.approx(
        4 * t["raid5"]["max_bw_small_write"]
    )


def test_table2_small_write_latency():
    t = peak_table(model())
    assert t["raid5"]["t_small_write"] == pytest.approx(0.006)
    for arch in ("raid10", "chained", "raidx"):
        assert t[arch]["t_small_write"] == pytest.approx(0.003)


def test_table2_raidx_large_write_formula():
    m = model()
    t = peak_table(m)
    expected = (
        m.m * m.W / m.n + m.m * m.W / (m.n * (m.n - 1))
    )
    assert t["raidx"]["t_large_write"] == pytest.approx(expected)
    assert t["raidx"]["t_large_write"] < t["raid10"]["t_large_write"]


def test_table2_fault_coverage_row():
    t = peak_table(model())
    assert t["raid10"]["fault_coverage"] == 6
    assert t["raid5"]["fault_coverage"] == 1
    assert t["raidx"]["fault_coverage"] == 1


def test_formulas_cover_all_cells():
    t = peak_table(model())
    for arch in ARCH_ORDER:
        assert set(FORMULAS[arch]) == set(t[arch])


def test_peak_model_validation():
    with pytest.raises(ValueError):
        PeakModel(n=1, B=1, m=1, R=1, W=1)
    with pytest.raises(ValueError):
        PeakModel(n=4, B=0, m=1, R=1, W=1)
    with pytest.raises(ValueError):
        model().row("raid9")


def test_write_improvement_approaches_two():
    small = write_improvement_over_chained(4)
    big = write_improvement_over_chained(1000)
    assert small < big < 2.0
    assert big == pytest.approx(2.0, abs=0.01)


def test_improvement_factor():
    assert improvement_factor(2.0, 10.0) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        improvement_factor(0, 1)


def test_scaling_efficiency_linear_is_one():
    eff = scaling_efficiency([1, 2, 4], [5.0, 10.0, 20.0])
    assert eff == pytest.approx([1.0, 1.0, 1.0])


def test_scaling_efficiency_validation():
    with pytest.raises(ValueError):
        scaling_efficiency([1], [1.0, 2.0])
    with pytest.raises(ValueError):
        scaling_efficiency([], [])


def test_speedup_series():
    assert speedup_series([1, 2], [3.0, 9.0]) == pytest.approx([1, 3])


def test_crossover_detection():
    xs = [1, 2, 3, 4]
    a = [1.0, 2.0, 3.0, 4.0]
    b = [4.0, 3.0, 2.0, 1.0]
    pts = crossover_points(xs, a, b)
    assert len(pts) == 1
    assert pts[0][0] == pytest.approx(2.5)


def test_crossover_none_when_parallel():
    assert crossover_points([1, 2], [1, 2], [2, 3]) == []


def test_summarize_table3():
    res = summarize_table3(
        {"raidx": {1: 3.0, 12: 30.0}}, endpoints=(1, 12)
    )
    assert res["raidx"] == (3.0, 30.0, pytest.approx(10.0))
    with pytest.raises(ValueError):
        summarize_table3({"x": {1: 3.0}}, endpoints=(1, 12))


def test_render_table_alignment():
    out = render_table(["a", "bb"], [[1, 2.5], ["xxx", float("nan")]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "-+-" in lines[1]
    assert "-" in lines[3]  # NaN rendered as dash


def test_render_table_row_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a"], [[1, 2]])


def test_render_series():
    out = render_series("x", [1, 2], {"s": [10.0, 20.0]}, title="T")
    assert out.startswith("T")
    assert "20.00" in out


def test_render_sparkline():
    s = render_sparkline([0, 1, 2, 3])
    assert len(s) == 4
    assert render_sparkline([]) == ""

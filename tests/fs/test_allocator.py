"""Block allocator: bitmap correctness and contiguity hint."""

import pytest

from repro.errors import NoSpaceError
from repro.fs.allocator import BlockAllocator


def test_allocates_from_region_start():
    a = BlockAllocator(first_block=100, n_blocks=10)
    assert a.allocate(3) == [100, 101, 102]
    assert a.free_count == 7


def test_allocation_prefers_contiguity():
    a = BlockAllocator(0, 100)
    first = a.allocate(5)
    second = a.allocate(5)
    assert second[0] == first[-1] + 1


def test_free_and_reuse():
    a = BlockAllocator(0, 4)
    blocks = a.allocate(4)
    a.free(blocks[:2])
    assert a.free_count == 2
    got = a.allocate(2)
    assert sorted(got) == blocks[:2]


def test_exhaustion_raises():
    a = BlockAllocator(0, 3)
    a.allocate(3)
    with pytest.raises(NoSpaceError):
        a.allocate(1)


def test_over_request_raises_without_leak():
    a = BlockAllocator(0, 3)
    with pytest.raises(NoSpaceError):
        a.allocate(4)
    assert a.free_count == 3


def test_double_free_rejected():
    a = BlockAllocator(0, 4)
    blocks = a.allocate(1)
    a.free(blocks)
    with pytest.raises(ValueError):
        a.free(blocks)


def test_foreign_block_free_rejected():
    a = BlockAllocator(10, 4)
    with pytest.raises(ValueError):
        a.free([3])


def test_is_free_queries():
    a = BlockAllocator(0, 4)
    blocks = a.allocate(2)
    assert not a.is_free(blocks[0])
    assert a.is_free(3)
    with pytest.raises(ValueError):
        a.is_free(99)


def test_invalid_params():
    with pytest.raises(ValueError):
        BlockAllocator(0, 0)
    a = BlockAllocator(0, 4)
    with pytest.raises(ValueError):
        a.allocate(0)


def test_wraparound_scan():
    a = BlockAllocator(0, 6)
    first = a.allocate(4)  # hint now at 4
    a.free(first[:2])  # holes at 0,1
    got = a.allocate(4)  # takes 4,5 then wraps to 0,1
    assert sorted(got) == [0, 1, 4, 5]

"""Directory entry management."""

import pytest

from repro.errors import FileExists, FileNotFound
from repro.fs.directory import DirectoryData


def test_add_lookup_remove_cycle():
    d = DirectoryData(block_size=4096)
    d.add("a.txt", 7)
    assert d.lookup("a.txt").ino == 7
    entry = d.remove("a.txt")
    assert entry.ino == 7
    with pytest.raises(FileNotFound):
        d.lookup("a.txt")


def test_duplicate_add_rejected():
    d = DirectoryData(4096)
    d.add("x", 1)
    with pytest.raises(FileExists):
        d.add("x", 2)


def test_remove_missing_rejected():
    d = DirectoryData(4096)
    with pytest.raises(FileNotFound):
        d.remove("ghost")


def test_compacting_removal_keeps_index_consistent():
    d = DirectoryData(4096)
    for i, name in enumerate("abcde"):
        d.add(name, i)
    d.remove("b")  # 'e' moves into slot 1
    assert d.lookup("e").ino == 4
    assert d.lookup("a").ino == 0
    assert sorted(d.names()) == ["a", "c", "d", "e"]
    assert len(d) == 4


def test_block_placement_math():
    d = DirectoryData(block_size=64)  # 2 entries per block
    assert d.entries_per_block == 2
    for i in range(5):
        d.add(f"f{i}", i)
    assert d.block_index_of_entry(0) == 0
    assert d.block_index_of_entry(2) == 1
    assert d.block_index_of_entry(4) == 2
    assert d.n_blocks() == 3


def test_empty_directory_needs_one_block():
    d = DirectoryData(4096)
    assert d.n_blocks() == 1
    assert d.names() == []

"""File system operations end to end over the simulated storage."""

import pytest

from repro.errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    IsADirectory,
    NotADirectory,
)
from repro.fs import FileSystem, FsConfig
from repro.fs.inode import N_DIRECT, FileType
from tests.conftest import run_proc


@pytest.fixture
def fs(raidx_cluster):
    return FileSystem(raidx_cluster)


def test_create_and_stat(fs):
    def p():
        yield from fs.mkdir(0, "/d")
        yield from fs.create(0, "/d/f")
        st = yield from fs.stat(1, "/d/f")
        assert st.size == 0
        assert st.type is FileType.FILE
        st2 = yield from fs.stat(1, "/d")
        assert st2.type is FileType.DIRECTORY

    run_proc(fs.cluster, p())


def test_write_then_read_roundtrip_size(fs):
    def p():
        yield from fs.create(0, "/f")
        yield from fs.write_file(0, "/f", 10_000)
        size = yield from fs.read_file(2, "/f")
        assert size == 10_000

    run_proc(fs.cluster, p())


def test_write_missing_file_raises(fs):
    def p():
        yield from fs.write_file(0, "/nope", 10)

    with pytest.raises(FileNotFound):
        run_proc(fs.cluster, p())


def test_duplicate_create_rejected(fs):
    def p():
        yield from fs.create(0, "/f")
        yield from fs.create(0, "/f")

    with pytest.raises(FileExists):
        run_proc(fs.cluster, p())


def test_mkdir_in_missing_parent_rejected(fs):
    def p():
        yield from fs.mkdir(0, "/a/b/c")

    with pytest.raises(FileNotFound):
        run_proc(fs.cluster, p())


def test_readdir_lists_entries(fs):
    def p():
        yield from fs.mkdir(0, "/d")
        for name in ("x", "y", "z"):
            yield from fs.create(0, f"/d/{name}")
        names = yield from fs.readdir(1, "/d")
        assert sorted(names) == ["x", "y", "z"]

    run_proc(fs.cluster, p())


def test_unlink_frees_blocks(fs):
    def p():
        yield from fs.create(0, "/f")
        yield from fs.write_file(0, "/f", 50_000)
        used = fs.alloc.allocated
        yield from fs.unlink(0, "/f")
        assert fs.alloc.allocated < used
        exists = yield from fs.exists(0, "/f")
        assert not exists

    run_proc(fs.cluster, p())


def test_unlink_directory_rejected(fs):
    def p():
        yield from fs.mkdir(0, "/d")
        yield from fs.unlink(0, "/d")

    with pytest.raises(IsADirectory):
        run_proc(fs.cluster, p())


def test_rmdir_requires_empty(fs):
    def p():
        yield from fs.mkdir(0, "/d")
        yield from fs.create(0, "/d/f")
        yield from fs.rmdir(0, "/d")

    with pytest.raises(FileSystemError):
        run_proc(fs.cluster, p())


def test_rmdir_success(fs):
    def p():
        yield from fs.mkdir(0, "/d")
        yield from fs.rmdir(0, "/d")
        assert not (yield from fs.exists(0, "/d"))

    run_proc(fs.cluster, p())


def test_rmdir_on_file_rejected(fs):
    def p():
        yield from fs.create(0, "/f")
        yield from fs.rmdir(0, "/f")

    with pytest.raises(NotADirectory):
        run_proc(fs.cluster, p())


def test_read_on_directory_rejected(fs):
    def p():
        yield from fs.mkdir(0, "/d")
        yield from fs.read_file(0, "/d")

    with pytest.raises(IsADirectory):
        run_proc(fs.cluster, p())


def test_path_through_file_rejected(fs):
    def p():
        yield from fs.create(0, "/f")
        yield from fs.create(0, "/f/child")

    with pytest.raises(NotADirectory):
        run_proc(fs.cluster, p())


def test_relative_components_rejected(fs):
    def p():
        yield from fs.stat(0, "/a/../b")

    with pytest.raises(FileSystemError):
        run_proc(fs.cluster, p())


def test_large_file_uses_indirect_block(fs):
    big = (N_DIRECT + 4) * fs.block_size

    def p():
        yield from fs.create(0, "/big")
        yield from fs.write_file(0, "/big", big)
        inode, _, _ = yield from fs._resolve(0, "/big")
        assert inode.indirect_block is not None
        assert len(inode.block_list()) == N_DIRECT + 4
        size = yield from fs.read_file(1, "/big")
        assert size == big

    run_proc(fs.cluster, p())


def test_truncating_rewrite_releases_blocks(fs):
    def p():
        yield from fs.create(0, "/f")
        yield from fs.write_file(0, "/f", 8 * fs.block_size)
        used = fs.alloc.allocated
        yield from fs.write_file(0, "/f", fs.block_size)
        assert fs.alloc.allocated < used
        size = yield from fs.read_file(0, "/f")
        assert size == fs.block_size

    run_proc(fs.cluster, p())


def test_cache_hits_on_rereads(fs):
    def p():
        yield from fs.create(0, "/f")
        yield from fs.write_file(0, "/f", 4096)
        yield from fs.read_file(0, "/f")
        yield from fs.read_file(0, "/f")

    run_proc(fs.cluster, p())
    assert fs.dev.cache_hit_rate() > 0


def test_uncached_mode_never_hits(raidx_cluster):
    fs = FileSystem(raidx_cluster, FsConfig(cached=False))

    def p():
        yield from fs.create(0, "/f")
        yield from fs.write_file(0, "/f", 4096)
        yield from fs.read_file(0, "/f")
        yield from fs.read_file(0, "/f")

    run_proc(fs.cluster, p())
    assert fs.dev.cache_hit_rate() == 0.0


def test_write_invalidates_peer_cache(fs):
    def p():
        yield from fs.create(0, "/f")
        yield from fs.write_file(0, "/f", 4096)
        yield from fs.read_file(1, "/f")  # node 1 caches the data
        hits_before = fs.dev.caches[1].invalidations
        yield from fs.write_file(0, "/f", 4096)
        assert fs.dev.caches[1].invalidations > hits_before

    run_proc(fs.cluster, p())


def test_rename_within_directory(fs):
    def p():
        yield from fs.create(0, "/old")
        yield from fs.write_file(0, "/old", 5000)
        yield from fs.rename(0, "/old", "/new")
        assert not (yield from fs.exists(0, "/old"))
        size = yield from fs.read_file(1, "/new")
        assert size == 5000

    run_proc(fs.cluster, p())


def test_rename_across_directories(fs):
    def p():
        yield from fs.mkdir(0, "/a")
        yield from fs.mkdir(0, "/b")
        yield from fs.create(0, "/a/f")
        yield from fs.rename(0, "/a/f", "/b/g")
        names_a = yield from fs.readdir(0, "/a")
        names_b = yield from fs.readdir(0, "/b")
        assert names_a == [] and names_b == ["g"]

    run_proc(fs.cluster, p())


def test_rename_onto_existing_rejected(fs):
    def p():
        yield from fs.create(0, "/x")
        yield from fs.create(0, "/y")
        yield from fs.rename(0, "/x", "/y")

    with pytest.raises(FileExists):
        run_proc(fs.cluster, p())


def test_rename_directory_into_itself_rejected(fs):
    def p():
        yield from fs.mkdir(0, "/d")
        yield from fs.rename(0, "/d", "/d/sub")

    with pytest.raises(FileSystemError):
        run_proc(fs.cluster, p())


def test_rename_missing_source_rejected(fs):
    def p():
        yield from fs.rename(0, "/ghost", "/elsewhere")

    with pytest.raises(FileNotFound):
        run_proc(fs.cluster, p())


def test_rename_directory_moves_subtree(fs):
    def p():
        yield from fs.mkdir(0, "/proj")
        yield from fs.create(0, "/proj/f")
        yield from fs.write_file(0, "/proj/f", 1234)
        yield from fs.rename(0, "/proj", "/archive")
        size = yield from fs.read_file(2, "/archive/f")
        assert size == 1234

    run_proc(fs.cluster, p())


def test_op_counters(fs):
    def p():
        yield from fs.mkdir(0, "/d")
        yield from fs.create(0, "/d/f")
        yield from fs.stat(0, "/d/f")

    run_proc(fs.cluster, p())
    ops = fs.op_counts()
    assert ops["mkdir"] == 1 and ops["create"] == 1 and ops["stat"] == 1


def test_simulated_time_advances_with_io(fs):
    env = fs.cluster.env

    def p():
        yield from fs.create(0, "/f")
        yield from fs.write_file(0, "/f", 100_000)

    t0 = env.now
    run_proc(fs.cluster, p())
    assert env.now > t0

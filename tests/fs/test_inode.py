"""Inode structure and inode-table addressing."""

import pytest

from repro.errors import FileSystemError, NoSpaceError
from repro.fs.inode import (
    FileType,
    Inode,
    InodeTable,
    N_DIRECT,
)


def test_attach_blocks_spills_to_indirect():
    ino = Inode(ino=0, type=FileType.FILE)
    ino.attach_blocks(list(range(N_DIRECT + 3)))
    assert len(ino.direct) == N_DIRECT
    assert ino.indirect == [N_DIRECT, N_DIRECT + 1, N_DIRECT + 2]
    assert ino.block_list() == list(range(N_DIRECT + 3))


def test_nth_block_bounds():
    ino = Inode(ino=0, type=FileType.FILE)
    ino.attach_blocks([7, 8])
    assert ino.nth_block(1) == 8
    with pytest.raises(FileSystemError):
        ino.nth_block(2)


def test_truncate_returns_everything():
    ino = Inode(ino=0, type=FileType.FILE, size=100)
    ino.attach_blocks([1, 2, 3])
    ino.indirect_block = 99
    freed = ino.truncate_blocks()
    assert sorted(freed) == [1, 2, 3, 99]
    assert ino.size == 0 and ino.block_list() == []
    assert ino.indirect_block is None


def test_needs_indirect():
    ino = Inode(ino=0, type=FileType.FILE)
    assert not ino.needs_indirect(N_DIRECT)
    assert ino.needs_indirect(N_DIRECT + 1)


def test_table_block_addressing():
    t = InodeTable(first_block=10, n_inodes=100, block_size=4096)
    assert t.inodes_per_block == 32
    assert t.block_of(0) == 10
    assert t.block_of(31) == 10
    assert t.block_of(32) == 11
    with pytest.raises(FileSystemError):
        t.block_of(100)


def test_table_allocate_release():
    t = InodeTable(0, 4, 4096)
    inos = [t.allocate(FileType.FILE, now=1.0) for _ in range(4)]
    assert len({i.ino for i in inos}) == 4
    with pytest.raises(NoSpaceError):
        t.allocate(FileType.FILE, now=1.0)
    t.release(inos[0].ino)
    again = t.allocate(FileType.DIRECTORY, now=2.0)
    assert again.ino == inos[0].ino
    assert again.is_dir


def test_table_stale_access_rejected():
    t = InodeTable(0, 4, 4096)
    ino = t.allocate(FileType.FILE, now=0.0)
    t.release(ino.ino)
    with pytest.raises(FileSystemError):
        t.get(ino.ino)
    with pytest.raises(FileSystemError):
        t.release(ino.ino)


def test_table_n_blocks_rounds_up():
    t = InodeTable(0, 33, 4096)  # 32 per block -> 2 blocks
    assert t.n_blocks == 2

"""Open-loop latency workload."""

import math

import numpy as np
import pytest

from repro.cluster.cluster import build_cluster
from repro.workloads.openloop import LatencyResult, OpenLoopWorkload
from tests.conftest import small_config


def make(arch="raidx", **kw):
    cluster = build_cluster(small_config(n=4), architecture=arch)
    kw.setdefault("rate_ops_per_s", 200)
    kw.setdefault("duration_s", 0.2)
    return OpenLoopWorkload(cluster, **kw)


def test_all_requests_complete():
    wl = make(exact_latencies=True)
    r = wl.run()
    assert r.completed == len(r.latencies)
    assert r.completed > 10  # ~40 expected at 200 ops/s x 0.2 s
    assert r.failed == 0
    assert all(lat > 0 for lat in r.latencies)
    assert len(r.histogram) == r.completed


def test_histogram_mode_is_default():
    r = make().run()
    assert r.latencies is None  # exact list only behind the flag
    assert len(r.histogram) == r.completed > 0


def test_rate_is_respected_roughly():
    r = make(rate_ops_per_s=500, duration_s=0.4).run()
    # Poisson with mean 200 arrivals; allow generous slack.
    assert 100 < r.completed < 320


def test_latency_stats():
    r = make(exact_latencies=True).run()
    assert r.mean_latency() > 0
    assert r.p99_latency() >= r.p95_latency()
    assert r.achieved_ops_per_s > 0
    # Histogram quantiles stay within the bucket growth factor of exact.
    exact_p95 = float(np.percentile(r.latencies, 95))
    assert r.p95_latency() == pytest.approx(exact_p95, rel=0.15)
    assert r.mean_latency() == pytest.approx(
        float(np.mean(r.latencies)), rel=1e-12
    )


def test_saturation_flag():
    calm = make(rate_ops_per_s=50, duration_s=0.3).run()
    assert not calm.saturated
    assert calm.drain_s <= 0.25 * calm.window_s
    stormy = make(rate_ops_per_s=5000, duration_s=0.2).run()
    assert stormy.saturated
    assert stormy.drain_s > 0.25 * stormy.window_s
    assert stormy.mean_latency() > calm.mean_latency()


def test_mixed_op_stream():
    wl = make(op="mixed", read_fraction=0.5)
    r = wl.run()
    assert r.completed > 0


def test_reads_supported():
    r = make(op="read").run()
    assert r.completed > 0


def test_validation():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=0)
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=10, duration_s=0)
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=10, op="erase")
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=10, scenario="weekly")
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=10, placement="remote")
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=10, n_requests=0)
    with pytest.raises(ValueError):
        OpenLoopWorkload(
            cluster, rate_ops_per_s=10, diurnal_amplitude=1.5
        )


def test_deterministic_with_seed():
    a = make(seed=7, exact_latencies=True).run()
    b = make(seed=7, exact_latencies=True).run()
    assert a.completed == b.completed
    assert a.latencies == b.latencies


@pytest.mark.parametrize("scenario", ["poisson", "zipf", "diurnal"])
def test_arrival_scenarios_deterministic(scenario):
    a = make(scenario=scenario, seed=3, exact_latencies=True).run()
    b = make(scenario=scenario, seed=3, exact_latencies=True).run()
    assert a.completed == b.completed > 0
    assert a.latencies == b.latencies
    assert a.histogram.to_payload() == b.histogram.to_payload()


def test_zipf_concentrates_accesses():
    # A strong hot-spot revisits far fewer distinct blocks than uniform.
    uni = make(scenario="poisson", rate_ops_per_s=2000, seed=5)
    hot = make(
        scenario="zipf", zipf_s=2.0, rate_ops_per_s=2000, seed=5
    )
    u = uni._blocks(2000)
    z = hot._blocks(2000)
    assert len(np.unique(z)) < 0.5 * len(np.unique(u))


def test_diurnal_rate_ramps():
    wl = make(scenario="diurnal", rate_ops_per_s=4000, duration_s=1.0,
              diurnal_amplitude=1.0)
    times = wl._arrival_times()
    # Peak at t=0.25 (sin max), trough at t=0.75 (rate ~0).
    peak = np.sum((times > 0.15) & (times < 0.35))
    trough = np.sum((times > 0.65) & (times < 0.85))
    assert peak > 4 * max(1, trough)


def test_n_requests_mode_exact_count():
    wl = make(n_requests=37, duration_s=None)
    r = wl.run()
    assert r.completed == 37
    assert r.window_s > 0  # last arrival time stands in for the window
    assert r.duration_s >= r.window_s


def test_local_placement_is_all_local():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    wl = OpenLoopWorkload(
        cluster, rate_ops_per_s=400, duration_s=0.2, op="read",
        placement="local",
    )
    r = wl.run()
    assert r.completed > 0
    assert cluster.transport.stats.remote_block_ops == 0


def test_empty_result_statistics():
    r = LatencyResult(offered_ops_per_s=10, completed=0, duration_s=1.0)
    assert math.isnan(r.mean_latency())
    assert math.isnan(r.p95_latency())
    assert math.isnan(r.p99_latency())
    assert not r.saturated  # zero window never reports saturation


def test_zero_window_edge_case():
    # window_s == 0 (n_requests mode with one instant arrival) must not
    # divide by zero or claim saturation.
    r = LatencyResult(
        offered_ops_per_s=10, completed=1, duration_s=0.5, window_s=0.0
    )
    assert r.drain_s == 0.5
    assert not r.saturated

"""Open-loop latency workload."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.workloads.openloop import LatencyResult, OpenLoopWorkload
from tests.conftest import small_config


def make(arch="raidx", **kw):
    cluster = build_cluster(small_config(n=4), architecture=arch)
    kw.setdefault("rate_ops_per_s", 200)
    kw.setdefault("duration_s", 0.2)
    return OpenLoopWorkload(cluster, **kw)


def test_all_requests_complete():
    wl = make()
    r = wl.run()
    assert r.completed == len(r.latencies)
    assert r.completed > 10  # ~40 expected at 200 ops/s x 0.2 s
    assert all(lat > 0 for lat in r.latencies)


def test_rate_is_respected_roughly():
    r = make(rate_ops_per_s=500, duration_s=0.4).run()
    # Poisson with mean 200 arrivals; allow generous slack.
    assert 100 < r.completed < 320


def test_latency_stats():
    r = make().run()
    assert r.mean_latency() > 0
    assert r.p95_latency() >= r.mean_latency()
    assert r.achieved_ops_per_s > 0


def test_saturation_flag():
    calm = make(rate_ops_per_s=50, duration_s=0.3).run()
    assert not calm.saturated
    stormy = make(rate_ops_per_s=5000, duration_s=0.2).run()
    assert stormy.saturated
    assert stormy.mean_latency() > calm.mean_latency()


def test_mixed_op_stream():
    wl = make(op="mixed", read_fraction=0.5)
    r = wl.run()
    assert r.completed > 0


def test_reads_supported():
    r = make(op="read").run()
    assert r.completed > 0


def test_validation():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=0)
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=10, duration_s=0)
    with pytest.raises(ValueError):
        OpenLoopWorkload(cluster, rate_ops_per_s=10, op="erase")


def test_deterministic_with_seed():
    a = make(seed=7).run()
    b = make(seed=7).run()
    assert a.completed == b.completed
    assert a.latencies == b.latencies


def test_empty_result_statistics():
    r = LatencyResult(offered_ops_per_s=10, completed=0, duration_s=1.0)
    import math

    assert math.isnan(r.mean_latency())
    assert math.isnan(r.p95_latency())

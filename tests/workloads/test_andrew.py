"""Andrew benchmark structure and sanity of results."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.workloads.andrew import (
    AndrewBenchmark,
    AndrewConfig,
    AndrewResult,
)
from tests.conftest import small_config

TINY = AndrewConfig(n_dirs=2, files_per_dir=2)


def run_andrew(arch="raidx", clients=2, config=TINY):
    cluster = build_cluster(small_config(n=4), architecture=arch)
    return AndrewBenchmark(cluster, clients, config=config).run()


def test_all_phases_reported():
    r = run_andrew()
    assert set(r.phase_times) == set(AndrewResult.PHASES)
    assert all(t >= 0 for t in r.phase_times.values())
    assert r.total == pytest.approx(sum(r.phase_times.values()))


def test_phases_take_time():
    r = run_andrew()
    assert r.phase_times["Copy"] > 0
    assert r.phase_times["Make"] > 0


def test_config_tree_math():
    cfg = AndrewConfig(n_dirs=3, files_per_dir=2)
    assert cfg.n_files == 6
    assert cfg.tree_bytes == sum(
        cfg.file_size(d, f) for d in range(3) for f in range(2)
    )
    assert cfg.file_size(0, 0) > 0


def test_more_clients_take_longer():
    t1 = run_andrew(clients=1).total
    t4 = run_andrew(clients=4).total
    assert t4 > t1


def test_fs_op_mix_recorded():
    r = run_andrew()
    # Copy creates files; ScanDir stats them; ReadAll reads them.
    assert r.fs_ops["create"] > 0
    assert r.fs_ops["stat"] > 0
    assert r.fs_ops["read_file"] > 0
    assert r.fs_ops["mkdir"] > 0


def test_work_trees_are_private():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    bench = AndrewBenchmark(cluster, 3, config=TINY)
    roots = {bench.work_root(c) for c in range(3)}
    assert len(roots) == 3


def test_clients_wrap_nodes():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    bench = AndrewBenchmark(cluster, 6, config=TINY)
    assert bench.node_of_client(5) == 1


def test_cache_helps():
    r = run_andrew()
    assert r.cache_hit_rate > 0


def test_invalid_clients():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    with pytest.raises(ValueError):
        AndrewBenchmark(cluster, 0)


def test_raid5_copy_slower_than_raidx():
    """The small-write problem shows up in the Copy phase (Fig. 6)."""
    cfg = AndrewConfig(n_dirs=2, files_per_dir=3)
    raid5 = run_andrew("raid5", clients=3, config=cfg)
    raidx = run_andrew("raidx", clients=3, config=cfg)
    assert raid5.phase_times["Copy"] > raidx.phase_times["Copy"]

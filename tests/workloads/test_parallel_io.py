"""Parallel I/O workload mechanics and result math."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.units import KiB, MB
from repro.workloads.base import chunked_io, client_node
from repro.workloads.parallel_io import (
    ParallelIOWorkload,
    large_read,
    small_read,
    small_write,
)
from tests.conftest import run_proc, small_config


def make_cluster(arch="raidx", n=4):
    return build_cluster(small_config(n=n), architecture=arch)


def test_result_bandwidth_math():
    c = make_cluster()
    r = ParallelIOWorkload(c, 2, op="write", size=1 * MB).run()
    assert r.total_bytes == 2 * MB
    assert r.elapsed > 0
    assert r.aggregate_bandwidth_mb_s == pytest.approx(
        2.0 / r.elapsed
    )
    assert r.per_client_bandwidth_mb_s == pytest.approx(
        r.aggregate_bandwidth_mb_s / 2
    )


def test_all_clients_finish(config4):
    c = build_cluster(config4, architecture="raid10")
    r = ParallelIOWorkload(c, 4, op="read", size=256 * KiB).run()
    assert sorted(r.per_client_finish) == [0, 1, 2, 3]


def test_barrier_start_after_prepare():
    c = make_cluster()
    wl = ParallelIOWorkload(c, 2, op="read", size=128 * KiB)
    r = wl.run()
    # Preparation (file writes) happened before the timed window.
    assert r.started_at > 0
    assert all(t >= r.started_at for t in r.per_client_finish.values())


def test_private_files_do_not_overlap():
    c = make_cluster()
    wl = ParallelIOWorkload(c, 3, op="write", size=1 * MB)
    spans = [
        (wl.file_offset(i), wl.file_offset(i) + wl.size * wl.repeats)
        for i in range(3)
    ]
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0


def test_capacity_guard():
    c = make_cluster()
    with pytest.raises(ValueError):
        ParallelIOWorkload(
            c, 1000, op="read", size=1 * MB
        )


def test_repeats_guard():
    c = make_cluster()
    with pytest.raises(ValueError):
        ParallelIOWorkload(c, 1, op="read", size=4 * MB, repeats=4)
    with pytest.raises(ValueError):
        ParallelIOWorkload(c, 1, op="read", size=1 * MB, repeats=0)


def test_bad_op_rejected():
    with pytest.raises(ValueError):
        ParallelIOWorkload(make_cluster(), 1, op="append", size=1)


def test_small_read_uses_repeats():
    c = make_cluster()
    wl = small_read(c, 2)
    assert wl.repeats == 8
    r = wl.run()
    assert r.bytes_per_client == 8 * 32 * KiB


def test_small_write_is_one_shot():
    c = make_cluster()
    wl = small_write(c, 2)
    assert wl.repeats == 1


def test_chunked_io_depth_one_is_sequential():
    c = make_cluster()
    env = c.env
    done = []

    def p():
        yield from chunked_io(
            c.storage, 0, "read", 0, 4 * 32 * KiB,
            chunk=32 * KiB, queue_depth=1,
        )
        done.append(env.now)

    run_proc(c, p())
    assert done


def test_chunked_io_validates():
    c = make_cluster()
    with pytest.raises(ValueError):
        list(chunked_io(c.storage, 0, "read", 0, 100, chunk=0,
                        queue_depth=1))
    with pytest.raises(ValueError):
        list(chunked_io(c.storage, 0, "read", 0, 100, chunk=10,
                        queue_depth=0))


def test_deeper_queue_is_not_slower():
    def elapsed(depth):
        c = make_cluster()
        r = ParallelIOWorkload(
            c, 1, op="read", size=1 * MB, queue_depth=depth
        ).run()
        return r.elapsed

    assert elapsed(8) <= elapsed(1) * 1.05


def test_nfs_clients_skip_server_node():
    c = build_cluster(small_config(n=4), architecture="nfs")
    nodes = {client_node(c, i) for i in range(6)}
    assert 0 not in nodes  # node 0 is the server
    assert nodes <= {1, 2, 3}


def test_array_clients_wrap_all_nodes():
    c = make_cluster(n=4)
    nodes = [client_node(c, i) for i in range(8)]
    assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]


def test_extras_contain_op_counters():
    c = make_cluster()
    r = ParallelIOWorkload(c, 2, op="write", size=128 * KiB).run()
    assert "remote_block_ops" in r.extras
    assert "disk_utilization" in r.extras


def test_workload_requires_clients():
    with pytest.raises(ValueError):
        ParallelIOWorkload(make_cluster(), 0, op="read", size=1)

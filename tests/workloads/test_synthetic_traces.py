"""Synthetic workload generation and trace record/replay."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.units import KiB
from repro.workloads.synthetic import SyntheticWorkload, ZipfAccessPattern
from repro.workloads.traces import (
    TraceOp,
    TraceRecorder,
    loads,
    replay_trace,
)
from tests.conftest import small_config


def make_cluster(arch="raid0"):
    return build_cluster(small_config(n=4), architecture=arch)


def test_zipf_skews_popularity():
    import numpy as np

    z = ZipfAccessPattern(100, theta=1.2, rng=np.random.default_rng(1))
    counts = {}
    for _ in range(500):
        b = z.next_block()
        assert 0 <= b < 100
        counts[b] = counts.get(b, 0) + 1
    top = max(counts.values())
    assert top > 500 / 100 * 3  # far above uniform


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfAccessPattern(0)
    with pytest.raises(ValueError):
        ZipfAccessPattern(10, theta=-1)


def test_synthetic_runs_and_counts():
    c = make_cluster()
    wl = SyntheticWorkload(
        c, clients=2, ops_per_client=10, read_fraction=0.5
    )
    r = wl.run()
    assert wl.reads_issued + wl.writes_issued == 20
    assert r.extras["reads"] == wl.reads_issued
    assert r.elapsed > 0


def test_synthetic_pure_read_mix():
    c = make_cluster()
    wl = SyntheticWorkload(
        c, clients=1, ops_per_client=8, read_fraction=1.0
    )
    wl.run()
    assert wl.writes_issued == 0


def test_synthetic_validation():
    c = make_cluster()
    with pytest.raises(ValueError):
        SyntheticWorkload(c, 1, read_fraction=1.5)
    with pytest.raises(ValueError):
        SyntheticWorkload(c, 1, pattern="gaussian")


def test_synthetic_zipf_mode_runs():
    c = make_cluster()
    wl = SyntheticWorkload(
        c, clients=1, ops_per_client=5, pattern="zipf"
    )
    wl.run()


def test_trace_recorder_captures_ops():
    c = make_cluster()
    rec = TraceRecorder(c.storage)
    env = c.env

    def p():
        yield rec.submit(0, "write", 0, 32 * KiB)
        yield rec.submit(1, "read", 0, 16 * KiB)

    env.run(env.process(p()))
    assert len(rec.ops) == 2
    assert rec.ops[0].op == "write"
    assert rec.ops[1].client == 1


def test_trace_serialization_roundtrip():
    c = make_cluster()
    rec = TraceRecorder(c.storage)
    env = c.env

    def p():
        yield rec.submit(0, "write", 1024, 2048)

    env.run(env.process(p()))
    text = rec.dumps()
    ops = loads(text)
    assert ops == rec.ops


def test_trace_validation():
    with pytest.raises(ValueError):
        TraceOp(0.0, 0, "erase", 0, 1).validate()
    with pytest.raises(ValueError):
        TraceOp(-1.0, 0, "read", 0, 1).validate()


def test_replay_on_other_architecture():
    src = make_cluster("raid0")
    rec = TraceRecorder(src.storage)
    env = src.env

    def p():
        yield rec.submit(0, "write", 0, 64 * KiB)
        yield env.timeout(0.05)
        yield rec.submit(1, "read", 0, 64 * KiB)

    env.run(env.process(p()))

    dst = make_cluster("raid10")
    elapsed, completed = replay_trace(dst, rec.ops)
    assert completed == 2
    assert elapsed > 0


def test_replay_closed_loop():
    src = make_cluster("raid0")
    rec = TraceRecorder(src.storage)
    env = src.env

    def p():
        yield rec.submit(0, "write", 0, 32 * KiB)

    env.run(env.process(p()))
    dst = make_cluster("raidx")
    elapsed, completed = replay_trace(dst, rec.ops, preserve_timing=False)
    assert completed == 1

"""Rebuild planning correctness and execution."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.errors import DataLossError, LayoutError
from repro.raid import make_layout
from repro.raid.reconstruct import execute_rebuild, plan_rebuild
from tests.conftest import small_config


def lay(name, n_disks=4, rows=8):
    return make_layout(
        name, n_disks=n_disks, block_size=1, disk_capacity=rows
    )


def test_plan_covers_all_lost_blocks_raid10():
    layout = lay("raid10")
    steps = plan_rebuild(layout, 0)
    # Disk 0 is the primary of pair 0: rows blocks lost.
    lost = [
        b
        for b in range(layout.data_blocks)
        if layout.data_location(b).disk == 0
    ]
    targets = {s.target for s in steps}
    for b in lost:
        assert layout.data_location(b) in targets
    assert all(len(s.sources) == 1 and not s.xor for s in steps)


def test_plan_mirror_side_rebuild():
    layout = lay("raid10")
    steps = plan_rebuild(layout, 1)  # the mirror disk of pair 0
    assert steps
    for s in steps:
        assert s.target.disk == 1
        assert s.sources[0].disk == 0


def test_plan_raid5_uses_xor():
    layout = lay("raid5")
    steps = plan_rebuild(layout, 2)
    assert steps
    for s in steps:
        assert s.xor
        assert len(s.sources) == layout.n_disks - 1
        assert all(src.disk != 2 for src in s.sources)


def test_plan_raid5_includes_parity_blocks():
    layout = lay("raid5")
    steps = plan_rebuild(layout, 0)
    parity_targets = [
        s for s in steps if s.target.disk == 0 and s.xor
    ]
    assert parity_targets


def test_plan_raidx_sources_avoid_failed_disk():
    layout = make_layout(
        "raidx", n_disks=4, block_size=1, disk_capacity=8, stripe_width=4
    )
    steps = plan_rebuild(layout, 3)
    assert steps
    for s in steps:
        assert s.target.disk == 3
        assert all(src.disk != 3 for src in s.sources)


def test_plan_raid0_raises():
    layout = lay("raid0")
    with pytest.raises(DataLossError):
        plan_rebuild(layout, 0)


def test_plan_bad_disk_rejected():
    with pytest.raises(LayoutError):
        plan_rebuild(lay("raid10"), 99)


def test_execute_rebuild_counts_bytes():
    cluster = build_cluster(small_config(n=4), architecture="raidx")
    cluster.storage.fail_disk(2)
    cluster.storage.repair_disk(2)
    r = execute_rebuild(cluster, 2, max_blocks=64)
    assert r.blocks_rebuilt > 0
    assert r.bytes_written == r.blocks_rebuilt * cluster.storage.block_size
    assert r.elapsed > 0
    assert r.rate_mb_s > 0

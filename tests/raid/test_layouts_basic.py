"""Capacity, addressing, and bounds behaviour common to all layouts."""

import pytest

from repro.errors import AddressError, ConfigurationError
from repro.raid import LAYOUTS, make_layout
from repro.units import KiB, MB


def lay(name, n_disks=4, rows=64, stripe_width=None):
    return make_layout(
        name,
        n_disks=n_disks,
        block_size=32 * KiB,
        disk_capacity=rows * 32 * KiB,
        stripe_width=stripe_width,
    )


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_invariants_hold(name):
    layout = lay(name)
    layout.verify_invariants(layout.data_blocks)


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_block_out_of_range_rejected(name):
    layout = lay(name)
    with pytest.raises(AddressError):
        layout.data_location(layout.data_blocks)
    with pytest.raises(AddressError):
        layout.data_location(-1)


def test_capacities_per_layout():
    rows = 64
    assert lay("raid0", rows=rows).data_blocks == 4 * rows
    assert lay("raid5", rows=rows).data_blocks == 3 * rows
    assert lay("raid10", rows=rows).data_blocks == 2 * rows
    assert lay("chained", rows=rows).data_blocks == 4 * (rows // 2)
    # RAID-x keeps slightly under half the disk for data: the clustered
    # image rows skew up to n-2 rows past the rotation base, so an even
    # split would push tail images past the disk end (31 rows, not 32).
    raidx = lay("raidx", rows=rows)
    assert raidx.data_blocks == 4 * 31
    assert raidx.data_rows + raidx._mirror_rows_needed(
        raidx.data_rows
    ) <= rows


def test_unknown_layout_rejected():
    with pytest.raises(ValueError):
        make_layout("raid6", n_disks=4, block_size=1, disk_capacity=8)


def test_too_few_disks_rejected():
    with pytest.raises(ConfigurationError):
        make_layout("raid0", n_disks=1, block_size=1, disk_capacity=8)


def test_raid10_odd_disks_rejected():
    with pytest.raises(ConfigurationError):
        make_layout("raid10", n_disks=5, block_size=1, disk_capacity=8)


def test_raidx_minimum_width():
    with pytest.raises(ConfigurationError):
        make_layout(
            "raidx", n_disks=2, block_size=1, disk_capacity=8, stripe_width=2
        )


def test_stripe_width_must_divide_disks():
    with pytest.raises(ConfigurationError):
        make_layout(
            "raid0", n_disks=6, block_size=1, disk_capacity=8, stripe_width=4
        )


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_stripe_blocks_partition_address_space(name):
    layout = lay(name)
    seen = set()
    s = 0
    while len(seen) < layout.data_blocks:
        blocks = layout.stripe_blocks(s)
        assert blocks, f"stripe {s} empty before covering all blocks"
        for b in blocks:
            assert b not in seen
            assert layout.stripe_of(b) == s
            seen.add(b)
        s += 1
    assert seen == set(range(layout.data_blocks))


@pytest.mark.parametrize("name", ["raid10", "chained", "raidx"])
def test_mirrored_layouts_have_one_image(name):
    layout = lay(name)
    for b in range(layout.data_blocks):
        images = layout.redundancy_locations(b)
        assert len(images) == 1
        assert images[0].disk != layout.data_location(b).disk


@pytest.mark.parametrize("name", ["raid0", "raid5"])
def test_unmirrored_layouts_have_no_images(name):
    layout = lay(name)
    assert layout.redundancy_locations(0) == []


def test_read_sources_primary_first_by_default():
    layout = lay("raidx")
    src = layout.read_sources(0)
    assert src[0] == layout.data_location(0)


def test_raid10_read_alternation_spreads_load():
    layout = lay("raid10")
    pair = layout.n_pairs
    preferred = {layout.read_sources(b)[0].disk for b in range(4 * pair)}
    assert len(preferred) > pair  # both copies get read traffic


def test_node_and_group_helpers():
    layout = lay("raidx", n_disks=12, stripe_width=4)
    assert layout.node_of_disk(5) == 1
    assert layout.disk_group(5) == 1
    assert layout.disk_group(11) == 2


def test_placement_map_renders():
    layout = lay("raidx")
    text = layout.placement_map(8)
    assert "B0" in text and "M0" in text and "D0" in text


def test_full_stripe_detection():
    layout = lay("raid0")
    width = layout.stripe_width
    assert layout.full_stripe(list(range(width)))
    assert not layout.full_stripe(list(range(width - 1)))
    assert layout.full_stripe(list(range(width * 2)))

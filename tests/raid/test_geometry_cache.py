"""Cached placement tables must agree exactly with the pure formulas.

Layouts are immutable, so the per-rotation tables built lazily by
``Layout._build_data_table`` (and the RAID-x mirror/image tables) are
exact.  These tests sweep *every* logical block of several n×k arrays
and compare the cached methods against the ``_*_uncached`` formulas,
including the final partial rotation where RAID-x mirror groups can be
truncated.
"""

import pytest

from repro.raid.raid5 import Raid5Layout
from repro.raid.raid10 import Raid10Layout
from repro.raid.raidx import RaidxLayout

KiB = 1024


def _raidx(n, k, rows=None):
    # Odd-ish capacities make the last rotation partial (rows % (n-1)
    # != 0 for most n), which exercises the truncated-group fallback.
    rows = rows if rows is not None else 2 * n + 3
    return RaidxLayout(
        n_disks=n * k,
        block_size=4 * KiB,
        disk_capacity=2 * rows * 4 * KiB,
        stripe_width=n,
    )


RAIDX_CONFIGS = [(3, 1), (4, 1), (4, 3), (5, 2), (6, 2), (7, 1)]


@pytest.mark.parametrize("n,k", RAIDX_CONFIGS)
def test_raidx_data_location_cached_matches_formula(n, k):
    layout = _raidx(n, k)
    for b in range(layout.data_blocks):
        assert layout.data_location(b) == layout._data_location_uncached(b)


@pytest.mark.parametrize("n,k", RAIDX_CONFIGS)
def test_raidx_mirror_group_cached_matches_formula(n, k):
    layout = _raidx(n, k)
    assert layout.data_blocks > layout._mirror_period, "want >1 rotation"
    for b in range(layout.data_blocks):
        assert layout.mirror_group_of(b) == layout._mirror_group_uncached(b)


@pytest.mark.parametrize("n,k", RAIDX_CONFIGS)
def test_raidx_redundancy_cached_matches_formula(n, k):
    layout = _raidx(n, k)
    for b in range(layout.data_blocks):
        assert (
            layout.redundancy_locations(b)
            == layout._redundancy_locations_uncached(b)
        )


@pytest.mark.parametrize("n,k", RAIDX_CONFIGS)
def test_raidx_orthogonality_still_holds(n, k):
    layout = _raidx(n, k)
    layout.verify_invariants(blocks=layout.data_blocks)
    for b in range(layout.data_blocks):
        data = layout.data_location(b)
        for img in layout.redundancy_locations(b):
            assert img.disk != data.disk


def test_raidx_tiny_array_smaller_than_one_rotation():
    # data_blocks < mirror period: every block takes the formula path.
    layout = _raidx(5, 1, rows=2)
    assert layout.data_blocks < layout._mirror_period
    for b in range(layout.data_blocks):
        assert layout.mirror_group_of(b) == layout._mirror_group_uncached(b)
        assert (
            layout.redundancy_locations(b)
            == layout._redundancy_locations_uncached(b)
        )


@pytest.mark.parametrize("disks", [3, 4, 5, 8])
def test_raid5_data_location_cached_matches_formula(disks):
    layout = Raid5Layout(
        n_disks=disks, block_size=4 * KiB, disk_capacity=64 * 4 * KiB
    )
    # Several full rotations plus a partial one.
    assert layout.data_blocks > 2 * disks * (disks - 1)
    for b in range(layout.data_blocks):
        assert layout.data_location(b) == layout._data_location_uncached(b)


@pytest.mark.parametrize("disks", [4, 6, 12])
def test_raid10_cached_matches_formula(disks):
    layout = Raid10Layout(
        n_disks=disks, block_size=4 * KiB, disk_capacity=33 * 4 * KiB
    )
    for b in range(layout.data_blocks):
        assert layout.data_location(b) == layout._data_location_uncached(b)
        assert (
            layout.redundancy_locations(b)
            == layout._redundancy_locations_uncached(b)
        )


def test_table_is_built_lazily_and_reused():
    layout = _raidx(4, 1)
    assert layout._data_table is None
    layout.data_location(0)
    table = layout._data_table
    assert table is not None
    layout.data_location(layout.data_blocks - 1)
    assert layout._data_table is table  # built once

"""RAID-x OSM geometry against the paper's Figs. 1a and 3."""

import pytest

from repro.raid import make_layout
from repro.raid.raidx import RaidxLayout


def fig1a():
    return make_layout(
        "raidx", n_disks=4, block_size=1, disk_capacity=8, stripe_width=4
    )


def fig3(rows=8):
    return make_layout(
        "raidx",
        n_disks=12,
        block_size=1,
        disk_capacity=rows,
        stripe_width=4,
    )


def test_fig1a_data_striping():
    lay = fig1a()
    for b in range(12):
        p = lay.data_location(b)
        assert p.disk == b % 4
        assert p.offset == b // 4


def test_fig1a_mirror_groups_match_paper():
    """Paper Fig. 1a: (M0,M1,M2)->D3, (M3,M4,M5)->D2, (M6..)->D1, (M9..)->D0."""
    lay = fig1a()
    expect = {0: 3, 1: 2, 2: 1, 3: 0}
    for g, disk in expect.items():
        mg = lay.mirror_group_of(g * 3)
        assert mg.image_disk == disk
        assert mg.blocks == tuple(range(g * 3, g * 3 + 3))


def test_images_clustered_contiguously():
    lay = fig1a()
    mg = lay.mirror_group_of(0)
    offsets = [
        lay.redundancy_locations(b)[0].offset for b in mg.blocks
    ]
    assert offsets == list(
        range(mg.image_offset, mg.image_offset + len(mg.blocks))
    )
    # All in the mirror half of the disk.
    assert all(o >= lay.mirror_base for o in offsets)


def test_stripe_images_on_exactly_two_disks():
    """Paper: 'the image blocks are saved in exactly two disks'."""
    lay = fig1a()
    for s in range(3):
        assert len(lay.stripe_image_disks(s)) == 2


def test_orthogonality_everywhere():
    lay = fig3()
    for b in range(lay.data_blocks):
        data = lay.data_location(b)
        image = lay.redundancy_locations(b)[0]
        assert image.disk != data.disk


def test_mirroring_confined_to_disk_group():
    lay = fig3()
    for b in range(lay.data_blocks):
        data = lay.data_location(b)
        image = lay.redundancy_locations(b)[0]
        assert lay.disk_group(image.disk) == lay.disk_group(data.disk)


def test_image_disks_balanced_within_group():
    lay = fig3(rows=32)
    counts = {}
    for b in range(lay.data_blocks):
        d = lay.redundancy_locations(b)[0].disk
        counts[d] = counts.get(d, 0) + 1
    per_group = [counts.get(d, 0) for d in range(12)]
    assert max(per_group) - min(per_group) <= lay.n - 1


def test_local_index_roundtrip():
    lay = fig3()
    for b in range(lay.data_blocks):
        c, ell = lay._group_local_index(b)
        assert lay._local_block(c, ell) == b


def test_fig3_addressing_matches_paper():
    """Fig. 3: D0 holds B0, B12, B24; D4 holds B4, B16, B28."""
    lay = fig3()
    assert lay.data_location(0).disk == 0
    assert lay.data_location(12).disk == 0
    assert lay.data_location(12).offset == 1
    assert lay.data_location(4).disk == 4
    assert lay.data_location(16).disk == 4
    assert lay.data_location(28).disk == 4


def test_tolerates_one_failure_per_group():
    lay = fig3()
    assert lay.tolerates(set())
    assert lay.tolerates({0})
    assert lay.tolerates({0, 5, 10})  # one per group
    assert not lay.tolerates({0, 1})  # two in group 0
    assert not lay.tolerates({4, 7})  # two in group 1
    assert not lay.tolerates({0, 99})  # unknown disk


def test_max_fault_coverage_is_k():
    assert fig3().max_fault_coverage() == 3
    assert fig1a().max_fault_coverage() == 1


def test_no_data_image_collision_verified():
    lay = fig3(rows=16)
    lay.verify_invariants(lay.data_blocks)


def test_partial_final_mirror_group():
    lay = make_layout(
        "raidx", n_disks=4, block_size=1, disk_capacity=4, stripe_width=4
    )
    # 8 data blocks per group slice; trailing group may be short.
    last_block = lay.data_blocks - 1
    mg = lay.mirror_group_of(last_block)
    assert last_block in mg.blocks
    assert 1 <= len(mg.blocks) <= lay.n - 1

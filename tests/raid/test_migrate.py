"""Layout-to-layout migration planning and execution."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.errors import ConfigurationError
from repro.raid import make_layout, migration_plan, reconfigure
from repro.raid.migrate import execute_migration
from tests.conftest import small_config


def lay(name, stripe_width=None, rows=16):
    return make_layout(
        name,
        n_disks=12,
        block_size=1,
        disk_capacity=rows,
        stripe_width=stripe_width,
    )


def test_identity_migration_is_empty():
    a = lay("raidx", stripe_width=4)
    plan = migration_plan(a, lay("raidx", stripe_width=4))
    assert len(plan) == 0
    assert plan.moved_fraction == 0.0


def test_4x3_to_6x2_moves_nothing_for_data():
    """RAID-x data striping is width-independent (block i -> disk i mod
    D), so reconfiguration only relocates *images*, not data blocks."""
    a = lay("raidx", stripe_width=4)
    b = reconfigure(a, 6, 2)
    plan = migration_plan(a, b)
    assert len(plan) == 0


def test_raid0_to_raid5_moves_most_blocks():
    a = lay("raid0")
    b = lay("raid5")
    plan = migration_plan(a, b, max_blocks=a.data_blocks)
    assert plan.blocks_checked == min(a.data_blocks, b.data_blocks)
    assert plan.moved_fraction > 0.5
    for mv in plan.moves:
        assert mv.src != mv.dst
        assert a.data_location(mv.block) == mv.src
        assert b.data_location(mv.block) == mv.dst


def test_mismatched_layouts_rejected():
    a = lay("raid0")
    b = make_layout("raid0", n_disks=6, block_size=1, disk_capacity=16)
    with pytest.raises(ConfigurationError):
        migration_plan(a, b)


def test_max_blocks_truncates():
    a = lay("raid0")
    b = lay("raid10")
    plan = migration_plan(a, b, max_blocks=10)
    assert plan.blocks_checked == 10


def test_execute_migration_moves_bytes():
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    old = cluster.storage.layout
    new = make_layout(
        "raid10",
        n_disks=old.n_disks,
        block_size=old.block_size,
        disk_capacity=old.disk_capacity,
    )
    plan = migration_plan(old, new, max_blocks=32)
    result = execute_migration(cluster, plan)
    assert result.moves == len(plan)
    assert result.bytes_moved == len(plan) * old.block_size
    assert result.elapsed > 0
    assert result.rate_mb_s > 0
    # Every move did one read and one write at the disk level.
    reads = sum(d.stats.reads for d in cluster.all_disks())
    writes = sum(d.stats.writes for d in cluster.all_disks())
    assert reads == len(plan) and writes == len(plan)

"""n×k geometry enumeration and reconfiguration (4×3 ⇄ 6×2)."""

import pytest

from repro.errors import ConfigurationError
from repro.raid import make_layout, reconfigure, valid_geometries


def test_valid_geometries_of_12():
    geoms = valid_geometries(12)
    assert (12, 1) in geoms and (4, 3) in geoms and (6, 2) in geoms
    assert (3, 4) in geoms
    assert all(n * k == 12 for n, k in geoms)
    assert geoms == sorted(geoms, key=lambda nk: -nk[0])


def test_min_width_filter():
    geoms = valid_geometries(12, min_width=4)
    assert all(n >= 4 for n, _ in geoms)


def test_reconfigure_4x3_to_6x2():
    lay = make_layout(
        "raidx", n_disks=12, block_size=1, disk_capacity=8, stripe_width=4
    )
    new = reconfigure(lay, 6, 2)
    assert new.n == 6 and new.k == 2
    assert new.n_disks == 12
    new.verify_invariants(new.data_blocks)


def test_reconfigure_wrong_product_rejected():
    lay = make_layout(
        "raidx", n_disks=12, block_size=1, disk_capacity=8, stripe_width=4
    )
    with pytest.raises(ConfigurationError):
        reconfigure(lay, 5, 2)


def test_reconfigure_preserves_type():
    lay = make_layout(
        "raid0", n_disks=12, block_size=1, disk_capacity=8, stripe_width=4
    )
    new = reconfigure(lay, 12, 1)
    assert type(new) is type(lay)

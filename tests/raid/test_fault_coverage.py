"""tolerates() predicates and coverage math per layout."""

import pytest

from repro.fault.coverage import (
    coverage_profile,
    guaranteed_coverage,
    survivable_fraction,
)
from repro.raid import make_layout


def lay(name, n_disks=8, stripe_width=None):
    return make_layout(
        name,
        n_disks=n_disks,
        block_size=1,
        disk_capacity=16,
        stripe_width=stripe_width,
    )


def test_raid0_tolerates_nothing():
    layout = lay("raid0")
    assert layout.tolerates(set())
    assert not layout.tolerates({0})


def test_raid5_single_failure_only():
    layout = lay("raid5")
    assert layout.tolerates({3})
    assert not layout.tolerates({3, 4})
    assert layout.max_fault_coverage() == 1


def test_raid10_one_per_pair():
    layout = lay("raid10")
    assert layout.tolerates({0, 2, 4, 6})  # one per pair
    assert not layout.tolerates({0, 1})  # a whole pair
    assert layout.max_fault_coverage() == 4


def test_chained_no_adjacent_pair():
    layout = lay("chained")
    assert layout.tolerates({0, 2, 4, 6})
    assert not layout.tolerates({0, 1})
    assert not layout.tolerates({7, 0})  # ring wrap-around
    assert not layout.tolerates(set(range(8)))


def test_guaranteed_coverage():
    assert guaranteed_coverage(lay("raid0")) == 0
    assert guaranteed_coverage(lay("raid5")) == 1
    assert guaranteed_coverage(lay("raid10")) == 1
    assert guaranteed_coverage(lay("raidx", stripe_width=4)) == 1


def test_survivable_fraction_exhaustive():
    layout = lay("raid10")
    # f=2: fatal only when both disks are a pair: 4 of C(8,2)=28 patterns.
    assert survivable_fraction(layout, 2) == pytest.approx(24 / 28)
    assert survivable_fraction(layout, 0) == 1.0
    assert survivable_fraction(layout, 9) == 0.0


def test_survivable_fraction_raidx_two_groups():
    layout = lay("raidx", n_disks=8, stripe_width=4)
    # Two failures survive iff they land in different 4-disk groups:
    # 16 of C(8,2)=28.
    assert survivable_fraction(layout, 2) == pytest.approx(16 / 28)


def test_survivable_fraction_monte_carlo_close():
    layout = lay("raid10")
    exact = survivable_fraction(layout, 2)
    approx = survivable_fraction(layout, 2, samples=5)  # forces sampling? no
    # With samples >= total patterns the computation is exhaustive, so
    # request fewer samples than patterns to exercise the MC path.
    mc = survivable_fraction(layout, 2, samples=20)
    assert abs(mc - exact) < 0.35
    assert approx >= 0


def test_coverage_profile_monotonic_decreasing():
    layout = lay("raidx", n_disks=8, stripe_width=4)
    prof = coverage_profile(layout, max_f=4)
    vals = [prof[f] for f in sorted(prof)]
    assert all(a >= b for a, b in zip(vals, vals[1:]))
    assert prof[1] == 1.0

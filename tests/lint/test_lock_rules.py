"""Fixtures for the LOCK release-on-all-paths analysis."""

from __future__ import annotations

import textwrap

from tests.lint.util import codes, lint_one


def lint(src: str, module: str = "repro.cluster.fixture") -> set[str]:
    return codes(lint_one(module, textwrap.dedent(src), select="LOCK"))


def test_lock001_fires_when_risky_work_precedes_release():
    assert "LOCK001" in lint(
        """
        def write(mutex, transport):
            req = mutex.acquire()
            yield req
            yield from transport.message()
            mutex.release(req)
        """
    )


def test_lock001_fires_on_early_return_with_lock_held():
    assert "LOCK001" in lint(
        """
        def write(mutex, ok):
            req = mutex.acquire()
            if not ok:
                return None
            mutex.release(req)
            return req
        """
    )


def test_lock001_silent_under_try_finally():
    assert "LOCK001" not in lint(
        """
        def write(mutex, transport):
            req = mutex.acquire()
            try:
                yield req
                yield from transport.message()
            finally:
                mutex.release(req)
        """
    )


def test_lock001_silent_on_conditional_release_of_maybe_none():
    # The None-pruning split: a held token is never None, so releasing
    # under `if req is not None` covers every path that acquired.
    assert "LOCK001" not in lint(
        """
        def write(mutex, transport):
            req = None
            try:
                req = mutex.acquire()
                yield req
                yield from transport.message()
            finally:
                if req is not None:
                    mutex.release(req)
        """
    )


def test_lock001_silent_on_immediate_ownership_handoff():
    # Appending the request to a handle list transfers ownership — the
    # caller-side release path is responsible from then on.
    assert "LOCK001" not in lint(
        """
        def acquire_all(mutex, held):
            req = mutex.acquire()
            held.append(req)
            return held
        """
    )


def test_lock002_fires_on_discarded_acquire():
    assert "LOCK002" in lint(
        """
        def grab(mutex):
            mutex.acquire()
        """
    )

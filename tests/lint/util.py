"""Shared helpers for the repro.lint rule fixtures."""

from __future__ import annotations

from repro.lint import Finding, lint_sources


def codes(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


def lint_one(module: str, source: str, select: str | None = None) -> list[Finding]:
    """Lint a single in-memory module under the given dotted name."""
    sel = select.split(",") if select else None
    return lint_sources({module: source}, select=sel)

"""FF rules: the fast-forward legality contract.

The fixtures model the contract with small stand-in classes (the GUARDED
table keys sites by ``Class.method``, module-agnostic on purpose).  The
load-bearing cases: a guard-state write from an un-owned site (FF001 —
invisible to any per-function analysis when laundered through a helper),
truncation and set-order reductions inside pricing functions
(FF002/FF003), and arming ``ff_preload`` without an ``ff_ready`` check
anywhere upstream (FF004).
"""

from __future__ import annotations

import textwrap

from tests.lint.util import codes
from repro.lint import lint_sources


def lint(sources: dict):
    return lint_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()},
        select=["FF"],
    )


def test_guard_mutation_from_unowned_site_fires():
    findings = lint({
        "repro.hardware.disk2": """
            class Disk:
                def __init__(self):
                    self._ff_parked = False

                def reset(self):
                    self._ff_parked = False
            """,
    })
    assert codes(findings) == {"FF001"}
    (f,) = findings
    assert "Disk.reset" in f.message
    assert "_ff_parked" in f.message


def test_guard_mutation_from_owning_sites_is_silent():
    findings = lint({
        "repro.hardware.disk2": """
            class Disk:
                def __init__(self):
                    self._ff_parked = False
                    self._pending = []

                def submit(self, req):
                    self._pending.append(req)
                    self._ff_parked = True
            """,
    })
    assert findings == []


def test_helper_called_only_from_owners_is_legal():
    # Refactoring a guard owner into a private helper must not trip the
    # rule: the helper joins the guarded closure.
    findings = lint({
        "repro.hardware.disk2": """
            class Disk:
                def _ff_next(self):
                    self._unpark()

                def _unpark(self):
                    self._ff_parked = False
            """,
    })
    assert findings == []


def test_helper_with_one_unowned_caller_fires():
    # The acceptance fixture: an FF guard bypass the intraprocedural
    # analyzer cannot see — the mutation lives in a helper whose caller
    # set includes a non-owner, so the closure excludes it.
    findings = lint({
        "repro.hardware.disk2": """
            class Disk:
                def _ff_next(self):
                    self._unpark()

                def poke(self):
                    self._unpark()

                def _unpark(self):
                    self._ff_parked = False
            """,
    })
    assert codes(findings) == {"FF001"}
    (f,) = findings
    assert "Disk._unpark" in f.message


def test_mutator_method_call_and_subscript_write_fire():
    findings = lint({
        "repro.raid.mirror2": """
            class MirrorState:
                def __init__(self):
                    self.dirty_groups = set()

            class Scrubber:
                def mark(self, ms, g):
                    ms.dirty_groups.add(g)

                def patch(self, engine, key, plan):
                    engine._ff_plans[key] = plan
            """,
    })
    assert codes(findings) == {"FF001"}
    assert len(findings) == 2


def test_module_level_mutation_is_never_legal():
    findings = lint({
        "repro.hardware.disk2": """
            STATE = {}
            STATE["x"] = object()
            STATE["x"]._ff_parked = True
            """,
    })
    assert codes(findings) == {"FF001"}
    assert "module level" in findings[0].message


def test_floor_division_in_pricing_function_fires():
    findings = lint({
        "repro.hardware.disk2": """
            class Disk:
                def _ff_step(self, n):
                    return n // 2
            """,
    })
    assert codes(findings) == {"FF002"}
    assert "floor division" in findings[0].message


def test_int_call_in_pricing_function_fires():
    findings = lint({
        "repro.io.node2": """
            class Node:
                def try_fast_forward(self, t):
                    return int(t) + 1.0
            """,
    })
    assert codes(findings) == {"FF002"}
    assert "int()" in findings[0].message


def test_truncation_feeding_a_subscript_is_exempt():
    # Geometry indexing is integral by nature — int() inside a subscript
    # slice is not a priced quantity.
    findings = lint({
        "repro.io.node2": """
            class Node:
                def try_fast_forward(self, t):
                    return self.table[int(t) % 4] * 2.0
            """,
    })
    assert findings == []


def test_float_arithmetic_in_pricing_function_is_silent():
    findings = lint({
        "repro.hardware.disk2": """
            class Disk:
                def _ff_step(self, n):
                    return n / 2.0 + self.seek_ms
            """,
    })
    assert findings == []


def test_truncation_outside_pricing_functions_is_silent():
    findings = lint({
        "repro.hardware.disk2": """
            class Disk:
                def capacity_blocks(self, bytes_):
                    return bytes_ // 512
            """,
    })
    assert findings == []


def test_sum_over_set_in_pricing_function_fires():
    findings = lint({
        "repro.io.node2": """
            class Node:
                def ff_price(self, xs):
                    return sum({x * 2.0 for x in xs})
            """,
    })
    assert codes(findings) == {"FF003"}
    assert "sum() over a set" in findings[0].message


def test_iteration_over_set_in_pricing_function_fires():
    findings = lint({
        "repro.io.node2": """
            class Node:
                def ff_price(self, xs):
                    total = 0.0
                    for x in set(xs):
                        total += x
                    return total
            """,
    })
    assert codes(findings) == {"FF003"}
    assert "iteration over a set" in findings[0].message


def test_sum_over_list_in_pricing_function_is_silent():
    findings = lint({
        "repro.io.node2": """
            class Node:
                def ff_price(self, xs):
                    return sum([x * 2.0 for x in xs])
            """,
    })
    assert findings == []


def test_cache_stage_guard_mutation_from_unowned_site_fires():
    # PR 10: the fill fast path's predicate state (_ff_fill_pending,
    # _destaging, _active) is guard state — a write from outside the
    # stage machinery breaks the deferred-preload fence.
    findings = lint({
        "repro.cluster.cache_stage2": """
            class CacheStage:
                def __init__(self, n):
                    self._ff_fill_pending = [0] * n
                    self._active = 0
                    self._destaging = [False] * n

                def reset_counters(self):
                    self._ff_fill_pending = []
                    self._active = 0
            """,
    })
    assert codes(findings) == {"FF001"}
    assert len(findings) == 2
    assert any("_ff_fill_pending" in f.message for f in findings)
    assert any("_active" in f.message for f in findings)


def test_cache_stage_guard_mutation_from_owning_sites_is_silent():
    findings = lint({
        "repro.cluster.cache_stage2": """
            class CacheStage:
                def _fast_fill(self, client):
                    self._ff_fill_pending[client] += 1

                def _spawn_sweep(self, client):
                    self._destaging[client] = True

                def _destage_sweep(self, client):
                    self._destaging[client] = False

            class _FFFillRun:
                def _fire(self, event):
                    self.stage_ref._active += 1
                    self.stage_ref._ff_fill_pending[0] -= 1
            """,
    })
    assert findings == []


def test_truncation_in_cache_pricing_helper_fires():
    # PR 10: the cache stage's hit/fill pricing helpers are pricing
    # functions even though they sit outside the ff_ naming family.
    findings = lint({
        "repro.cluster.cache_stage2": """
            class CacheStage:
                def _fast_hit(self, nbytes):
                    return nbytes // 2 / self.rate
            """,
    })
    assert codes(findings) == {"FF002"}
    assert "_fast_hit" in findings[0].message


def test_float_cache_pricing_helper_is_silent():
    findings = lint({
        "repro.cluster.cache_stage2": """
            class CacheStage:
                def _fast_fill(self, nbytes):
                    return nbytes / self.rate + self.overhead_s
            """,
    })
    assert findings == []


def test_claim_helpers_own_free_at_writes():
    findings = lint({
        "repro.hardware.node2": """
            class Node:
                def ff_claim_scsi(self, t1, nbytes):
                    link = self.scsi._link
                    link._free_at = t1 + nbytes / link.rate
                    return link._free_at
            """,
    })
    assert findings == []


def test_preload_without_guard_fires():
    findings = lint({
        "repro.io.node2": """
            class Node:
                def kick(self, disk):
                    disk.ff_preload(5)
            """,
    })
    assert codes(findings) == {"FF004"}
    assert "kick()" in findings[0].message


def test_preload_behind_direct_guard_is_silent():
    findings = lint({
        "repro.io.node2": """
            class Node:
                def kick(self, disk):
                    if disk.ff_ready:
                        disk.ff_preload(5)
            """,
    })
    assert findings == []


def test_preload_in_helper_guarded_by_sole_caller_is_silent():
    # The guard lives one level up; the helper is only reachable through
    # the guarded caller, so it joins the closure.
    findings = lint({
        "repro.io.node2": """
            class Node:
                def kick(self, disk):
                    if disk.ff_ready:
                        self._arm(disk)

                def _arm(self, disk):
                    disk.ff_preload(5)
            """,
    })
    assert findings == []


def test_preload_behind_ready_chain_guard_is_silent():
    # ff_ready_chain wraps the ff_ready check, so a reference to it
    # counts as the guard (PR 10 splits predicate from claims).
    findings = lint({
        "repro.io.node2": """
            class Node:
                def kick(self, disk_id):
                    disk = self.ff_ready_chain(disk_id)
                    if disk is not None:
                        disk.ff_preload(5)
            """,
    })
    assert findings == []

"""The analyzer's own verdict on this repository: clean.

The committed baseline is empty, so every rule is live — a regression
in src/ (a stranded lock, an unclosed span, an upward import) fails
this test the same way it fails the CI lint job.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
BASELINE = REPO_SRC.parent / "lint-baseline.json"


def test_src_lints_clean():
    findings = lint_paths([str(REPO_SRC)])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_committed_baseline_is_empty():
    import json

    data = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert data["version"] == 1
    assert data["fingerprints"] == []

"""SIM005: determinism taint crossing into simulation scope.

SIM001/SIM002 flag wall-clock and RNG use *where it happens*.  SIM005
closes the laundering gap: a sim-scope module calling a helper defined
*outside* sim scope that (transitively) reaches a wall clock, a real
sleep, unseeded randomness, or threading.  The intraprocedural rules are
structurally blind to this — the sim module's own AST contains only an
innocent-looking call.
"""

from __future__ import annotations

import textwrap

from tests.lint.util import codes
from repro.lint import lint_sources


def lint(sources: dict, select: str = "SIM005"):
    return lint_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()},
        select=select.split(","),
    )


TAINTED_HELPER = """
    import time

    def stamp():
        return time.time()
"""

CLEAN_HELPER = """
    def stamp():
        return 0.0
"""


def test_taint_through_one_call_level_fires():
    findings = lint({
        "repro.bench.helpers": TAINTED_HELPER,
        "repro.sim.engine": """
            from repro.bench.helpers import stamp

            def tick(ev):
                return stamp() + ev
        """,
    })
    assert codes(findings) == {"SIM005"}
    (f,) = findings
    assert f.path == "repro/sim/engine.py"
    assert "stamp()" in f.message
    assert "time.time" in f.message


def test_taint_through_two_call_levels_reports_the_chain():
    findings = lint({
        "repro.bench.clock": TAINTED_HELPER,
        "repro.bench.wrap": """
            from repro.bench.clock import stamp

            def indirect():
                return stamp()
        """,
        "repro.sim.engine": """
            from repro.bench.wrap import indirect

            def tick():
                return indirect()
        """,
    })
    assert codes(findings) == {"SIM005"}
    (f,) = findings
    assert f.path == "repro/sim/engine.py"
    # The message walks the propagation chain back to the source.
    assert "indirect" in f.message and "stamp" in f.message


def test_clean_helper_is_silent():
    findings = lint({
        "repro.bench.helpers": CLEAN_HELPER,
        "repro.sim.engine": """
            from repro.bench.helpers import stamp

            def tick(ev):
                return stamp() + ev
        """,
    })
    assert findings == []


def test_tainted_helper_called_only_outside_sim_scope_is_silent():
    findings = lint({
        "repro.bench.helpers": TAINTED_HELPER,
        "repro.bench.report": """
            from repro.bench.helpers import stamp

            def banner():
                return stamp()
        """,
    })
    assert findings == []


def test_source_inside_sim_scope_is_sim001_territory_not_sim005():
    # The direct violation in sim scope is SIM001's job; SIM005 only
    # fires where taint crosses the scope boundary — no double report.
    findings = lint({
        "repro.sim.clock": TAINTED_HELPER,
        "repro.sim.engine": """
            from repro.sim.clock import stamp

            def tick():
                return stamp()
        """,
    }, select="SIM001,SIM005")
    assert codes(findings) == {"SIM001"}
    (f,) = findings
    assert f.path == "repro/sim/clock.py"


def test_threading_taint_propagates():
    findings = lint({
        "repro.bench.pool": """
            import threading

            def spawn(fn):
                t = threading.Thread(target=fn)
                t.start()
                return t
        """,
        "repro.io.sched": """
            from repro.bench.pool import spawn

            def kick(fn):
                return spawn(fn)
        """,
    })
    assert codes(findings) == {"SIM005"}
    assert findings[0].path == "repro/io/sched.py"


def test_unseeded_rng_taint_propagates():
    findings = lint({
        "repro.analysis.sampling": """
            import numpy as np

            def draw():
                return np.random.default_rng().random()
        """,
        "repro.workloads.gen": """
            from repro.analysis.sampling import draw

            def next_size():
                return draw()
        """,
    })
    assert codes(findings) == {"SIM005"}
    assert findings[0].path == "repro/workloads/gen.py"

"""Fixtures for the SIM determinism / sim-hygiene rules."""

from __future__ import annotations

import textwrap

from tests.lint.util import codes, lint_one


def lint(src: str, module: str = "repro.cluster.fixture") -> set[str]:
    return codes(lint_one(module, textwrap.dedent(src), select="SIM"))


# -- SIM001: wall clock / real sleep / threading -------------------------

def test_sim001_fires_on_wall_clock_read():
    assert "SIM001" in lint(
        """
        import time

        def stamp():
            return time.time()
        """
    )


def test_sim001_fires_on_real_sleep_and_threading():
    found = lint(
        """
        import threading
        import time

        def pause():
            time.sleep(1.0)
        """
    )
    assert "SIM001" in found


def test_sim001_silent_on_env_now_and_outside_sim_scope():
    assert "SIM001" not in lint(
        """
        def stamp(env):
            return env.now
        """
    )
    # bench is measurement code: wall clock is the point there.
    assert "SIM001" not in lint(
        """
        import time

        def stamp():
            return time.time()
        """,
        module="repro.bench.fixture",
    )


# -- SIM002: randomness discipline ---------------------------------------

def test_sim002_fires_on_stdlib_random_import():
    assert "SIM002" in lint(
        """
        import random

        def pick(items):
            return random.choice(items)
        """
    )


def test_sim002_fires_on_unseeded_default_rng():
    assert "SIM002" in lint(
        """
        import numpy as np

        def make():
            return np.random.default_rng()
        """
    )


def test_sim002_silent_on_seeded_generator():
    assert "SIM002" not in lint(
        """
        import numpy as np

        def make(seed):
            return np.random.default_rng(seed)
        """
    )


# -- SIM003: kernel-legal yields -----------------------------------------

def test_sim003_fires_on_string_and_container_yields():
    assert "SIM003" in lint(
        """
        def proc(env):
            yield "not an event"
        """
    )
    assert "SIM003" in lint(
        """
        def proc(env, a, b):
            yield [a, b]
        """
    )


def test_sim003_fires_on_reachable_bare_yield():
    assert "SIM003" in lint(
        """
        def proc(env):
            yield
        """
    )


def test_sim003_silent_on_generator_marker_and_numeric_yield():
    assert "SIM003" not in lint(
        """
        def proc(env, dt, ev):
            yield dt
            yield ev

        def empty(env):
            return
            yield  # pragma: no cover - keeps this a generator
        """
    )


# -- SIM004: hot-path sleep form -----------------------------------------

def test_sim004_fires_on_env_timeout_yield():
    assert "SIM004" in lint(
        """
        def proc(env):
            yield env.timeout(3.0)
        """
    )
    assert "SIM004" in lint(
        """
        class P:
            def run(self):
                yield self.env.timeout(1)
        """
    )


def test_sim004_silent_on_plain_numeric_yield():
    assert "SIM004" not in lint(
        """
        def proc(env):
            yield 3.0
        """
    )

"""Fixtures for the CACHE buffer-cache boundary rules."""

from __future__ import annotations

import textwrap

from repro.lint import lint_sources
from tests.lint.util import codes


def lint(sources: dict[str, str], select: str = "CACHE") -> set[str]:
    deds = {name: textwrap.dedent(src) for name, src in sources.items()}
    return codes(lint_sources(deds, select=[select]))


# -- CACHE001: nothing below the engine sees the cache --------------------

def test_cache001_fires_when_raid_imports_cache():
    assert "CACHE001" in lint({
        "repro.raid.fixture": """
            from repro.cache import BlockCache
            """,
    })


def test_cache001_fires_on_lazy_import_too():
    assert "CACHE001" in lint({
        "repro.hardware.fixture": """
            def sneaky():
                from repro.cache.core import BlockCache
                return BlockCache
            """,
    })


def test_cache001_silent_for_engine_level_and_above():
    assert "CACHE001" not in lint({
        "repro.cluster.fixture": """
            from repro.cache import BlockCache
            """,
        "repro.fs.fixture": """
            from repro.cache import CacheDirectory
            """,
    })


def test_cache001_silent_on_writecontext_data_path():
    # The sanctioned direction: cache state flows *down* as plain data.
    assert "CACHE001" not in lint({
        "repro.raid.fixture": """
            from repro.raid.plan import WriteContext

            def f(wctx: WriteContext) -> int:
                return len(wctx.absorbed)
            """,
    })


# -- CACHE002: the cache package stays pure -------------------------------

def test_cache002_fires_when_cache_imports_sim():
    assert "CACHE002" in lint({
        "repro.cache.fixture": """
            from repro.sim.core import Environment
            """,
    })


def test_cache002_fires_on_lazy_cluster_import():
    assert "CACHE002" in lint({
        "repro.cache.fixture": """
            def sneaky():
                from repro.cluster.engine import ExecutionEngine
                return ExecutionEngine
            """,
    })


def test_cache002_fires_on_yield():
    assert "CACHE002" in lint({
        "repro.cache.fixture": """
            def destage(env):
                yield env.timeout(1.0)
            """,
    })


def test_cache002_silent_on_cache_internal_and_base_imports():
    assert "CACHE002" not in lint({
        "repro.cache.fixture": """
            from repro.cache.policy import LRUPolicy
            from repro.errors import ReproError
            from repro.units import KiB

            def f():
                return LRUPolicy, ReproError, KiB
            """,
    })


def test_repo_is_cache_clean():
    from repro.lint import lint_paths

    findings = [
        f for f in lint_paths(["src"])
        if f.rule.startswith("CACHE")
    ]
    assert findings == []

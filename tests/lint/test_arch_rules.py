"""Fixtures for the ARCH layering / boundary / cycle rules."""

from __future__ import annotations

import textwrap

from repro.lint import lint_sources
from tests.lint.util import codes


def lint(sources: dict[str, str], select: str = "ARCH") -> set[str]:
    deds = {name: textwrap.dedent(src) for name, src in sources.items()}
    return codes(lint_sources(deds, select=[select]))


# -- ARCH001: the layer table --------------------------------------------

def test_arch001_fires_when_sim_imports_upward():
    found = lint({
        "repro.sim.fixture": """
            from repro.cluster.cdd import CooperativeDiskDriver

            def f():
                return CooperativeDiskDriver
            """,
    })
    assert "ARCH001" in found


def test_arch001_fires_when_hardware_imports_cluster():
    assert "ARCH001" in lint({
        "repro.hardware.fixture": """
            from repro.cluster.manager import ClusterManager
            """,
    })


def test_arch001_silent_on_lazy_import_and_allowed_edges():
    assert "ARCH001" not in lint({
        # cluster may see hardware; a lazy upward import is sanctioned.
        "repro.cluster.fixture": """
            from repro.hardware.node import Node

            def late():
                from repro.fs.files import FileSet
                return FileSet, Node
            """,
    })


# -- ARCH002: the CDD/SIOS boundary --------------------------------------

def test_arch002_fires_on_disk_import_outside_boundary():
    assert "ARCH002" in lint({
        "repro.fs.fixture": """
            from repro.hardware.disk import Disk
            """,
    })


def test_arch002_silent_inside_boundary_packages():
    assert "ARCH002" not in lint({
        "repro.cluster.fixture": """
            from repro.hardware.disk import Disk
            """,
    })


# -- ARCH003: cycle detection --------------------------------------------

def test_arch003_fires_on_module_cycle():
    found = lint({
        "repro.fs.alpha": "import repro.fs.beta\n",
        "repro.fs.beta": "import repro.fs.alpha\n",
    }, select="ARCH003")
    assert "ARCH003" in found


def test_arch003_silent_on_lazy_back_edge():
    assert "ARCH003" not in lint({
        "repro.fs.alpha": "import repro.fs.beta\n",
        "repro.fs.beta": """
            def late():
                import repro.fs.alpha
                return repro.fs.alpha
            """,
    }, select="ARCH003")


# -- ARCH004: planner purity ---------------------------------------------

def test_arch004_fires_when_planner_imports_sim_kernel():
    assert "ARCH004" in lint({
        "repro.raid.planners": """
            from repro.sim.core import Environment
            """,
    }, select="ARCH004")


def test_arch004_fires_on_lazy_cluster_import():
    # Lazy imports break ARCH001 cycles legitimately, but a planner
    # reaching for the execution layer is impure no matter how late.
    assert "ARCH004" in lint({
        "repro.raid.plan": """
            def sneak():
                from repro.cluster.cdd import CooperativeDiskDriver
                return CooperativeDiskDriver
            """,
    }, select="ARCH004")


def test_arch004_fires_on_yield_in_planner():
    assert "ARCH004" in lint({
        "repro.raid.planners": """
            def not_a_plan(disk):
                yield disk.read(0, 4096)
            """,
    }, select="ARCH004")


def test_arch004_silent_on_pure_planner():
    assert "ARCH004" not in lint({
        "repro.raid.planners": """
            from repro.errors import DataLossError
            from repro.raid.plan import IOPlan
            from repro.units import KiB

            def plan(offset, nbytes):
                if nbytes < 0:
                    raise DataLossError("bad")
                return IOPlan, KiB
            """,
    }, select="ARCH004")


def test_arch004_ignores_non_planner_raid_modules():
    # Other raid modules answer to ARCH001, not the purity rule.
    assert "ARCH004" not in lint({
        "repro.raid.layout": """
            def gen():
                yield 1
            """,
    }, select="ARCH004")

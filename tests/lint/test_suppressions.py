"""Suppression hygiene: tokenize anchoring and LINT001 staleness.

Two fixes ride together: the ``# lint: ignore`` marker is now anchored
to a real trailing comment token (the text inside a string literal is
inert), and a suppression that no longer suppresses anything is itself
a finding (LINT001) — prunable, never self-laundering.
"""

from __future__ import annotations

import textwrap

from tests.lint.util import codes
from repro.lint import lint_sources


def lint(sources: dict, select=None):
    return lint_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()},
        select=select,
    )


def test_used_suppression_is_silent():
    findings = lint({
        "repro.sim.clock": """
            import time

            def stamp():
                return time.time()  # lint: ignore[SIM001]
        """,
    })
    assert "SIM001" not in codes(findings)
    assert "LINT001" not in codes(findings)


def test_stale_code_suppression_fires_lint001():
    findings = lint({
        "repro.sim.clock": """
            def stamp():
                return 0.0  # lint: ignore[SIM001]
        """,
    })
    assert codes(findings) == {"LINT001"}
    (f,) = findings
    assert "SIM001" in f.message
    assert "no longer matches any finding" in f.message


def test_stale_blanket_suppression_cannot_launder_itself():
    # A blanket marker would suppress "any finding on this line" —
    # including, absurdly, the LINT001 that reports its own staleness.
    findings = lint({
        "repro.sim.clock": """
            def stamp():
                return 0.0  # lint: ignore
        """,
    })
    assert codes(findings) == {"LINT001"}
    assert "blanket suppression" in findings[0].message


def test_explicit_lint001_suppression_is_the_escape_hatch():
    findings = lint({
        "repro.sim.clock": """
            def stamp():
                return 0.0  # lint: ignore[LINT001]
        """,
    })
    assert findings == []


def test_marker_inside_string_literal_is_inert():
    # The old line-text scan suppressed SIM001 here; tokenize anchoring
    # sees no comment token, so the finding stands — and the fake
    # marker is not reported as a stale suppression either.
    findings = lint({
        "repro.sim.clock": """
            import time

            def stamp():
                return (time.time(), "# lint: ignore[SIM001]")
        """,
    })
    assert codes(findings) == {"SIM001"}


def test_marker_mid_comment_is_not_a_suppression():
    # Only a comment whose body *starts* with the marker counts;
    # prose mentioning it does not suppress (and is not stale either).
    findings = lint({
        "repro.sim.clock": """
            import time

            def stamp():
                return time.time()  # see # lint: ignore[SIM001] docs
        """,
    })
    assert codes(findings) == {"SIM001"}


def test_suppression_used_by_unselected_finding_is_not_stale():
    # The suppression matches a real SIM001 finding; narrowing the run
    # to LINT must not flag it as unused.
    findings = lint({
        "repro.sim.clock": """
            import time

            def stamp():
                return time.time()  # lint: ignore[SIM001]
        """,
    }, select=["LINT"])
    assert findings == []

"""Fixtures for the OBS tracing-discipline rules."""

from __future__ import annotations

import textwrap

from tests.lint.util import codes, lint_one


def lint(src: str, module: str = "repro.cluster.fixture") -> set[str]:
    return codes(lint_one(module, textwrap.dedent(src), select="OBS"))


# -- OBS001: no ad-hoc tracer construction -------------------------------

def test_obs001_fires_on_direct_tracer_construction():
    assert "OBS001" in lint(
        """
        from repro.obs import Tracer

        def make():
            return Tracer()
        """
    )


def test_obs001_silent_inside_repro_obs():
    assert "OBS001" not in lint(
        """
        from repro.obs.trace import Tracer

        def make():
            return Tracer()
        """,
        module="repro.obs.fixture",
    )


# -- OBS002: spans close on every path -----------------------------------

def test_obs002_fires_on_span_leak():
    assert "OBS002" in lint(
        """
        def serve(tracer, env, work):
            span = tracer.open_span("request", "node0", env)
            work()
            span.close()
        """
    )


def test_obs002_fires_on_discarded_open_span():
    assert "OBS002" in lint(
        """
        def serve(tracer, env):
            tracer.open_span("request", "node0", env)
        """
    )


def test_obs002_silent_on_context_manager_and_finally():
    assert "OBS002" not in lint(
        """
        def serve(tracer, env, work):
            with tracer.open_span("request", "node0", env):
                work()

        def serve_explicit(tracer, env, work):
            span = tracer.open_span("request", "node0", env)
            try:
                work()
            finally:
                span.close(outcome="ok")
        """
    )


# -- OBS003: only runtime writes the slot --------------------------------

def test_obs003_fires_on_direct_slot_assignment():
    assert "OBS003" in lint(
        """
        from repro.obs import runtime

        def hijack(tracer):
            runtime.TRACER = tracer
        """
    )


def test_obs003_silent_inside_runtime_module():
    assert "OBS003" not in lint(
        """
        import repro.obs.runtime as runtime

        def install(tracer):
            runtime.TRACER = tracer
        """,
        module="repro.obs.runtime",
    )


# -- OBS004: sampling decisions are deterministic ------------------------

def test_obs004_fires_on_rng_draw_in_sampler():
    assert "OBS004" in lint(
        """
        import random

        def keeps(self, trace):
            return random.random() < self.sample_rate
        """,
        module="repro.obs.fixture",
    )


def test_obs004_fires_on_wall_clock_in_sampler():
    assert "OBS004" in lint(
        """
        import time

        def sample_decision(trace, rate):
            return (time.time_ns() % 100) / 100.0 < rate
        """,
        module="repro.obs.fixture",
    )


def test_obs004_fires_on_unseeded_numpy_rng_in_sampler():
    assert "OBS004" in lint(
        """
        import numpy.random

        def resample(traces, rate):
            rng = numpy.random.default_rng()
            return [t for t in traces if rng.random() < rate]
        """
    )


def test_obs004_silent_on_seeded_hash_sampler():
    assert "OBS004" not in lint(
        """
        def keeps(self, trace):
            x = (trace ^ self.sample_seed) & ((1 << 64) - 1)
            x = (x * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
            x ^= x >> 29
            return (x >> 11) * 2.0 ** -53 < self.sample_rate
        """,
        module="repro.obs.fixture",
    )


def test_obs004_silent_outside_sampler_functions():
    # RNG use in a non-sampling function is SIM002's business (and only
    # inside the sim scope), not OBS004's.
    assert "OBS004" not in lint(
        """
        import random

        def shuffle_work(items):
            random.shuffle(items)
            return items
        """
    )


def test_obs002_silent_when_span_closed_in_callee():
    # Interprocedural: the close happens one call level down; the callee
    # summary proves close-on-all-paths, so passing the span is not a leak.
    assert "OBS002" not in lint(
        """
        def serve(tracer, env, work):
            sp = tracer.open_span("serve")
            finish(sp, work)

        def finish(sp, work):
            try:
                work()
            finally:
                sp.close()
        """
    )


def test_obs002_fires_when_callee_keeps_the_span():
    # The callee only records the span; the caller still owns it and
    # falls off without closing — a leak the per-function pass missed.
    assert "OBS002" in lint(
        """
        def serve(tracer, env, log):
            sp = tracer.open_span("serve")
            stash(sp, log)

        def stash(sp, log):
            log.count += 1
        """
    )

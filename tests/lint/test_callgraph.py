"""Call-graph substrate: symbol resolution, method dispatch, SCCs.

The fixtures cover the resolution shapes the interprocedural rules rely
on: diamond import graphs, aliased re-exports through a package module,
self/cls method dispatch, explicit ``ClassName.method`` access,
constructor edges, the unique-method fallback tier, method-resolution
*ambiguity* (two candidate classes -> no edge, never a guess), and
recursion cycles condensing into one SCC.
"""

from __future__ import annotations

import textwrap

from repro.lint.callgraph import CallGraph, get_callgraph
from repro.lint.core import ModuleInfo


def build(sources: dict) -> CallGraph:
    mods = [
        ModuleInfo(name.replace(".", "/") + ".py", name, textwrap.dedent(src))
        for name, src in sources.items()
    ]
    return CallGraph(mods)


def test_diamond_imports_converge_on_one_definition():
    g = build({
        "repro.sim.base": """
            def now_ms():
                return 0.0
        """,
        "repro.sim.left": """
            from repro.sim.base import now_ms as left_now

            def via_left():
                return left_now()
        """,
        "repro.sim.right": """
            from repro.sim.base import now_ms

            def via_right():
                return now_ms()
        """,
        "repro.sim.top": """
            from repro.sim.left import via_left
            from repro.sim.right import via_right

            def top():
                return via_left() + via_right()
        """,
    })
    base = "repro.sim.base.now_ms"
    assert g.calls_certain["repro.sim.left.via_left"] == {base}
    assert g.calls_certain["repro.sim.right.via_right"] == {base}
    assert g.calls_certain["repro.sim.top.top"] == {
        "repro.sim.left.via_left",
        "repro.sim.right.via_right",
    }
    assert g.callers_certain[base] == {
        "repro.sim.left.via_left",
        "repro.sim.right.via_right",
    }


def test_aliased_reexport_through_package_module():
    g = build({
        "repro.hardware.disk": """
            class Disk:
                def __init__(self):
                    self.ok = True

                def submit(self, req):
                    return req
        """,
        "repro.hardware": """
            from repro.hardware.disk import Disk
        """,
        "repro.cluster.user": """
            from repro.hardware import Disk as D

            def make():
                return D()
        """,
    })
    # Constructor edge resolves through the package re-export to __init__.
    assert g.calls_certain["repro.cluster.user.make"] == {
        "repro.hardware.disk.Disk.__init__"
    }


def test_self_dispatch_and_inheritance():
    g = build({
        "repro.hardware.devices": """
            class Base:
                def shared(self):
                    return 1

            class Child(Base):
                def caller(self):
                    return self.shared() + self.own()

                def own(self):
                    return 2
        """,
    })
    assert g.calls_certain["repro.hardware.devices.Child.caller"] == {
        "repro.hardware.devices.Base.shared",
        "repro.hardware.devices.Child.own",
    }


def test_explicit_class_qualified_method_access():
    g = build({
        "repro.hardware.devices": """
            class Disk:
                def spin(self):
                    return 1

            def poke(d):
                return Disk.spin(d)
        """,
    })
    assert g.calls_certain["repro.hardware.devices.poke"] == {
        "repro.hardware.devices.Disk.spin"
    }


def test_unique_method_fallback_is_a_lower_tier():
    g = build({
        "repro.hardware.devices": """
            class Disk:
                def whirl(self):
                    return 1

            def poke(d):
                return d.whirl()
        """,
    })
    qual = "repro.hardware.devices.poke"
    assert g.calls_all[qual] == {"repro.hardware.devices.Disk.whirl"}
    # ... but not in the certain tier: the receiver is a runtime value.
    assert g.calls_certain[qual] == set()


def test_method_resolution_ambiguity_produces_no_edge():
    g = build({
        "repro.hardware.devices": """
            class Disk:
                def spin(self):
                    return 1

            class Fan:
                def spin(self):
                    return 2

            def poke(obj):
                return obj.spin()
        """,
    })
    assert g.calls_all["repro.hardware.devices.poke"] == set()


def test_recursion_cycle_forms_one_scc_in_bottom_up_order():
    g = build({
        "repro.sim.walk": """
            def leaf():
                return 1

            def ping(n):
                return pong(n - 1) + leaf()

            def pong(n):
                return ping(n - 1) if n else 0
        """,
    })
    sccs = g.sccs()
    cycle = ["repro.sim.walk.ping", "repro.sim.walk.pong"]
    assert sorted(cycle) in sccs
    # Callee-first: leaf's singleton SCC precedes the cycle that calls it.
    assert sccs.index(["repro.sim.walk.leaf"]) < sccs.index(sorted(cycle))


def test_guarded_closure_admits_helpers_called_only_from_seeds():
    g = build({
        "repro.hardware.devices": """
            def owner():
                return _helper()

            def _helper():
                return _deep()

            def _deep():
                return 0

            def outsider():
                return _deep()

            def orphan():
                return 0
        """,
    })
    m = "repro.hardware.devices"
    legal = g.guarded_closure({f"{m}.owner"})
    assert f"{m}._helper" in legal          # only caller is the seed
    assert f"{m}._deep" not in legal        # outsider also reaches it
    assert f"{m}.orphan" not in legal       # no callers: entry point
    legal2 = g.guarded_closure({f"{m}.owner", f"{m}.outsider"})
    assert f"{m}._deep" in legal2


def test_get_callgraph_memoizes_per_module_set():
    mods = [ModuleInfo("repro/sim/a.py", "repro.sim.a", "def f():\n    return 1\n")]
    assert get_callgraph(mods) is get_callgraph(mods)

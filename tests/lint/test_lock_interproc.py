"""Interprocedural LOCK analysis: summaries across function boundaries.

The PR-3 analyzer treated any held token passed to a call as an
ownership transfer and went silent.  With callee summaries the engine
now (a) stays quiet when the callee provably releases on all paths,
(b) reports LOCK001 when the callee provably does NOT release
("keeps"), (c) reports LOCK003 when the callee releases on some paths
only ("mixed"), and (d) tracks acquisition through factory helpers that
return a fresh handle (``returns_acquired``).
"""

from __future__ import annotations

import textwrap

from tests.lint.util import codes
from repro.lint import lint_sources


def lint(sources: dict):
    return lint_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()},
        select=["LOCK"],
    )


def test_lock_released_in_callee_is_clean():
    # The acceptance fixture: release happens one call level down.  The
    # intraprocedural analyzer could only stay silent by *assuming*
    # transfer; the summary now proves release-on-all-paths.
    findings = lint({
        "repro.raid.mgr": """
            class Mgr:
                def write(self, group):
                    h = self.locks.acquire_write_locks(group)
                    self._close(h)

                def _close(self, h):
                    try:
                        self.apply()
                    finally:
                        self.locks.release_write_locks(h)
            """,
    })
    assert findings == []


def test_callee_that_keeps_the_token_means_caller_leaks():
    # PR-3 missed this: passing h to ANY call counted as a transfer.
    # The summary proves _borrow never releases, so the caller leaks.
    findings = lint({
        "repro.raid.mgr": """
            class Mgr:
                def write(self, group):
                    h = self.locks.acquire_write_locks(group)
                    self._borrow(h)

                def _borrow(self, h):
                    self.count += 1
            """,
    })
    assert codes(findings) == {"LOCK001"}
    (f,) = findings
    assert f.line == 4  # reported at the acquire site


def test_callee_that_releases_on_some_paths_only_is_lock003():
    findings = lint({
        "repro.raid.mgr": """
            class Mgr:
                def write(self, group, ok):
                    h = self.locks.acquire_write_locks(group)
                    self._maybe_close(h, ok)

                def _maybe_close(self, h, ok):
                    if ok:
                        self.locks.release_write_locks(h)
            """,
    })
    assert codes(findings) == {"LOCK003"}
    (f,) = findings
    assert "_maybe_close" in f.message
    assert "some paths but not all" in f.message


def test_factory_returning_acquired_handle_tracks_into_caller():
    findings = lint({
        "repro.raid.mgr": """
            class Mgr:
                def _grab(self, group):
                    return self.locks.acquire_write_locks(group)

                def bad(self, group):
                    h = self._grab(group)
                    self.count += 1

                def good(self, group):
                    h = self._grab(group)
                    try:
                        self.count += 1
                    finally:
                        self.locks.release_write_locks(h)
            """,
    })
    assert codes(findings) == {"LOCK001"}
    (f,) = findings
    assert f.line == 7  # the _grab() call inside bad(), not inside good()


def test_release_through_reexported_module_helper():
    # Aliased re-export: the releasing helper is imported through a
    # package module under a new name; the call graph canonicalizes the
    # alias chain so the summary still applies.
    findings = lint({
        "repro.raid.helpers": """
            def finish(locks, h):
                try:
                    return len(h)
                finally:
                    locks.release_write_locks(h)
            """,
        "repro.raid": """
            from repro.raid.helpers import finish
            """,
        "repro.raid.mgr": """
            from repro.raid import finish as _done

            class Mgr:
                def write(self, group):
                    h = self.locks.acquire_write_locks(group)
                    _done(self.locks, h)
            """,
    })
    assert findings == []


def test_mutual_recursion_falls_back_to_conservative_transfer():
    # A recursion cycle gets no summary; the engine must neither crash
    # nor invent a leak — it falls back to the PR-3 transfer assumption.
    findings = lint({
        "repro.raid.mgr": """
            class Mgr:
                def write(self, group):
                    h = self.locks.acquire_write_locks(group)
                    self._ping(h, 3)

                def _ping(self, h, n):
                    if n:
                        self._pong(h, n - 1)

                def _pong(self, h, n):
                    if n:
                        self._ping(h, n - 1)
                    else:
                        self.locks.release_write_locks(h)
            """,
    })
    assert findings == []


def test_intraprocedural_leak_still_fires():
    # Regression guard: the summary machinery must not weaken the
    # original same-function analysis.
    findings = lint({
        "repro.raid.mgr": """
            class Mgr:
                def write(self, group):
                    h = self.locks.acquire_write_locks(group)
                    self.count += 1
            """,
    })
    assert codes(findings) == {"LOCK001"}

"""CLI behavior: JSON schema, exit codes, baseline, suppression."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

DIRTY = """\
import random


def pick(env, items):
    yield "oops"
    return random.choice(items)
"""

CLEAN = """\
def proc(env, dt):
    yield dt
"""


def run_lint(tmp_path: Path, *argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=tmp_path,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )


def write_module(tmp_path: Path, source: str) -> Path:
    mod = tmp_path / "repro" / "cluster" / "fixture.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(source, encoding="utf-8")
    return mod


def test_json_output_schema_and_exit_code(tmp_path):
    write_module(tmp_path, DIRTY)
    proc = run_lint(tmp_path, "repro", "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["version"] == 1
    assert payload["tool"] == "repro.lint"
    assert payload["baselined"] == []
    assert payload["summary"]["findings"] == len(payload["findings"]) > 0
    rules = {f["rule"] for f in payload["findings"]}
    assert {"SIM002", "SIM003"} <= rules
    assert payload["summary"]["by_rule"]["SIM002"] >= 1
    for f in payload["findings"]:
        assert {"rule", "path", "line", "col", "message"} <= set(f)


def test_clean_tree_exits_zero(tmp_path):
    write_module(tmp_path, CLEAN)
    proc = run_lint(tmp_path, "repro")
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_baseline_grandfathers_existing_findings(tmp_path):
    write_module(tmp_path, DIRTY)
    wrote = run_lint(tmp_path, "repro", "--write-baseline")
    assert wrote.returncode == 0
    proc = run_lint(tmp_path, "repro", "--format", "json")
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["findings"] == []
    assert payload["summary"]["baselined"] > 0


def test_select_narrows_to_one_family(tmp_path):
    write_module(tmp_path, DIRTY)
    proc = run_lint(tmp_path, "repro", "--format", "json", "--select", "SIM002")
    payload = json.loads(proc.stdout)
    assert {f["rule"] for f in payload["findings"]} == {"SIM002"}


def test_line_scoped_suppression_comment(tmp_path):
    write_module(
        tmp_path,
        "import random  # lint: ignore[SIM002]\n",
    )
    proc = run_lint(tmp_path, "repro")
    assert proc.returncode == 0


def test_list_rules_names_every_family(tmp_path):
    proc = run_lint(tmp_path, "--list-rules")
    assert proc.returncode == 0
    for family in ("SIM001", "LOCK", "OBS001", "ARCH001", "FF001", "LINT001"):
        assert family in proc.stdout


def test_prune_baseline_drops_stale_fingerprints(tmp_path):
    mod = write_module(tmp_path, DIRTY)
    wrote = run_lint(tmp_path, "repro", "--write-baseline")
    assert wrote.returncode == 0
    before = json.loads((tmp_path / "lint-baseline.json").read_text())
    assert before["fingerprints"]

    # The violations get fixed; their fingerprints are now stale.
    mod.write_text(CLEAN, encoding="utf-8")
    pruned = run_lint(tmp_path, "repro", "--prune-baseline")
    assert pruned.returncode == 0
    assert "pruned" in pruned.stderr

    after = json.loads((tmp_path / "lint-baseline.json").read_text())
    assert after["fingerprints"] == []


def test_prune_baseline_keeps_live_fingerprints(tmp_path):
    write_module(tmp_path, DIRTY)
    run_lint(tmp_path, "repro", "--write-baseline")
    before = json.loads((tmp_path / "lint-baseline.json").read_text())

    # Nothing was fixed: pruning must be a no-op.
    pruned = run_lint(tmp_path, "repro", "--prune-baseline")
    assert pruned.returncode == 0
    assert "pruned 0 stale fingerprint(s)" in pruned.stderr
    after = json.loads((tmp_path / "lint-baseline.json").read_text())
    assert after == before

"""Hypothesis: the file system against an in-memory reference model.

Random sequences of FS operations run both on the simulated FS (with all
its I/O charging) and on a trivial dict-based model; observable state
(existence, sizes, directory listings) must match.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import build_cluster
from repro.errors import FileSystemError
from repro.fs import FileSystem
from tests.conftest import run_proc, small_config

NAMES = st.sampled_from(["a", "b", "c", "d"])
DIRS = st.sampled_from(["d1", "d2"])

op_st = st.one_of(
    st.tuples(st.just("mkdir"), DIRS),
    st.tuples(st.just("create"), DIRS, NAMES),
    st.tuples(
        st.just("write"), DIRS, NAMES,
        st.integers(min_value=0, max_value=40_000),
    ),
    st.tuples(st.just("unlink"), DIRS, NAMES),
    st.tuples(st.just("readdir"), DIRS),
)


@given(ops=st.lists(op_st, max_size=25))
@settings(max_examples=30, deadline=None)
def test_fs_matches_reference_model(ops):
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    fs = FileSystem(cluster)
    model_dirs: dict = {}  # dir -> {name: size}

    def apply(op):
        kind = op[0]
        if kind == "mkdir":
            d = op[1]
            expect_fail = d in model_dirs
            try:
                yield from fs.mkdir(0, f"/{d}")
                assert not expect_fail
                model_dirs[d] = {}
            except FileSystemError:
                assert expect_fail
        elif kind == "create":
            d, name = op[1], op[2]
            expect_fail = d not in model_dirs or name in model_dirs.get(
                d, {}
            )
            try:
                yield from fs.create(0, f"/{d}/{name}")
                assert not expect_fail
                model_dirs[d][name] = 0
            except FileSystemError:
                assert expect_fail
        elif kind == "write":
            d, name, size = op[1], op[2], op[3]
            expect_fail = (
                d not in model_dirs or name not in model_dirs[d]
            )
            try:
                yield from fs.write_file(0, f"/{d}/{name}", size)
                assert not expect_fail
                model_dirs[d][name] = size
            except FileSystemError:
                assert expect_fail
        elif kind == "unlink":
            d, name = op[1], op[2]
            expect_fail = (
                d not in model_dirs or name not in model_dirs[d]
            )
            try:
                yield from fs.unlink(0, f"/{d}/{name}")
                assert not expect_fail
                del model_dirs[d][name]
            except FileSystemError:
                assert expect_fail
        elif kind == "readdir":
            d = op[1]
            if d in model_dirs:
                names = yield from fs.readdir(0, f"/{d}")
                assert sorted(names) == sorted(model_dirs[d])
            else:
                try:
                    yield from fs.readdir(0, f"/{d}")
                    raise AssertionError("expected failure")
                except FileSystemError:
                    pass

    def driver():
        for op in ops:
            yield from apply(op)
        # Final audit: every modeled file stats to the right size.
        for d, files in model_dirs.items():
            for name, size in files.items():
                stat = yield from fs.stat(1, f"/{d}/{name}")
                assert stat.size == size

    run_proc(cluster, driver())


@given(
    sizes=st.lists(
        st.integers(min_value=0, max_value=100_000), min_size=1, max_size=8
    )
)
@settings(max_examples=25, deadline=None)
def test_rewrites_track_last_size_and_leak_no_blocks(sizes):
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    fs = FileSystem(cluster)

    def driver():
        yield from fs.create(0, "/f")
        for size in sizes:
            yield from fs.write_file(0, "/f", size)
        got = yield from fs.read_file(0, "/f")
        assert got == sizes[-1]
        yield from fs.unlink(0, "/f")

    run_proc(cluster, driver())
    # Only the root directory may hold blocks now.
    assert fs.alloc.allocated <= 1

"""Hypothesis: the block allocator against a reference set model."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import NoSpaceError
from repro.fs.allocator import BlockAllocator


@given(
    n=st.integers(min_value=1, max_value=200),
    requests=st.lists(st.integers(min_value=1, max_value=20), max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_allocations_unique_and_in_range(n, requests):
    a = BlockAllocator(first_block=7, n_blocks=n)
    owned = set()
    for count in requests:
        if count > a.free_count:
            try:
                a.allocate(count)
                raise AssertionError("expected NoSpaceError")
            except NoSpaceError:
                continue
        got = a.allocate(count)
        assert len(got) == count
        for b in got:
            assert 7 <= b < 7 + n
            assert b not in owned
            owned.add(b)
    assert a.allocated == len(owned)


class AllocatorMachine(RuleBasedStateMachine):
    """Stateful test: allocate/free sequences preserve the bitmap."""

    def __init__(self):
        super().__init__()
        self.alloc = BlockAllocator(first_block=0, n_blocks=64)
        self.owned = set()

    @rule(count=st.integers(min_value=1, max_value=16))
    def allocate(self, count):
        if count > self.alloc.free_count:
            try:
                self.alloc.allocate(count)
                raise AssertionError("expected NoSpaceError")
            except NoSpaceError:
                return
        got = self.alloc.allocate(count)
        assert not (set(got) & self.owned)
        self.owned |= set(got)

    @precondition(lambda self: self.owned)
    @rule(data=st.data())
    def free_some(self, data):
        subset = data.draw(
            st.sets(st.sampled_from(sorted(self.owned)), min_size=1)
        )
        self.alloc.free(sorted(subset))
        self.owned -= subset

    @invariant()
    def accounting_matches(self):
        assert self.alloc.allocated == len(self.owned)
        assert self.alloc.free_count == 64 - len(self.owned)
        for b in range(64):
            assert self.alloc.is_free(b) == (b not in self.owned)


TestAllocatorMachine = AllocatorMachine.TestCase
TestAllocatorMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

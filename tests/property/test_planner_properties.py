"""Hypothesis: structural invariants of the pure planners.

For every architecture and random ``(op, offset, nbytes, failed)``
inputs, the declarative plans must:

* cover the requested byte range exactly once (pieces contiguous,
  disjoint, summing to ``nbytes``; foreground data writes 1:1 with
  pieces);
* respect RAID-x orthogonality — no mirror-image extent on any of its
  source data blocks' disks, and image extents covering each written
  byte exactly once;
* never place RAID-5 parity on a data disk of the same stripe, with
  every read-modify-write pass pairing parity I/O to the union of the
  modified intra-block ranges;
* be deterministic pure values (same inputs ⇒ equal plans).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raid import make_layout
from repro.raid.plan import (
    OrthogonalWrite,
    ParallelWrite,
    ParityWrite,
    SerialWrite,
)
from repro.raid.planners import make_planner
from repro.units import KiB

BS = 32 * KiB
N_DISKS = 8
DISK_MB = 16

ARCHS = ["raid0", "raid5", "raid10", "chained", "raidx"]

_LAYOUTS = {
    arch: make_layout(
        arch,
        n_disks=N_DISKS,
        block_size=BS,
        disk_capacity=DISK_MB * 1024 * 1024,
        stripe_width=4,
    )
    for arch in ARCHS
}
_PLANNERS = {arch: make_planner(arch, _LAYOUTS[arch]) for arch in ARCHS}


def _capacity(arch):
    return _LAYOUTS[arch].data_capacity


request_st = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=255),  # block index
    st.integers(min_value=0, max_value=BS - 1),  # intra offset
    st.integers(min_value=1, max_value=4 * BS),  # nbytes
)
failed_st = st.sets(
    st.integers(min_value=0, max_value=N_DISKS - 1), max_size=2
)


def _plan_for(arch, req, failed):
    op, block, intra, nbytes = req
    offset = block * BS + intra
    cap = _capacity(arch)
    if offset >= cap:
        offset = offset % cap
    nbytes = min(nbytes, cap - offset)
    return _PLANNERS[arch].plan(op, offset, nbytes, frozenset(failed)), \
        offset, nbytes


@given(arch=st.sampled_from(ARCHS), req=request_st, failed=failed_st)
@settings(max_examples=120, deadline=None)
def test_pieces_cover_range_exactly_once(arch, req, failed):
    plan, offset, nbytes = _plan_for(arch, req, failed)
    spans = [
        (p.block * BS + p.intra, p.block * BS + p.intra + p.nbytes)
        for p in plan.pieces
    ]
    spans.sort()
    assert sum(e - s for s, e in spans) == nbytes
    if spans:
        assert spans[0][0] == offset
        assert spans[-1][1] == offset + nbytes
        # Contiguous and non-overlapping.
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert e0 == s1
    # Lock requirements name exactly the touched blocks, in order.
    assert plan.lock_blocks == tuple(p.block for p in plan.pieces)


@given(arch=st.sampled_from(ARCHS), req=request_st, failed=failed_st)
@settings(max_examples=120, deadline=None)
def test_write_plans_carry_each_piece_exactly_once(arch, req, failed):
    op, block, intra, nbytes = req
    plan, offset, nbytes = _plan_for(arch, ("write", block, intra, nbytes),
                                     failed)
    action = plan.action
    if not plan.pieces:
        assert action is None
        return
    want = {(p.disk, p.disk_offset, p.nbytes) for p in plan.pieces}
    if isinstance(action, ParallelWrite):
        datas = [
            o
            for mw in action.pieces
            for o in mw.ops
            if o.kind == "data"
        ]
    elif isinstance(action, SerialWrite):
        datas = [o for o in action.waves[0] if o.kind == "data"]
    elif isinstance(action, ParityWrite):
        datas = [
            o
            for sw in action.stripes
            for o in (
                sw.full_stripe.writes
                if sw.full_stripe is not None
                else [w for g in sw.rmw_passes for w in g.writes]
            )
        ]
    elif isinstance(action, OrthogonalWrite):
        datas = list(action.foreground)
    else:  # pragma: no cover
        raise AssertionError(f"unknown action {type(action)}")
    got = {(o.disk, o.offset, o.nbytes) for o in datas}
    assert got == want
    assert len(datas) == len(plan.pieces)
    assert all(o.op == "write" for o in datas)


@given(req=request_st, failed=failed_st)
@settings(max_examples=120, deadline=None)
def test_raidx_orthogonality_and_image_coverage(req, failed):
    op, block, intra, nbytes = req
    plan, offset, nbytes = _plan_for("raidx", ("write", block, intra, nbytes),
                                     failed)
    action = plan.action
    if action is None:
        return
    lay = _LAYOUTS["raidx"]
    # Every image extent lands on a disk carrying none of the data
    # blocks it mirrors (orthogonality: a single disk loss never takes
    # both copies).
    for ext in action.extents:
        source_disks = set()
        for p in plan.pieces:
            img = lay.redundancy_locations(p.block)[0]
            lo, hi = img.offset + p.intra, img.offset + p.intra + p.nbytes
            if img.disk == ext.disk and lo < ext.offset + ext.nbytes \
                    and hi > ext.offset:
                source_disks.add(p.disk)
        assert ext.disk not in source_disks
    # Image extents cover each written byte exactly once (clustering
    # coalesces fragments, never drops or duplicates them).
    assert sum(e.nbytes for e in action.extents) == sum(
        p.nbytes for p in plan.pieces
    )
    # And clustering helps: never more extents than pieces.
    assert len(action.extents) <= len(plan.pieces)


@given(req=request_st, failed=failed_st,
       fso=st.booleans(), batch=st.booleans())
@settings(max_examples=120, deadline=None)
def test_raid5_parity_never_on_data_disk_of_stripe(req, failed, fso, batch):
    op, block, intra, nbytes = req
    planner = make_planner(
        "raid5", _LAYOUTS["raid5"],
        full_stripe_optimization=fso, batch_rmw=batch,
    )
    cap = _LAYOUTS["raid5"].data_capacity
    offset = (block * BS + intra) % cap
    nbytes = min(nbytes, cap - offset)
    plan = planner.plan("write", offset, nbytes, frozenset(failed))
    if plan.action is None:
        return
    lay = _LAYOUTS["raid5"]
    for sw in plan.action.stripes:
        stripe_data_disks = {
            lay.data_location(b).disk for b in lay.stripe_blocks(sw.stripe)
        }
        assert sw.parity_disk not in stripe_data_disks
        if sw.full_stripe is not None:
            assert sw.full_stripe.parity_write.disk == sw.parity_disk
            continue
        for g in sw.rmw_passes:
            assert g.parity_read.disk == sw.parity_disk
            assert g.parity_write.disk == sw.parity_disk
            # Parity I/O covers the union of modified intra ranges.
            lo = min(o.offset - lay.data_location(o.block).offset
                     for o in g.reads)
            span = g.parity_read.nbytes
            assert span >= max(o.nbytes for o in g.reads)
            assert g.parity_read.offset - lo >= 0
            assert g.xor_bytes == sum(o.nbytes for o in g.reads)


@given(arch=st.sampled_from(ARCHS), req=request_st, failed=failed_st)
@settings(max_examples=60, deadline=None)
def test_plans_are_pure_and_deterministic(arch, req, failed):
    plan1, _, _ = _plan_for(arch, req, failed)
    plan2, _, _ = _plan_for(arch, req, failed)
    assert plan1 == plan2

"""Hypothesis: full-stack invariants under random op sequences.

Drives whole clusters (every architecture) with arbitrary mixes of
block-aligned reads and writes and asserts cross-layer accounting
invariants — the test that catches interactions no unit test exercises.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import build_cluster
from repro.units import KiB
from tests.conftest import run_proc, small_config

BS = 32 * KiB

op_st = st.tuples(
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=3),  # client
    st.integers(min_value=0, max_value=63),  # block index
    st.integers(min_value=1, max_value=3),  # blocks
)

arch_st = st.sampled_from(["raid0", "raid5", "raid10", "chained",
                           "raidx", "nfs"])


@given(arch=arch_st, ops=st.lists(op_st, min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_accounting_invariants(arch, ops):
    cluster = build_cluster(small_config(n=4), architecture=arch)
    storage = cluster.storage

    def driver():
        events = []
        for op, client, block, nblocks in ops:
            events.append(
                storage.submit(client, op, block * BS, nblocks * BS)
            )
        yield cluster.env.all_of(events)
        yield from storage.drain()

    run_proc(cluster, driver())

    logical_r = sum(n * BS for op, _c, _b, n in ops if op == "read")
    logical_w = sum(n * BS for op, _c, _b, n in ops if op == "write")
    assert storage.bytes_read == logical_r
    assert storage.bytes_written == logical_w

    # Physical bytes written must cover the logical bytes (redundancy
    # can only add); reads may be served from caches only on NFS.
    disk_w = sum(d.stats.bytes_written for d in cluster.all_disks())
    assert disk_w >= logical_w
    # Nothing left in flight anywhere.
    assert all(d.queue_depth == 0 for d in cluster.all_disks())
    if hasattr(storage, "pending_background_flushes"):
        assert storage.pending_background_flushes == 0

    # Message accounting is internally consistent.
    stats = cluster.transport.stats
    assert stats.total_messages == sum(
        c for c, _b in stats.by_kind.values()
    )


@given(
    arch=st.sampled_from(["raid5", "raid10", "chained", "raidx"]),
    ops=st.lists(op_st, min_size=1, max_size=10),
    failed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_single_failure_never_loses_data(arch, ops, failed):
    """Any single disk failure: every read still completes."""
    cluster = build_cluster(small_config(n=4), architecture=arch)
    storage = cluster.storage

    def write_all():
        events = [
            storage.submit(c, "write", b * BS, n * BS)
            for _op, c, b, n in ops
        ]
        yield cluster.env.all_of(events)
        yield from storage.drain()

    run_proc(cluster, write_all())
    storage.fail_disk(failed)

    def read_all():
        events = [
            storage.submit(c, "read", b * BS, n * BS)
            for _op, c, b, n in ops
        ]
        yield cluster.env.all_of(events)

    run_proc(cluster, read_all())  # must not raise DataLossError

"""Hypothesis: kernel-level invariants (ordering, conservation)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store
from repro.sim.shared import BandwidthLink


@given(
    delays=st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_events_fire_in_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(waiter(env, d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    n_workers=st.integers(min_value=1, max_value=25),
)
@settings(max_examples=40, deadline=None)
def test_resource_never_oversubscribed(capacity, n_workers):
    env = Environment()
    res = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]

    def worker(env):
        with res.request() as req:
            yield req
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield env.timeout(1)
            active[0] -= 1

    for _ in range(n_workers):
        env.process(worker(env))
    env.run()
    assert peak[0] <= capacity
    assert active[0] == 0


@given(items=st.lists(st.integers(), max_size=30))
@settings(max_examples=40, deadline=None)
def test_store_conserves_items(items):
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            v = yield store.get()
            got.append(v)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == items


@given(
    sizes=st.lists(
        st.floats(min_value=0.1, max_value=1000, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    rate=st.floats(min_value=0.5, max_value=100, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_link_total_time_equals_work(sizes, rate):
    env = Environment()
    link = BandwidthLink(env, rate=rate)
    done = []

    def sender(env, size):
        yield link.transfer(size)
        done.append(env.now)

    for s in sizes:
        env.process(sender(env, s))
    env.run()
    import pytest

    assert max(done) == pytest.approx(sum(sizes) / rate, rel=1e-9)
    assert link.bytes_carried == pytest.approx(sum(sizes))


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_simulation_is_deterministic(seed):
    """Identical setups produce identical event traces."""

    def run_once():
        env = Environment()
        trace = []

        def worker(env, i):
            yield env.timeout((seed % 7 + i) * 0.1)
            trace.append((env.now, i))
            yield env.timeout(0.05 * i)
            trace.append((env.now, i))

        for i in range(5):
            env.process(worker(env, i))
        env.run()
        return trace

    assert run_once() == run_once()

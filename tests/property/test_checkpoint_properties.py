"""Hypothesis properties of checkpoint placement on RAID-x geometries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.placement import (
    local_image_region,
    region_blocks_for_disk_group,
)
from repro.raid import make_layout


@st.composite
def geometry(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    k = draw(st.integers(min_value=1, max_value=3))
    rows = draw(st.integers(min_value=16, max_value=48))
    return make_layout(
        "raidx",
        n_disks=n * k,
        block_size=1,
        disk_capacity=rows,
        stripe_width=n,
    )


@given(lay=geometry(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_local_image_region_invariant_all_nodes(lay, data):
    node = data.draw(st.integers(0, lay.n - 1))
    group = data.draw(st.integers(0, lay.k - 1))
    # A node's residue class holds ~data_rows blocks per disk group;
    # stay comfortably below that bound.
    upper = max(1, min(2 * (lay.n - 1), lay.data_rows // 2))
    want = data.draw(st.integers(1, upper))
    blocks = local_image_region(lay, node, want, disk_group=group)
    assert len(blocks) == want
    for b in blocks:
        mg = lay.mirror_group_of(b)
        assert mg.image_disk % lay.n == node
        assert lay.disk_group(mg.image_disk) == group


@given(lay=geometry())
@settings(max_examples=30, deadline=None)
def test_local_image_regions_partition_nodes(lay):
    """Distinct nodes' regions never share blocks."""
    want = lay.n - 1
    seen = set()
    for node in range(lay.n):
        blocks = set(local_image_region(lay, node, want, disk_group=0))
        assert not blocks & seen
        seen |= blocks


@given(lay=geometry(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_disk_group_region_confined(lay, data):
    group = data.draw(st.integers(0, lay.k - 1))
    want = data.draw(st.integers(1, 3 * lay.n))
    blocks = region_blocks_for_disk_group(lay, group, want)
    assert len(blocks) == want
    assert len(set(blocks)) == want
    for b in blocks:
        assert lay.disk_group(lay.data_location(b).disk) == group


@given(lay=geometry(), data=st.data())
@settings(max_examples=30, deadline=None)
def test_disk_group_region_stripes_fully(lay, data):
    group = data.draw(st.integers(0, lay.k - 1))
    blocks = region_blocks_for_disk_group(lay, group, 2 * lay.n)
    disks = {lay.data_location(b).disk for b in blocks}
    assert disks == set(range(group * lay.n, (group + 1) * lay.n))

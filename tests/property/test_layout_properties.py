"""Hypothesis properties of the RAID placement geometries."""

from hypothesis import assume, given, settings, strategies as st

from repro.raid import LAYOUTS, make_layout

# Geometry strategy: modest sizes keep enumeration cheap.
n_disks_st = st.integers(min_value=4, max_value=24).filter(
    lambda n: n % 2 == 0
)
rows_st = st.integers(min_value=4, max_value=40)


def build(name, n_disks, rows, stripe_width=None):
    return make_layout(
        name,
        n_disks=n_disks,
        block_size=4096,
        disk_capacity=rows * 4096,
        stripe_width=stripe_width,
    )


@st.composite
def raidx_geometry(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    k = draw(st.integers(min_value=1, max_value=4))
    rows = draw(st.integers(min_value=4, max_value=32))
    return build("raidx", n * k, rows, stripe_width=n)


@given(name=st.sampled_from(sorted(LAYOUTS)), n=n_disks_st, rows=rows_st)
@settings(max_examples=40, deadline=None)
def test_no_placement_collisions(name, n, rows):
    lay = build(name, n, rows)
    lay.verify_invariants(min(lay.data_blocks, 512))


@given(lay=raidx_geometry())
@settings(max_examples=40, deadline=None)
def test_raidx_orthogonality(lay):
    for b in range(min(lay.data_blocks, 400)):
        data = lay.data_location(b)
        image = lay.redundancy_locations(b)[0]
        assert image.disk != data.disk
        assert lay.disk_group(image.disk) == lay.disk_group(data.disk)
        assert image.offset >= lay.mirror_base


@given(lay=raidx_geometry())
@settings(max_examples=30, deadline=None)
def test_raidx_mirror_groups_partition_blocks(lay):
    seen = {}
    for b in range(min(lay.data_blocks, 300)):
        mg = lay.mirror_group_of(b)
        assert b in mg.blocks
        prior = seen.get(mg.group_id)
        if prior is not None:
            assert prior == mg.blocks
        seen[mg.group_id] = mg.blocks


@given(lay=raidx_geometry())
@settings(max_examples=30, deadline=None)
def test_raidx_stripe_images_at_most_two_disks(lay):
    stripes = min(lay.data_blocks // lay.n, 30)
    for s in range(stripes):
        assert 1 <= len(lay.stripe_image_disks(s)) <= 2


@given(
    lay=raidx_geometry(),
    failures=st.sets(st.integers(min_value=0, max_value=31), max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_raidx_tolerates_iff_one_per_group(lay, failures):
    failures = {f for f in failures if f < lay.n_disks}
    per_group = {}
    for f in failures:
        per_group[f // lay.n] = per_group.get(f // lay.n, 0) + 1
    expected = all(v <= 1 for v in per_group.values())
    assert lay.tolerates(failures) == expected


@given(name=st.sampled_from(sorted(LAYOUTS)), n=n_disks_st, rows=rows_st)
@settings(max_examples=40, deadline=None)
def test_data_location_bijective(name, n, rows):
    lay = build(name, n, rows)
    seen = set()
    for b in range(min(lay.data_blocks, 400)):
        p = lay.data_location(b)
        key = (p.disk, p.offset)
        assert key not in seen
        seen.add(key)


@given(name=st.sampled_from(sorted(LAYOUTS)), n=n_disks_st, rows=rows_st)
@settings(max_examples=40, deadline=None)
def test_stripe_of_consistent_with_stripe_blocks(name, n, rows):
    lay = build(name, n, rows)
    for b in range(min(lay.data_blocks, 200)):
        s = lay.stripe_of(b)
        assert b in lay.stripe_blocks(s)


@given(
    name=st.sampled_from(["raid10", "chained", "raidx"]),
    n=n_disks_st,
    rows=rows_st,
)
@settings(max_examples=40, deadline=None)
def test_single_failure_always_survivable_mirrored(name, n, rows):
    lay = build(name, n, rows)
    for d in range(lay.n_disks):
        assert lay.tolerates({d})


@given(
    name=st.sampled_from(sorted(LAYOUTS)),
    n=n_disks_st,
    rows=rows_st,
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_surviving_sources_exclude_failed(name, n, rows, data):
    lay = build(name, n, rows)
    # RAID-x on very small disks can have zero addressable blocks (the
    # image-row skew eats the whole mirror half).
    assume(lay.data_blocks > 0)
    failed = data.draw(
        st.sets(st.integers(0, lay.n_disks - 1), max_size=3)
    )
    b = data.draw(st.integers(0, min(lay.data_blocks, 200) - 1))
    for p in lay.surviving_read_sources(b, failed):
        assert p.disk not in failed

"""Monte-Carlo MTTDL vs the analytical closed forms."""

import numpy as np
import pytest

from repro.fault.montecarlo import MttdlEstimate, simulate_mttdl
from repro.fault.reliability import (
    mttdl_mirrored_pairs,
    mttdl_raid5,
    mttdl_raidx,
)
from repro.raid import make_layout

# Exaggerated failure rates keep the simulated horizons short.
MTTF, MTTR = 1000.0, 10.0


def lay(name, n=8, stripe_width=None):
    return make_layout(
        name,
        n_disks=n,
        block_size=1,
        disk_capacity=16,
        stripe_width=stripe_width,
    )


def test_raid5_simulation_matches_model():
    rng = np.random.default_rng(1)
    est = simulate_mttdl(lay("raid5"), MTTF, MTTR, runs=300, rng=rng)
    assert est.within(mttdl_raid5(8, MTTF, MTTR), factor=2.0)


def test_raid10_simulation_matches_model():
    rng = np.random.default_rng(2)
    est = simulate_mttdl(lay("raid10"), MTTF, MTTR, runs=300, rng=rng)
    assert est.within(mttdl_mirrored_pairs(8, MTTF, MTTR), factor=2.0)


def test_raidx_simulation_matches_model():
    rng = np.random.default_rng(3)
    est = simulate_mttdl(
        lay("raidx", stripe_width=4), MTTF, MTTR, runs=300, rng=rng
    )
    assert est.within(
        mttdl_raidx(8, MTTF, MTTR, stripe_width=4), factor=2.0
    )


def test_relative_ordering_survives_simulation():
    rng = np.random.default_rng(4)
    r10 = simulate_mttdl(lay("raid10"), MTTF, MTTR, runs=200, rng=rng)
    r5 = simulate_mttdl(lay("raid5"), MTTF, MTTR, runs=200, rng=rng)
    assert r10.mean_hours > r5.mean_hours


def test_raid0_dies_at_first_failure():
    rng = np.random.default_rng(5)
    est = simulate_mttdl(lay("raid0"), MTTF, MTTR, runs=200, rng=rng)
    # Minimum of 8 exponential clocks: MTTF/8.
    assert est.mean_hours == pytest.approx(MTTF / 8, rel=0.3)


def test_estimate_has_error_bar():
    est = simulate_mttdl(lay("raid5"), MTTF, MTTR, runs=50)
    assert est.runs == 50
    assert est.stderr_hours > 0


def test_validation():
    with pytest.raises(ValueError):
        simulate_mttdl(lay("raid5"), 0, 1)
    with pytest.raises(ValueError):
        simulate_mttdl(lay("raid5"), 1, 1, runs=0)
    est = MttdlEstimate(mean_hours=10, stderr_hours=1, runs=5)
    with pytest.raises(ValueError):
        est.within(0)

"""Destage-vs-fault interleaving: dirty data is never silently dropped.

The contract (DESIGN §6.17): when a disk dies mid-destage, a redundant
array's tolerant-write path marks-and-continues — the destage commits
against the survivors and no dirty block is lost — while an
unrecoverable failure reports each in-flight block lost **exactly
once**.  Either way, after ``drain`` every block that was ever dirtied
is accounted for: destaged or lost, never both, never neither.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, cache_enabled
from repro.cluster.cluster import build_cluster
from repro.fault import FailureEvent, FaultInjector
from repro.units import KiB
from tests.conftest import run_proc, small_config

BS = 32 * KiB

CFG = CacheConfig(capacity_blocks=128, destage_batch=8, track_blocks=True)

pytestmark = pytest.mark.skipif(
    not cache_enabled(), reason="REPRO_CACHE=0 disables the cache layer"
)


def cached_cluster(arch):
    return build_cluster(small_config(n=4), architecture=arch, cache=CFG)


def write_then_drain(cluster, blocks, failures=()):
    """Dirty ``blocks`` (full-block writes), then drain under the
    failure schedule; returns the client cache's stats."""
    if failures:
        FaultInjector(cluster, list(failures)).start()

    def p():
        for b in blocks:
            yield cluster.storage.submit(0, "write", b * BS, BS)
        yield from cluster.storage.drain()

    run_proc(cluster, p())
    return cluster.storage.engine.cache.caches[0].stats


def assert_exactly_once(stats, blocks):
    written = set(blocks)
    assert stats.destaged_blocks | stats.lost_blocks == written
    assert not (stats.destaged_blocks & stats.lost_blocks)
    assert stats.destaged == len(stats.destaged_blocks)
    assert stats.lost == len(stats.lost_blocks)


def test_tolerant_array_survives_mid_destage_failure():
    """RAID-x: one disk dies while the sweep is in flight; the
    tolerant-write path marks-and-continues and nothing is lost."""
    c = cached_cluster("raidx")
    blocks = list(range(12))
    stats = write_then_drain(
        c, blocks, failures=[FailureEvent(1e-4, disk=2)]
    )
    assert_exactly_once(stats, blocks)
    assert stats.lost == 0
    assert stats.destaged == len(blocks)
    assert 2 in c.storage.failed_disks


def test_unrecoverable_failure_reports_loss_once():
    """RAID-0 has no redundancy: blocks in a destage run that hits the
    dead disk are reported lost — once — and the rest still destage."""
    c = cached_cluster("raid0")
    blocks = list(range(12))
    stats = write_then_drain(
        c, blocks, failures=[FailureEvent(1e-4, disk=1)]
    )
    assert_exactly_once(stats, blocks)
    assert stats.lost > 0
    assert stats.destaged > 0


def test_drain_terminates_after_total_loss():
    """Even when every run fails, drain converges: lost blocks leave
    the dirty population instead of being retried forever."""
    c = cached_cluster("raid0")
    blocks = list(range(8))
    stats = write_then_drain(
        c, blocks,
        failures=[FailureEvent(1e-5, disk=d) for d in range(4)],
    )
    assert_exactly_once(stats, blocks)
    assert stats.destaged == 0
    assert stats.lost == len(blocks)


@settings(max_examples=12, deadline=None)
@given(
    blocks=st.sets(st.integers(min_value=0, max_value=40), min_size=1,
                   max_size=16),
    fail_disk=st.integers(min_value=0, max_value=3),
    fail_at=st.floats(min_value=1e-6, max_value=5e-3),
    arch=st.sampled_from(["raidx", "raid0", "raid5"]),
)
def test_every_dirty_block_accounted_exactly_once(
    blocks, fail_disk, fail_at, arch
):
    """The satellite property: whatever the architecture, write set and
    failure timing, every ever-dirtied block is destaged or reported
    lost, exactly once."""
    c = cached_cluster(arch)
    stats = write_then_drain(
        c, sorted(blocks),
        failures=[FailureEvent(fail_at, disk=fail_disk)],
    )
    assert_exactly_once(stats, sorted(blocks))

"""Fault injection and reliability models."""

import pytest

from repro.cluster.cluster import build_cluster
from repro.fault import (
    FailureEvent,
    FaultInjector,
    availability,
    mttdl_chained,
    mttdl_mirrored_pairs,
    mttdl_raid5,
    mttdl_raidx,
)
from repro.units import KiB
from tests.conftest import run_proc, small_config


def test_injector_applies_schedule():
    c = build_cluster(small_config(n=4), architecture="raidx")
    inj = FaultInjector(c, [FailureEvent(0.5, disk=2)])
    inj.start()

    def p():
        yield c.env.timeout(1.0)

    run_proc(c, p())
    assert c.storage.failed_disks == {2}
    assert c.disk(2).failed
    assert len(inj.log.applied) == 1
    assert inj.log.data_loss_at is None


def test_injector_repair_action():
    c = build_cluster(small_config(n=4), architecture="raidx")
    inj = FaultInjector(
        c,
        [FailureEvent(0.1, 1, "fail"), FailureEvent(0.2, 1, "repair")],
    )
    inj.start()

    def p():
        yield c.env.timeout(1.0)

    run_proc(c, p())
    assert not c.storage.failed_disks
    assert not c.disk(1).failed


def test_injector_detects_data_loss():
    c = build_cluster(small_config(n=4), architecture="raidx")
    inj = FaultInjector(
        c, [FailureEvent(0.1, 0), FailureEvent(0.2, 1)]
    )
    inj.start()

    def p():
        yield c.env.timeout(1.0)

    run_proc(c, p())
    assert inj.log.data_loss_at == pytest.approx(0.2)


def test_injector_validation():
    c = build_cluster(small_config(n=4), architecture="raidx")
    with pytest.raises(ValueError):
        FaultInjector(c, [FailureEvent(0.1, 99)])
    with pytest.raises(ValueError):
        FailureEvent(-1, 0).validate()
    with pytest.raises(ValueError):
        FailureEvent(1, 0, "explode").validate()


def test_injector_start_idempotent():
    c = build_cluster(small_config(n=4), architecture="raidx")
    inj = FaultInjector(c, [FailureEvent(0.1, 0)])
    inj.start()
    inj.start()

    def p():
        yield c.env.timeout(0.5)

    run_proc(c, p())
    assert len(inj.log.applied) == 1


def test_workload_survives_midrun_failure():
    from repro.workloads.parallel_io import ParallelIOWorkload

    c = build_cluster(small_config(n=4), architecture="raidx")
    inj = FaultInjector(c, [FailureEvent(0.001, disk=1)])
    inj.start()
    r = ParallelIOWorkload(c, 2, op="read", size=256 * KiB).run()
    assert r.elapsed > 0  # degraded but alive


def test_mttdl_orderings():
    mttf, mttr = 500_000.0, 24.0
    r5 = mttdl_raid5(12, mttf, mttr)
    r10 = mttdl_mirrored_pairs(12, mttf, mttr)
    ch = mttdl_chained(12, mttf, mttr)
    rx4 = mttdl_raidx(12, mttf, mttr, stripe_width=4)
    rx12 = mttdl_raidx(12, mttf, mttr, stripe_width=12)
    # Mirrored pairs safest; chained next; RAID-x between chained and
    # RAID-5 depending on stripe width (an all-wide RAID-x array matches
    # RAID-5's exposure); RAID-5 most exposed.
    assert r10 > ch > rx4 > rx12
    assert rx12 == pytest.approx(r5)
    # Narrower stripe groups improve RAID-x reliability.
    assert mttdl_raidx(12, mttf, mttr, 3) > mttdl_raidx(12, mttf, mttr, 6)


def test_mttdl_validation():
    with pytest.raises(ValueError):
        mttdl_raid5(1, 100, 1)
    with pytest.raises(ValueError):
        mttdl_raid5(4, 100, 200)
    with pytest.raises(ValueError):
        mttdl_mirrored_pairs(5, 100, 1)
    with pytest.raises(ValueError):
        mttdl_raidx(12, 100, 1, stripe_width=5)


def test_availability():
    assert availability(99.0, 1.0) == pytest.approx(0.99)
    with pytest.raises(ValueError):
        availability(0, 1)

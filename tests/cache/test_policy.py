"""Eviction policies: LRU ordering and ARC adaptation."""

import pytest

from repro.cache import ARCPolicy, BlockCache, LRUPolicy, make_policy


def test_make_policy_dispatch():
    assert isinstance(make_policy("lru", 4), LRUPolicy)
    assert isinstance(make_policy("ARC", 4), ARCPolicy)
    with pytest.raises(ValueError):
        make_policy("clock", 4)
    with pytest.raises(ValueError):
        make_policy("lru", 0)


def test_lru_victims_oldest_first():
    p = LRUPolicy(3)
    for b in (1, 2, 3):
        p.on_insert(b)
    p.on_hit(1)
    assert list(p.victims()) == [2, 3, 1]


def test_arc_promotes_rereferenced_blocks():
    p = ARCPolicy(4)
    for b in (1, 2, 3):
        p.on_insert(b)
    p.on_hit(2)  # t1 -> t2
    assert 2 in p._t2 and 2 not in p._t1
    # t1 exceeds p (0), so recency list is preferred for eviction.
    assert list(p.victims())[0] == 1


def test_arc_ghost_hit_adapts_target():
    p = ARCPolicy(4)
    p.on_insert(1)
    p.on_evict(1)  # 1 moves to the b1 ghost list
    assert 1 in p._b1
    p.on_insert(1)  # ghost hit: p grows, block resurfaces in t2
    assert p.p >= 1
    assert 1 in p._t2 and 1 not in p._b1


def test_arc_scan_resistance():
    """A one-shot scan must not displace the re-referenced working set."""
    cache = BlockCache(0, capacity_blocks=4, policy="arc")
    for b in (1, 2):
        cache.insert(b)
        cache.lookup(b)  # promote to t2
    for b in range(100, 110):  # scan of never-re-referenced blocks
        cache.insert(b)
    assert 1 in cache and 2 in cache


def test_arc_ghost_lists_bounded():
    p = ARCPolicy(4)
    for b in range(40):
        p.on_insert(b)
        p.on_evict(b)
    total = len(p._t1) + len(p._t2) + len(p._b1) + len(p._b2)
    assert total <= 2 * p.capacity_blocks


def test_cache_accepts_policy_instance():
    p = LRUPolicy(2)
    cache = BlockCache(0, capacity_blocks=2, policy=p)
    assert cache.policy is p

"""Read-cache LRU behaviour and the write-invalidate directory.

Migrated from ``tests/cluster/test_cache.py`` when the read-only
cluster cache was subsumed by :mod:`repro.cache` (PR 9): the Andrew
benchmark's consistency protocol — peers-only invalidation, writer
retains holdership — must survive the move unchanged.
"""

import pytest

from repro.cache import BlockCache, CacheDirectory


def test_lru_eviction_order():
    c = BlockCache(0, capacity_blocks=2)
    c.insert(1)
    c.insert(2)
    c.insert(3)  # evicts 1
    assert 1 not in c and 2 in c and 3 in c


def test_lookup_refreshes_recency():
    c = BlockCache(0, capacity_blocks=2)
    c.insert(1)
    c.insert(2)
    assert c.lookup(1)
    c.insert(3)  # evicts 2, not 1
    assert 1 in c and 2 not in c


def test_hit_miss_counters():
    c = BlockCache(0, capacity_blocks=4)
    assert not c.lookup(9)
    c.insert(9)
    assert c.lookup(9)
    assert c.hits == 1 and c.misses == 1
    assert c.hit_rate() == pytest.approx(0.5)


def test_invalidate():
    c = BlockCache(0, capacity_blocks=4)
    c.insert(7)
    assert c.invalidate(7)
    assert not c.invalidate(7)
    assert c.invalidations == 1


def test_insert_idempotent():
    c = BlockCache(0, capacity_blocks=2)
    c.insert(1)
    c.insert(1)
    assert len(c) == 1


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        BlockCache(0, capacity_blocks=0)


def test_directory_tracks_holders():
    caches = [BlockCache(i, 8) for i in range(3)]
    d = CacheDirectory(caches)
    d.note_cached(0, 5)
    d.note_cached(1, 5)
    assert d.lookup(0, 5) and d.lookup(1, 5)
    assert not d.lookup(2, 5)


def test_directory_invalidation_targets_peers_only():
    caches = [BlockCache(i, 8) for i in range(3)]
    d = CacheDirectory(caches)
    d.note_cached(0, 5)
    d.note_cached(1, 5)
    d.note_cached(2, 5)
    touched = d.invalidate_peers(writer=1, block=5)
    assert sorted(touched) == [0, 2]
    assert 5 in caches[1]
    assert 5 not in caches[0] and 5 not in caches[2]


def test_directory_invalidation_when_writer_not_holder():
    caches = [BlockCache(i, 8) for i in range(2)]
    d = CacheDirectory(caches)
    d.note_cached(0, 3)
    touched = d.invalidate_peers(writer=1, block=3)
    assert touched == [0]
    # Writer didn't cache it, so nobody holds it now.
    assert not d.lookup(0, 3)


def test_directory_invalidation_unknown_block():
    caches = [BlockCache(i, 8) for i in range(2)]
    d = CacheDirectory(caches)
    assert d.invalidate_peers(writer=0, block=42) == []


# -- write-back extensions of the same protocol ---------------------------


def test_invalidate_dirty_block_counts_superseded():
    """A peer's write supersedes this cache's dirty copy: the block is
    dropped (never destaged) and counted as an invalidation."""
    c = BlockCache(0, capacity_blocks=4)
    c.admit_write(5, full_block=True)
    assert c.dirty_count == 1
    assert c.invalidate(5)
    assert c.dirty_count == 0 and 5 not in c
    assert c.stats.destaged == 0 and c.stats.lost == 0


def test_note_resident_grants_holdership_without_insert():
    """The write path admits the block into the cache itself and then
    registers holdership; ``note_resident`` must not double-insert."""
    caches = [BlockCache(i, 8) for i in range(2)]
    d = CacheDirectory(caches)
    caches[0].admit_write(3, full_block=True)
    d.note_resident(0, 3)
    assert d.lookup(0, 3)
    assert caches[0].stats.fills == 0  # no second admission

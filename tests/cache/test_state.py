"""The per-block clean/dirty/destaging state machine and RMW absorption."""

import pytest

from repro.cache import BlockCache, WriteAdmission
from repro.cache.block import BlockState, CacheStateError


def cache(**kw):
    kw.setdefault("capacity_blocks", 8)
    return BlockCache(0, **kw)


def test_full_write_of_absent_block_dirties_without_fill():
    c = cache()
    assert c.admit_write(5, full_block=True) is WriteAdmission.DIRTIED
    assert c.state_of(5) is BlockState.DIRTY
    # Pre-write content unknown: no RMW absorption for this block.
    assert not c.old_known(5)


def test_partial_write_of_absent_block_needs_fill():
    c = cache()
    assert c.admit_write(5, full_block=False) is WriteAdmission.NEEDS_FILL
    assert 5 not in c
    c.fill(5)
    assert c.admit_write(5, full_block=False) is WriteAdmission.DIRTIED
    # Filled-then-dirtied: the cache holds the pre-write bytes.
    assert c.old_known(5)


def test_write_to_clean_resident_block_enables_absorption():
    c = cache()
    c.insert(3)
    assert c.admit_write(3, full_block=True) is WriteAdmission.DIRTIED
    assert c.old_known(3)


def test_rewrite_of_dirty_block_absorbed():
    c = cache()
    c.admit_write(4, full_block=True)
    assert c.admit_write(4, full_block=False) is WriteAdmission.ABSORBED
    assert c.stats.write_absorbed == 1
    assert c.dirty_count == 1  # still one pinned block


def test_destage_lifecycle_clean_completion():
    c = cache()
    c.admit_write(1, full_block=True)
    c.begin_destage([1])
    assert c.state_of(1) is BlockState.DESTAGING
    assert c.dirty_blocks() == []  # in-flight blocks are not re-selected
    c.complete_destage([1])
    assert c.state_of(1) is BlockState.CLEAN
    assert c.dirty_count == 0
    assert c.stats.destaged == 1


def test_begin_destage_requires_dirty():
    c = cache()
    c.insert(1)
    with pytest.raises(CacheStateError):
        c.begin_destage([1])


def test_write_racing_destage_redirties_at_completion():
    c = cache()
    c.fill(2)
    c.admit_write(2, full_block=True)
    assert c.old_known(2)
    c.begin_destage([2])
    # A foreground write lands while the destage is in flight.
    assert c.admit_write(2, full_block=True) is WriteAdmission.ABSORBED
    # The in-flight destage carries stale bytes: absorption is off.
    assert not c.old_known(2)
    c.complete_destage([2])
    assert c.state_of(2) is BlockState.DIRTY  # newer content still pending
    assert c.stats.destaged == 0  # the stale write-back counts nothing


def test_destage_lost_reports_exactly_once():
    c = cache(track_blocks=True)
    c.admit_write(1, full_block=True)
    c.admit_write(2, full_block=True)
    c.begin_destage([1, 2])
    c.destage_lost([1, 2])
    assert c.stats.lost == 2
    assert c.stats.lost_blocks == {1, 2}
    assert 1 not in c and 2 not in c
    assert c.dirty_count == 0
    # A second report is a no-op — the blocks are gone.
    c.destage_lost([1, 2])
    assert c.stats.lost == 2


def test_destage_lost_spares_redirtied_block():
    c = cache()
    c.admit_write(1, full_block=True)
    c.begin_destage([1])
    c.admit_write(1, full_block=True)  # newer content arrives
    c.destage_lost([1])
    # Only the stale in-flight copy was lost; the new write is intact.
    assert c.stats.lost == 0
    assert c.state_of(1) is BlockState.DIRTY


def test_eviction_never_touches_dirty_blocks():
    c = BlockCache(0, capacity_blocks=2)
    c.admit_write(1, full_block=True)
    c.insert(2)
    c.insert(3)  # must evict clean 2, not dirty 1
    assert 1 in c and 3 in c and 2 not in c


def test_all_dirty_cache_overcommits_briefly():
    c = BlockCache(0, capacity_blocks=2)
    c.admit_write(1, full_block=True)
    c.admit_write(2, full_block=True)
    c.admit_write(3, full_block=True)  # nothing clean to evict
    assert len(c) == 3
    assert c.stats.dirty_hw == 3


def test_dirty_high_water_tracks_peak():
    c = cache()
    for b in range(4):
        c.admit_write(b, full_block=True)
    c.begin_destage([0, 1, 2, 3])
    c.complete_destage([0, 1, 2, 3])
    assert c.dirty_count == 0
    assert c.stats.dirty_hw == 4


def test_invalidation_of_destaging_block_superseded():
    c = cache()
    c.admit_write(7, full_block=True)
    c.begin_destage([7])
    assert c.invalidate(7)
    # The completion finds nothing to do: the peer's write won.
    c.complete_destage([7])
    assert 7 not in c
    assert c.stats.destaged == 0 and c.stats.lost == 0

"""Destage policies: triggers, run coalescing, mirror-group cuts."""

import pytest

from repro.cache import (
    BlockCache,
    CacheConfig,
    IdleDestage,
    MirrorCoalescingDestage,
    ThresholdDestage,
    coalesce_runs,
    make_destage_policy,
)


def dirty_cache(blocks):
    c = BlockCache(0, capacity_blocks=64)
    for b in blocks:
        c.admit_write(b, full_block=True)
    return c


def test_coalesce_contiguous_runs():
    runs = coalesce_runs([1, 2, 3, 7, 8, 20], max_blocks=16)
    assert [(r.start_block, r.n_blocks) for r in runs] == [
        (1, 3), (7, 2), (20, 1),
    ]


def test_coalesce_respects_max_blocks():
    runs = coalesce_runs(list(range(10)), max_blocks=4)
    assert [r.n_blocks for r in runs] == [4, 4, 2]


def test_coalesce_cuts_on_group_boundary():
    runs = coalesce_runs([2, 3, 4, 5], max_blocks=16, boundary=lambda b: b // 4)
    assert [tuple(r.blocks) for r in runs] == [(2, 3), (4, 5)]


def test_coalesce_rejects_nonpositive_max():
    with pytest.raises(ValueError):
        coalesce_runs([1], max_blocks=0)


def test_threshold_policy_triggers_on_pressure():
    p = ThresholdDestage(threshold_blocks=4, batch_blocks=8)
    c = dirty_cache([1, 2, 3])
    assert not p.should_destage(c, idle=True)
    c.admit_write(4, full_block=True)
    assert p.should_destage(c, idle=False)


def test_idle_policy_destages_any_dirt_when_idle():
    p = IdleDestage(threshold_blocks=100, batch_blocks=8)
    c = dirty_cache([1])
    assert p.should_destage(c, idle=True)
    assert not p.should_destage(c, idle=False)  # below threshold backstop


def test_select_batches_oldest_runs():
    p = ThresholdDestage(threshold_blocks=1, batch_blocks=4)
    c = dirty_cache([10, 11, 12, 13, 14, 15])
    runs = p.select(c)
    assert [tuple(r.blocks) for r in runs] == [(10, 11, 12, 13)]


def test_mirror_policy_never_crosses_groups():
    p = MirrorCoalescingDestage(
        threshold_blocks=1, batch_blocks=16, group_of=lambda b: b // 3
    )
    c = dirty_cache([0, 1, 2, 3, 4, 5])
    runs = p.select(c)
    assert [tuple(r.blocks) for r in runs] == [(0, 1, 2), (3, 4, 5)]


def test_make_destage_policy_dispatch():
    assert isinstance(
        make_destage_policy(CacheConfig(destage="threshold")),
        ThresholdDestage,
    )
    assert isinstance(
        make_destage_policy(CacheConfig(destage="idle")), IdleDestage
    )
    p = make_destage_policy(
        CacheConfig(destage="mirror"), group_of=lambda b: b
    )
    assert isinstance(p, MirrorCoalescingDestage)
    with pytest.raises(ValueError):
        make_destage_policy(CacheConfig(destage="mirror"))


def test_config_validation():
    with pytest.raises(Exception):
        CacheConfig(mode="writearound")
    with pytest.raises(Exception):
        CacheConfig(policy="clock")
    with pytest.raises(Exception):
        CacheConfig(destage="eager")
    with pytest.raises(Exception):
        CacheConfig(capacity_blocks=0)
    cfg = CacheConfig(capacity_blocks=100, dirty_fraction=0.5)
    assert cfg.threshold_blocks == 50
    assert cfg.writeback


def test_kill_switch(monkeypatch):
    from repro.cache import cache_enabled

    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert cache_enabled()
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert not cache_enabled()
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert not cache_enabled()
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert cache_enabled()

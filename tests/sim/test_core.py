"""Environment scheduling and Process semantics."""

import pytest

from repro.sim import Environment, Interrupt
from repro.sim.core import SimulationError


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0
    done = []

    def p(env):
        yield env.timeout(1)
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done == [11.0]


def test_run_until_time(env):
    ticks = []

    def p(env):
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(p(env))
    env.run(until=3.5)
    assert ticks == [1, 2, 3]
    assert env.now == 3.5


def test_run_until_past_time_rejected(env):
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_until_event_returns_value(env):
    def p(env):
        yield env.timeout(2)
        return "answer"

    proc = env.process(p(env))
    assert env.run(until=proc) == "answer"
    assert env.now == 2


def test_run_until_never_triggering_event_raises(env):
    ev = env.event()  # nothing will trigger it

    def p(env):
        yield env.timeout(1)

    env.process(p(env))
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_run_until_already_processed_event(env):
    ev = env.event()
    ev.succeed("v")
    env.run()
    assert env.run(until=ev) == "v"


def test_process_rejects_non_generator(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_return_value_via_yield(env):
    def child(env):
        yield env.timeout(1)
        return 99

    got = []

    def parent(env):
        v = yield env.process(child(env))
        got.append(v)

    env.process(parent(env))
    env.run()
    assert got == [99]


def test_yield_non_event_fails_process(env):
    def bad(env):
        yield "not an event"

    proc = env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()
    assert not proc.ok
    assert isinstance(proc.value, TypeError)


def test_numeric_yield_sleeps(env):
    """``yield dt`` is the allocation-free form of env.timeout(dt)."""
    ticks = []

    def p(env):
        yield 1.5
        ticks.append(env.now)
        yield 2  # ints sleep too
        ticks.append(env.now)
        yield 0.0  # zero-delay resumes at the same time
        ticks.append(env.now)

    env.process(p(env))
    env.run()
    assert ticks == [1.5, 3.5, 3.5]


def test_negative_numeric_yield_raises_in_process(env):
    caught = []

    def p(env):
        try:
            yield -1.0
        except ValueError as e:
            caught.append(str(e))

    env.process(p(env))
    env.run()
    assert caught and "negative timeout" in caught[0]


def test_numeric_yield_interleaves_with_timeouts(env):
    order = []

    def sleeper(env, label, dt, numeric):
        for _ in range(3):
            if numeric:
                yield dt
            else:
                yield env.timeout(dt)
            order.append((label, env.now))

    env.process(sleeper(env, "n", 1.0, True))
    env.process(sleeper(env, "t", 1.0, False))
    env.run()
    # Both forms advance the clock identically, FIFO order preserved.
    assert order == [
        ("n", 1.0), ("t", 1.0),
        ("n", 2.0), ("t", 2.0),
        ("n", 3.0), ("t", 3.0),
    ]


def test_interrupt_during_numeric_sleep(env):
    """Interrupting a numeric sleep must not corrupt the reusable
    sleep event (regression guard for the pooled fast path)."""
    log = []

    def sleeper(env):
        try:
            yield 10.0
        except Interrupt as i:
            log.append(("interrupted", env.now, i.cause))
        yield 1.0
        log.append(("slept", env.now))
        yield 1.0
        log.append(("slept", env.now))

    def poker(env, victim):
        yield 2.0
        victim.interrupt("poke")

    victim = env.process(sleeper(env))
    env.process(poker(env, victim))
    env.run()
    assert log == [
        ("interrupted", 2.0, "poke"),
        ("slept", 3.0),
        ("slept", 4.0),
    ]


def test_exception_propagates_to_waiter(env):
    def bad(env):
        yield env.timeout(1)
        raise KeyError("lost")

    caught = []

    def parent(env):
        try:
            yield env.process(bad(env))
        except KeyError:
            caught.append(env.now)

    env.process(parent(env))
    env.run()
    assert caught == [1]


def test_unhandled_process_exception_crashes_run(env):
    def bad(env):
        yield env.timeout(1)
        raise KeyError("lost")

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_delivers_cause(env):
    causes = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            causes.append((env.now, i.cause))

    def attacker(env, v):
        yield env.timeout(2)
        v.interrupt("stop it")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert causes == [(2, "stop it")]


def test_interrupt_terminated_process_rejected(env):
    def quick(env):
        yield env.timeout(1)

    v = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        v.interrupt()


def test_process_cannot_interrupt_itself(env):
    def selfish(env):
        me = env.active_process
        me.interrupt()
        yield env.timeout(1)

    env.process(selfish(env))
    with pytest.raises(SimulationError):
        env.run()


def test_active_process_tracking(env):
    seen = []

    def p(env):
        seen.append(env.active_process is proc)
        yield env.timeout(1)

    proc = env.process(p(env))
    env.run()
    assert seen == [True]
    assert env.active_process is None


def test_deterministic_tie_breaking(env):
    order = []

    def p(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in "abcd":
        env.process(p(env, tag))
    env.run()
    assert order == list("abcd")


def test_peek_and_len(env):
    assert env.peek() == float("inf")
    env.timeout(3)
    env.timeout(1)
    assert env.peek() == 1
    assert len(env) == 2


def test_is_alive_transitions(env):
    def p(env):
        yield env.timeout(1)

    proc = env.process(p(env))
    assert proc.is_alive
    env.run()
    assert not proc.is_alive
    assert proc.ok

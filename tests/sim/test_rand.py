"""Deterministic named random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(seed=7).stream("disk")
    b = RandomStreams(seed=7).stream("disk")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    rs = RandomStreams(seed=7)
    xs = [rs.stream("net").random() for _ in range(5)]
    ys = [rs.stream("disk").random() for _ in range(5)]
    assert xs != ys


def test_creation_order_does_not_matter():
    rs1 = RandomStreams(seed=3)
    rs1.stream("a")
    v1 = rs1.stream("b").random()
    rs2 = RandomStreams(seed=3)
    v2 = rs2.stream("b").random()  # never touched "a"
    assert v1 == v2


def test_stream_is_cached():
    rs = RandomStreams()
    assert rs.stream("x") is rs.stream("x")


def test_helpers_draw_in_range():
    rs = RandomStreams(seed=1)
    for _ in range(100):
        u = rs.uniform("u", 2.0, 3.0)
        assert 2.0 <= u < 3.0
        n = rs.integers("i", 5, 10)
        assert 5 <= n < 10
    assert rs.exponential("e", mean=2.0) > 0
    assert rs.choice("c", ["a", "b"]) in ("a", "b")

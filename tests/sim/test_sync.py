"""Barrier, CountdownLatch, and Mutex."""

import pytest

from repro.sim import Barrier, CountdownLatch, Mutex


def test_barrier_releases_all_together(env):
    b = Barrier(env, 3)
    out = []

    def p(env, i):
        yield env.timeout(i)
        yield b.wait()
        out.append((env.now, i))

    for i in range(3):
        env.process(p(env, i))
    env.run()
    assert [t for t, _ in out] == [2, 2, 2]


def test_barrier_is_cyclic(env):
    b = Barrier(env, 2)
    gens = []

    def p(env):
        g1 = yield b.wait()
        g2 = yield b.wait()
        gens.append((g1, g2))

    env.process(p(env))
    env.process(p(env))
    env.run()
    assert gens == [(1, 2), (1, 2)]
    assert b.generation == 2


def test_barrier_n_waiting(env):
    b = Barrier(env, 3)

    def p(env):
        yield b.wait()

    env.process(p(env))
    env.process(p(env))
    env.run()
    assert b.n_waiting == 2


def test_barrier_validation(env):
    with pytest.raises(ValueError):
        Barrier(env, 0)


def test_latch_fires_at_zero(env):
    latch = CountdownLatch(env, 2)
    done = []

    def waiter(env):
        yield latch.wait()
        done.append(env.now)

    def worker(env, d):
        yield env.timeout(d)
        latch.count_down()

    env.process(waiter(env))
    env.process(worker(env, 1))
    env.process(worker(env, 4))
    env.run()
    assert done == [4]
    assert latch.remaining == 0


def test_latch_wait_after_fired(env):
    latch = CountdownLatch(env, 1)
    latch.count_down()
    env.run()
    done = []

    def waiter(env):
        yield latch.wait()
        done.append(env.now)

    env.process(waiter(env))
    env.run()
    assert done == [0]


def test_latch_overflow_rejected(env):
    latch = CountdownLatch(env, 1)
    latch.count_down()
    with pytest.raises(RuntimeError):
        latch.count_down()


def test_mutex_mutual_exclusion(env):
    m = Mutex(env)
    inside = []

    def p(env, i):
        req = m.acquire(owner=i)
        yield req
        inside.append(("in", i, env.now))
        yield env.timeout(1)
        inside.append(("out", i, env.now))
        m.release(req)

    env.process(p(env, 0))
    env.process(p(env, 1))
    env.run()
    assert inside == [
        ("in", 0, 0),
        ("out", 0, 1),
        ("in", 1, 1),
        ("out", 1, 2),
    ]


def test_mutex_holder_tracking(env):
    m = Mutex(env)
    snapshots = []

    def p(env):
        req = m.acquire(owner="me")
        yield req
        snapshots.append((m.locked, m.holder))
        m.release(req)
        snapshots.append((m.locked, m.holder))

    env.process(p(env))
    env.run()
    assert snapshots == [(True, "me"), (False, None)]

"""Resource, PriorityResource, Container, and Store behaviour."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


def test_resource_capacity_enforced(env):
    res = Resource(env, capacity=2)
    log = []

    def worker(env, i):
        with res.request() as req:
            yield req
            log.append(("start", i, env.now))
            yield env.timeout(1)

    for i in range(4):
        env.process(worker(env, i))
    env.run()
    starts = {i: t for _, i, t in log}
    assert starts[0] == 0 and starts[1] == 0
    assert starts[2] == 1 and starts[3] == 1


def test_resource_fifo_order(env):
    res = Resource(env, capacity=1)
    order = []

    def worker(env, i):
        with res.request() as req:
            yield req
            order.append(i)
            yield env.timeout(1)

    for i in range(5):
        env.process(worker(env, i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_without_hold_rejected(env):
    res = Resource(env)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_interrupted_waiter_releases_cleanly(env):
    """``with res.request()`` must not corrupt the resource when the
    waiting process is interrupted before its grant."""
    from repro.sim import Interrupt

    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def impatient(env):
        try:
            with res.request() as req:
                yield req
                order.append("granted")
        except Interrupt:
            order.append("interrupted")

    def third(env):
        with res.request() as req:
            yield req
            order.append(("third", env.now))

    env.process(holder(env))
    victim = env.process(impatient(env))

    def attacker(env):
        yield env.timeout(1)
        victim.interrupt()
        env.process(third(env))

    env.process(attacker(env))
    env.run()
    # The interrupted waiter left the queue; the third process got the
    # slot as soon as the holder released it.
    assert order == ["interrupted", ("third", 5)]
    assert res.count == 0


def test_release_of_already_released_request_still_errors(env):
    res = Resource(env)
    req = res.request()
    env.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_request_cancel_leaves_queue(env):
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    second.cancel()
    res.release(first)
    assert not second.triggered
    assert res.count == 0


def test_priority_resource_serves_urgent_first(env):
    res = PriorityResource(env, capacity=1)
    order = []

    def worker(env, name, prio, delay):
        yield env.timeout(delay)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        yield env.timeout(10)
        res.release(req)

    env.process(worker(env, "holder", 0, 0))
    env.process(worker(env, "low", 5, 1))
    env.process(worker(env, "high", 1, 2))
    env.run()
    assert order == ["holder", "high", "low"]


def test_priority_ties_are_fifo(env):
    res = PriorityResource(env, capacity=1)
    order = []

    def worker(env, name):
        req = res.request(priority=3)
        yield req
        order.append(name)
        yield env.timeout(1)
        res.release(req)

    for n in ("a", "b", "c"):
        env.process(worker(env, n))
    env.run()
    assert order == ["a", "b", "c"]


def test_container_blocks_until_available(env):
    c = Container(env, capacity=10, init=0)
    times = []

    def consumer(env):
        yield c.get(5)
        times.append(env.now)

    def producer(env):
        yield env.timeout(2)
        yield c.put(5)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [2]
    assert c.level == 0


def test_container_put_blocks_at_capacity(env):
    c = Container(env, capacity=10, init=10)
    done = []

    def producer(env):
        yield c.put(3)
        done.append(env.now)

    def consumer(env):
        yield env.timeout(4)
        yield c.get(3)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert done == [4]


def test_container_validation(env):
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    c = Container(env, capacity=5)
    with pytest.raises(ValueError):
        c.put(0)
    with pytest.raises(ValueError):
        c.get(-1)


def test_store_fifo(env):
    s = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield s.get()
            got.append(item)

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            yield s.put(i)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [0, 1, 2]


def test_store_filter_get(env):
    s = Store(env)
    got = []

    def consumer(env):
        item = yield s.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer(env):
        for i in (1, 3, 4, 5):
            yield s.put(i)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [4]
    assert s.items == [1, 3, 5]


def test_store_capacity_blocks_put(env):
    s = Store(env, capacity=1)
    done = []

    def producer(env):
        yield s.put("a")
        yield s.put("b")
        done.append(env.now)

    def consumer(env):
        yield env.timeout(5)
        yield s.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert done == [5]


def test_store_len(env):
    s = Store(env)
    s.put(1)
    s.put(2)
    env.run()
    assert len(s) == 2

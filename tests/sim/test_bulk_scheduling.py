"""schedule_many / process_many / Recurring: bulk paths are order-exact.

The bulk insertion APIs trade N heap sifts for one heapify; pop order
depends only on the (time, key) totals, so results must be identical
to per-event scheduling.  Recurring is the callback-server primitive
behind the disk fast-forward: firings advance the clock exactly like a
chain of numeric sleeps, on both the inlined run loop and the generic
step() path.
"""

import pytest

from repro.sim.core import Environment, Process, Recurring
from repro.sim.events import _URGENT


def test_schedule_many_matches_individual_schedules():
    def run(bulk):
        env = Environment()
        order = []
        events = []
        for i in range(50):
            ev = env.event()
            ev.callbacks.append(lambda e, i=i: order.append(i))
            ev._ok = True
            ev._value = None
            events.append(ev)
        if bulk:
            env.schedule_many(events, delay=1.0)
        else:
            for ev in events:
                env.schedule(ev, delay=1.0)
        env.run()
        return order

    assert run(bulk=True) == run(bulk=False) == list(range(50))


def test_schedule_many_small_batch_uses_push_path():
    env = Environment()
    # Pre-load a big queue so one small batch takes the per-push arm.
    for _ in range(512):
        env.timeout(5.0)
    seen = []
    ev = env.event()
    ev.callbacks.append(lambda e: seen.append(env.now))
    ev._ok = True
    ev._value = None
    assert env.schedule_many([ev], delay=1.0) == 1
    env.run(until=2.0)
    assert seen == [1.0]


def test_schedule_many_empty_batch():
    env = Environment()
    assert env.schedule_many([]) == 0
    assert len(env) == 0


def test_schedule_many_urgent_priority_sorts_first():
    env = Environment()
    order = []

    def tag(label):
        ev = env.event()
        ev.callbacks.append(lambda e: order.append(label))
        ev._ok = True
        ev._value = None
        return ev

    env.schedule(tag("normal"))
    env.schedule_many([tag("urgent1"), tag("urgent2")], priority=_URGENT)
    env.run()
    assert order == ["urgent1", "urgent2", "normal"]


def test_process_many_matches_individual_processes():
    def run(bulk):
        env = Environment()
        order = []

        def worker(i):
            order.append(("start", i, env.now))
            yield 0.5 * (i + 1)
            order.append(("done", i, env.now))

        gens = [worker(i) for i in range(20)]
        if bulk:
            procs = env.process_many(gens)
        else:
            procs = [env.process(g) for g in gens]
        env.run()
        assert all(p.processed for p in procs)
        return order

    assert run(bulk=True) == run(bulk=False)


def test_process_many_results_waitable():
    env = Environment()

    def worker(i):
        yield float(i)
        return i * 10

    def collector():
        procs = env.process_many(worker(i) for i in range(5))
        got = yield env.all_of(procs)
        return [got[p] for p in procs]

    assert env.run(env.process(collector())) == [0, 10, 20, 30, 40]


def test_process_many_empty():
    env = Environment()
    assert env.process_many([]) == []


def test_process_many_rejects_non_generators():
    env = Environment()
    with pytest.raises(TypeError):
        env.process_many([42])


def test_defer_init_keyword_only():
    env = Environment()

    def g():
        yield 1.0

    p = Process(env, g(), defer_init=True)
    assert len(env) == 0  # nothing queued until schedule_many
    env.schedule_many([p._target], priority=_URGENT)
    env.run()
    assert p.processed


def test_recurring_fires_and_rearms():
    env = Environment()
    fired = []

    def fire(now):
        fired.append(now)
        return now + 2.0 if len(fired) < 3 else None

    env.schedule(Recurring(env, fire), delay=1.0)
    env.run()
    assert fired == [1.0, 3.0, 5.0]


def test_recurring_interleaves_with_processes():
    env = Environment()
    log = []

    def fire(now):
        log.append(("r", now))
        return now + 1.0 if now < 3.0 else None

    def proc():
        for _ in range(3):
            yield 1.0
            log.append(("p", env.now))

    # Marker armed before the process at each shared instant, so its
    # earlier sequence key fires first.
    env.schedule(Recurring(env, fire), delay=1.0)
    env.process(proc())
    env.run()
    assert log == [
        ("r", 1.0), ("p", 1.0),
        ("r", 2.0), ("p", 2.0),
        ("r", 3.0), ("p", 3.0),
    ]


def test_recurring_step_path_matches_run_loop():
    def drive(use_step):
        env = Environment()
        fired = []

        def fire(now):
            fired.append(now)
            return now + 1.5 if len(fired) < 4 else None

        env.schedule(Recurring(env, fire), delay=0.5)
        if use_step:
            from repro.sim.core import EmptySchedule

            while True:
                try:
                    env.step()
                except EmptySchedule:
                    break
        else:
            env.run()
        return fired

    assert drive(True) == drive(False) == [0.5, 2.0, 3.5, 5.0]


def test_recurring_can_be_rearmed_after_stopping():
    env = Environment()
    fired = []

    def fire(now):
        fired.append(now)
        return None  # stop immediately each time

    marker = Recurring(env, fire)
    env.schedule(marker, delay=1.0)
    env.run()
    env.schedule(marker, delay=1.0)
    env.run()
    assert fired == [1.0, 2.0]

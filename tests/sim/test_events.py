"""Event lifecycle, composition, and failure semantics."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Timeout
from repro.sim.events import ConditionValue


def test_event_starts_pending(env):
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_succeed_carries_value(env):
    ev = env.event()
    ev.succeed(42)
    assert ev.triggered and ev.ok and ev.value == 42


def test_double_trigger_rejected(env):
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_fail_requires_exception_instance(env):
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_failure_crashes_run(env):
    ev = env.event()
    ev.fail(ValueError("boom"))
    from repro.sim.core import SimulationError

    with pytest.raises(SimulationError):
        env.run()


def test_defused_failure_is_silent(env):
    ev = env.event()
    ev.fail(ValueError("boom"))
    ev.defused()
    env.run()  # no raise


def test_timeout_negative_delay_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_fires_at_delay(env):
    seen = []

    def p(env):
        yield env.timeout(2.5, value="hi")
        seen.append(env.now)

    env.process(p(env))
    env.run()
    assert seen == [2.5]


def test_timeout_value_delivered(env):
    got = []

    def p(env):
        v = yield env.timeout(1, value="payload")
        got.append(v)

    env.process(p(env))
    env.run()
    assert got == ["payload"]


def test_all_of_waits_for_every_event(env):
    order = []

    def p(env):
        t1, t2 = env.timeout(1), env.timeout(3)
        yield env.all_of([t1, t2])
        order.append(env.now)

    env.process(p(env))
    env.run()
    assert order == [3]


def test_any_of_fires_on_first(env):
    order = []

    def p(env):
        yield env.any_of([env.timeout(5), env.timeout(1)])
        order.append(env.now)

    env.process(p(env))
    env.run()
    assert order == [1]


def test_all_of_empty_triggers_immediately(env):
    done = []

    def p(env):
        v = yield env.all_of([])
        done.append(v)

    env.process(p(env))
    env.run()
    assert len(done) == 1 and isinstance(done[0], ConditionValue)


def test_condition_value_collects_events(env):
    results = {}

    def p(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(2, value="b")
        v = yield t1 & t2
        results["v"] = v
        results["t1"] = v[t1]

    env.process(p(env))
    env.run()
    assert results["t1"] == "a"
    assert len(results["v"]) == 2


def test_or_operator(env):
    hit = []

    def p(env):
        v = yield env.timeout(1, "fast") | env.timeout(9, "slow")
        hit.append(len(v))

    env.process(p(env))
    env.run()
    assert hit == [1]


def test_condition_propagates_failure(env):
    caught = []

    def failer(env):
        yield env.timeout(1)
        raise RuntimeError("inner")

    def p(env):
        try:
            yield env.all_of([env.timeout(5), env.process(failer(env))])
        except RuntimeError as e:
            caught.append(str(e))

    env.process(p(env))
    env.run()
    assert caught == ["inner"]


def test_condition_rejects_cross_environment_events(env):
    other = Environment()
    t_other = other.timeout(1)
    with pytest.raises(ValueError):
        AllOf(env, [env.timeout(1), t_other])


def test_condition_with_pre_processed_event(env):
    ev = env.event()
    ev.succeed("x")
    env.run()  # process it
    assert ev.processed

    got = []

    def p(env):
        v = yield env.all_of([ev, env.timeout(1)])
        got.append(env.now)

    env.process(p(env))
    env.run()
    assert got == [1]

"""BandwidthLink and SharedChannel timing semantics."""

import pytest

from repro.sim import BandwidthLink, SharedChannel


def test_link_serializes_transfers(env):
    link = BandwidthLink(env, rate=100.0)
    done = {}

    def t(env, i):
        yield link.transfer(100)
        done[i] = env.now

    env.process(t(env, 0))
    env.process(t(env, 1))
    env.run()
    assert done[0] == pytest.approx(1.0)
    assert done[1] == pytest.approx(2.0)


def test_link_latency_added_per_transfer(env):
    link = BandwidthLink(env, rate=100.0, latency=0.25)
    done = []

    def t(env):
        yield link.transfer(100)
        done.append(env.now)

    env.process(t(env))
    env.run()
    assert done == [pytest.approx(1.25)]


def test_link_zero_bytes_costs_latency_only(env):
    link = BandwidthLink(env, rate=100.0, latency=0.5)
    done = []

    def t(env):
        yield link.transfer(0)
        done.append(env.now)

    env.process(t(env))
    env.run()
    assert done == [pytest.approx(0.5)]


def test_link_validation(env):
    with pytest.raises(ValueError):
        BandwidthLink(env, rate=0)
    with pytest.raises(ValueError):
        BandwidthLink(env, rate=1, latency=-1)
    link = BandwidthLink(env, rate=1)
    with pytest.raises(ValueError):
        link.transfer(-5)


def test_link_utilization_accounting(env):
    link = BandwidthLink(env, rate=100.0)

    def t(env):
        yield link.transfer(100)
        yield env.timeout(1)  # idle second

    env.process(t(env))
    env.run()
    assert link.utilization() == pytest.approx(0.5)
    assert link.bytes_carried == 100


def test_link_stretch_extends_duration(env):
    link = BandwidthLink(env, rate=100.0)
    done = []

    def t(env):
        yield link.transfer(100, stretch=0.5)
        done.append(env.now)

    env.process(t(env))
    env.run()
    assert done == [pytest.approx(1.5)]
    assert link.congestion_delay == pytest.approx(0.5)


def test_link_queue_congestion_model(env):
    # threshold 0: every queued transfer beyond the first stretches.
    link = BandwidthLink(
        env, rate=100.0, congestion_threshold=0, congestion_penalty=0.5
    )
    done = {}

    def t(env, i):
        yield link.transfer(100)
        done[i] = env.now

    env.process(t(env, 0))
    env.process(t(env, 1))
    env.run()
    assert done[0] == pytest.approx(1.0)  # outstanding=0 at enqueue
    # second transfer sees outstanding=1 > 0 -> 50% stretch
    assert done[1] == pytest.approx(1.0 + 1.5)


def test_link_congestion_stretch_capped(env):
    link = BandwidthLink(
        env,
        rate=100.0,
        congestion_threshold=0,
        congestion_penalty=10.0,
        congestion_max_stretch=1.0,
    )
    done = {}

    def t(env, i):
        yield link.transfer(100)
        done[i] = env.now

    env.process(t(env, 0))
    env.process(t(env, 1))
    env.run()
    assert done[1] == pytest.approx(1.0 + 2.0)  # at most 2x base


def test_shared_channel_even_split(env):
    ch = SharedChannel(env, rate=100.0)
    done = {}

    def t(env, i, size, start):
        yield env.timeout(start)
        yield ch.transfer(size)
        done[i] = env.now

    env.process(t(env, 0, 100, 0))
    env.process(t(env, 1, 100, 0))
    env.run()
    assert done[0] == pytest.approx(2.0)
    assert done[1] == pytest.approx(2.0)


def test_shared_channel_late_joiner(env):
    ch = SharedChannel(env, rate=100.0)
    done = {}

    def t(env, i, size, start):
        yield env.timeout(start)
        yield ch.transfer(size)
        done[i] = env.now

    env.process(t(env, 0, 100, 0))
    env.process(t(env, 1, 50, 0.5))
    env.run()
    # flow0: 50B alone (0.5s), then shares; both finish together at 1.5.
    assert done[0] == pytest.approx(1.5)
    assert done[1] == pytest.approx(1.5)


def test_shared_channel_zero_bytes_immediate(env):
    ch = SharedChannel(env, rate=10.0)
    done = []

    def t(env):
        yield ch.transfer(0)
        done.append(env.now)

    env.process(t(env))
    env.run()
    assert done == [0]


def test_shared_channel_sequential_flows(env):
    ch = SharedChannel(env, rate=100.0)
    done = []

    def t(env):
        yield ch.transfer(100)
        done.append(env.now)
        yield ch.transfer(100)
        done.append(env.now)

    env.process(t(env))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]
    assert ch.active_flows == 0

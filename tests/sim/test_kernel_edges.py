"""Kernel corner cases: interrupts racing events, condition edge
semantics, shared-channel churn, and event trigger mirroring."""

import pytest

from repro.sim import (
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SharedChannel,
)
from repro.sim.core import SimulationError


def test_interrupt_racing_completion_is_lost(env):
    """An interrupt scheduled at the same instant the process finishes
    is silently dropped — the process already terminated."""
    def quick(env):
        yield env.timeout(1)

    victim = env.process(quick(env))

    def attacker(env):
        yield env.timeout(1)
        if victim.is_alive:
            victim.interrupt("too late?")

    env.process(attacker(env))
    env.run()  # must not raise
    assert victim.ok


def test_interrupted_process_can_continue(env):
    out = []

    def resilient(env):
        for _ in range(3):
            try:
                yield env.timeout(10)
                out.append("slept")
            except Interrupt:
                out.append("poked")

    victim = env.process(resilient(env))

    def attacker(env):
        yield env.timeout(1)
        victim.interrupt()
        yield env.timeout(1)
        victim.interrupt()

    env.process(attacker(env))
    env.run()
    assert out == ["poked", "poked", "slept"]


def test_event_trigger_mirrors_success(env):
    src, dst = env.event(), env.event()
    src.succeed("payload")
    dst.trigger(src)
    assert dst.triggered and dst.ok and dst.value == "payload"


def test_event_trigger_mirrors_failure(env):
    src, dst = env.event(), env.event()
    src._ok = False
    src._value = ValueError("x")
    dst.trigger(src)
    assert dst.triggered and not dst.ok
    dst.defused()
    env.run()


def test_anyof_with_immediate_event(env):
    ev = env.event()
    ev.succeed("now")
    got = []

    def p(env):
        v = yield AnyOf(env, [ev, env.timeout(100)])
        got.append(env.now)

    env.process(p(env))
    env.run(until=50)
    assert got == [0]


def test_condition_failure_after_trigger_is_defused(env):
    """A second failing member of an AnyOf must not crash the run."""
    def fail_at(env, t):
        yield env.timeout(t)
        raise RuntimeError("late failure")

    def p(env):
        a = env.timeout(1)
        b = env.process(fail_at(env, 2))
        yield env.any_of([a, b])

    env.process(p(env))
    env.run()  # late failure of b is swallowed by the condition


def test_shared_channel_many_overlapping_flows(env):
    ch = SharedChannel(env, rate=100.0)
    done = []

    def flow(env, start, size):
        yield env.timeout(start)
        yield ch.transfer(size)
        done.append(env.now)

    for i in range(10):
        env.process(flow(env, i * 0.1, 25.0))
    env.run()
    assert len(done) == 10
    # Total work conservation: last completion >= total bytes / rate.
    assert max(done) >= 10 * 25.0 / 100.0 - 1e-9
    assert ch.active_flows == 0


def test_environment_len_reflects_queue(env):
    env.timeout(1)
    env.timeout(2)
    assert len(env) == 2
    env.run()
    assert len(env) == 0


def test_nested_process_chains(env):
    def leaf(env):
        yield env.timeout(1)
        return "leaf"

    def middle(env):
        v = yield env.process(leaf(env))
        return v + "+middle"

    def root(env):
        v = yield env.process(middle(env))
        return v + "+root"

    assert env.run(env.process(root(env))) == "leaf+middle+root"


def test_failure_through_nested_chain(env):
    def leaf(env):
        yield env.timeout(1)
        raise KeyError("deep")

    def middle(env):
        yield env.process(leaf(env))

    def root(env):
        yield env.process(middle(env))

    with pytest.raises(KeyError):
        env.run(env.process(root(env)))


def test_two_environments_are_isolated():
    a, b = Environment(), Environment()
    hits = []

    def p(env, tag):
        yield env.timeout(1)
        hits.append(tag)

    a.process(p(a, "a"))
    b.process(p(b, "b"))
    a.run()
    assert hits == ["a"]
    b.run()
    assert hits == ["a", "b"]

"""Monitor statistics and time-weighted signals."""

import math

import pytest

from repro.sim import Monitor, TimeWeightedStat
from repro.sim.monitor import merge_series, throughput_mb_s


def test_monitor_basic_stats(env):
    m = Monitor(env)
    for v in (1.0, 2.0, 3.0, 4.0):
        m.record(v)
    assert m.mean() == pytest.approx(2.5)
    assert m.total() == 10
    assert m.min() == 1 and m.max() == 4
    assert len(m) == 4
    assert m.stddev() == pytest.approx(math.sqrt(1.25))


def test_monitor_empty_is_nan(env):
    m = Monitor(env)
    assert math.isnan(m.mean())
    assert math.isnan(m.min())
    assert math.isnan(m.percentile(50))
    assert math.isnan(m.stddev())


def test_monitor_percentile_nearest_rank(env):
    m = Monitor(env)
    for v in range(1, 11):
        m.record(v)
    assert m.percentile(50) == 5
    assert m.percentile(100) == 10
    assert m.percentile(0) == 1
    with pytest.raises(ValueError):
        m.percentile(101)


def test_monitor_percentile_single_sample(env):
    """Every quantile of a one-sample distribution is that sample."""
    m = Monitor(env)
    m.record(42.0)
    assert m.percentile(0) == 42.0
    assert m.percentile(50) == 42.0
    assert m.percentile(100) == 42.0


def test_monitor_percentile_bounds(env):
    m = Monitor(env)
    m.record(1.0)
    with pytest.raises(ValueError):
        m.percentile(-0.001)
    with pytest.raises(ValueError):
        m.percentile(100.001)


def test_monitor_percentile_unsorted_input(env):
    """Quantiles sort internally — insertion order is irrelevant."""
    m = Monitor(env)
    for v in (9.0, 1.0, 5.0, 3.0, 7.0):
        m.record(v)
    assert m.percentile(0) == 1.0
    assert m.percentile(50) == 5.0
    assert m.percentile(100) == 9.0


def test_monitor_records_time(env):
    m = Monitor(env)

    def p(env):
        yield env.timeout(3)
        m.record(7)

    env.process(p(env))
    env.run()
    assert m.times == [3]
    assert m.rate() == pytest.approx(7 / 3)


def test_monitor_summary_keys(env):
    m = Monitor(env)
    m.record(1)
    s = m.summary()
    assert set(s) == {"count", "mean", "min", "max", "stddev", "total"}


def test_time_weighted_average(env):
    tw = TimeWeightedStat(env, initial=0)

    def p(env):
        yield env.timeout(2)
        tw.update(10)  # value 0 for 2s
        yield env.timeout(2)
        tw.update(0)  # value 10 for 2s

    env.process(p(env))
    env.run()
    assert tw.time_average() == pytest.approx(5.0)
    assert tw.max == 10


def test_time_weighted_add(env):
    tw = TimeWeightedStat(env, initial=1)
    tw.add(2)
    assert tw.value == 3
    tw.add(-3)
    assert tw.value == 0


def test_throughput_helper():
    assert throughput_mb_s(2_000_000, 2.0) == pytest.approx(1.0)
    assert math.isnan(throughput_mb_s(100, 0))


def test_merge_series_sorts_by_time():
    ts, vs = merge_series([(3, 30), (1, 10), (2, 20)])
    assert ts == [1, 2, 3]
    assert vs == [10, 20, 30]

"""Bisect schedulers must be pop-for-pop identical to the O(n) scans.

The production SSTF/LOOK schedulers keep sorted offset lists and pick
the next request by bisection.  These property tests replay randomized
push/pop workloads against straightforward O(n)-scan reference
implementations (verbatim copies of the originals they replaced) and
require the *same request object* at every pop — covering duplicate
offsets, equidistant ties, head collisions, direction reversals, and
both priority classes.
"""

import random
from typing import List

import pytest

from repro.hardware.disk import DiskRequest
from repro.io.scheduler import (
    FifoScheduler,
    LookScheduler,
    SstfScheduler,
)


# -- reference implementations (the O(n) originals, kept verbatim) --------
class _RefScheduler:
    def __init__(self) -> None:
        self._queues: dict = {}
        self._count = 0

    def push(self, req: DiskRequest) -> None:
        self._queues.setdefault(req.priority, []).append(req)
        self._count += 1

    def empty(self) -> bool:
        return self._count == 0

    def __len__(self) -> int:
        return self._count

    def pop(self, head: int) -> DiskRequest:
        if self._count == 0:
            raise IndexError("pop from empty scheduler")
        cls = min(k for k, q in self._queues.items() if q)
        queue = self._queues[cls]
        idx = self._select(queue, head)
        self._count -= 1
        return queue.pop(idx)


class _RefFifo(_RefScheduler):
    def _select(self, queue: List[DiskRequest], head: int) -> int:
        return 0


class _RefSstf(_RefScheduler):
    def _select(self, queue: List[DiskRequest], head: int) -> int:
        best, best_d = 0, None
        for i, req in enumerate(queue):
            d = abs(req.offset - head)
            if best_d is None or d < best_d:
                best, best_d = i, d
        return best


class _RefLook(_RefScheduler):
    def __init__(self) -> None:
        super().__init__()
        self._direction = 1

    def _select(self, queue: List[DiskRequest], head: int) -> int:
        def candidates(direction: int):
            return [
                (i, req.offset)
                for i, req in enumerate(queue)
                if (req.offset - head) * direction >= 0
            ]

        ahead = candidates(self._direction)
        if not ahead:
            self._direction = -self._direction
            ahead = candidates(self._direction)
        best_i, _ = min(ahead, key=lambda t: abs(t[1] - head))
        return best_i


PAIRS = [
    (SstfScheduler, _RefSstf),
    (LookScheduler, _RefLook),
    (FifoScheduler, _RefFifo),
]


def _random_workload(rng, steps, offset_domain, p_background):
    """Yield ("push", req) / ("pop",) ops; pushes shared by both sides."""
    ops = []
    pending = 0
    for _ in range(steps):
        if pending and rng.random() < 0.45:
            ops.append(("pop",))
            pending -= 1
        else:
            # A small offset domain forces duplicate offsets and
            # equidistant ties around the moving head.
            req = DiskRequest(
                op="read",
                offset=rng.randrange(offset_domain),
                nbytes=1,
                priority=1 if rng.random() < p_background else 0,
            )
            ops.append(("push", req))
            pending += 1
    ops.extend(("pop",) for _ in range(pending))
    return ops


@pytest.mark.parametrize("new_cls,ref_cls", PAIRS)
@pytest.mark.parametrize("seed", range(8))
def test_randomized_pop_sequences_identical(new_cls, ref_cls, seed):
    rng = random.Random(seed)
    new, ref = new_cls(), ref_cls()
    head = 0
    for op in _random_workload(
        rng, steps=400, offset_domain=40, p_background=0.3
    ):
        if op[0] == "push":
            new.push(op[1])
            ref.push(op[1])
        else:
            got, want = new.pop(head=head), ref.pop(head=head)
            assert got is want, (
                f"seed {seed}: popped {got.offset}/p{got.priority}, "
                f"reference chose {want.offset}/p{want.priority}"
            )
            head = got.offset
        assert len(new) == len(ref)
    assert new.empty() and ref.empty()


@pytest.mark.parametrize("new_cls,ref_cls", PAIRS)
def test_equidistant_and_duplicate_offsets(new_cls, ref_cls):
    # Deliberate worst case for tie-breaking: every offset appears
    # twice and the head sits exactly between pairs.
    new, ref = new_cls(), ref_cls()
    offsets = [10, 30, 10, 30, 20, 20, 40, 0, 40, 0]
    for off in offsets:
        r = DiskRequest(op="read", offset=off, nbytes=1)
        new.push(r)
        ref.push(r)
    head = 20  # equidistant from 10/30 and 0/40
    while not ref.empty():
        got, want = new.pop(head=head), ref.pop(head=head)
        assert got is want
        head = got.offset


@pytest.mark.parametrize("new_cls,_ref", PAIRS)
def test_priority_zero_always_preempts(new_cls, _ref):
    rng = random.Random(1234)
    sched = new_cls()
    reqs = [
        DiskRequest(
            op="read",
            offset=rng.randrange(100),
            nbytes=1,
            priority=rng.randrange(2),
        )
        for _ in range(60)
    ]
    for r in reqs:
        sched.push(r)
    foreground = sum(1 for r in reqs if r.priority == 0)
    head = 0
    popped = []
    while not sched.empty():
        r = sched.pop(head=head)
        popped.append(r.priority)
        head = r.offset
    # Every class-0 request drains before any class-1 request.
    assert popped == [0] * foreground + [1] * (len(reqs) - foreground)

"""Disk service-time model, sequential detection, failures, stats."""

import pytest

from repro.config import DiskParams
from repro.errors import AddressError, DiskFailedError
from repro.hardware.disk import Disk
from repro.units import KiB, MB


def make_disk(env, **kw):
    return Disk(env, DiskParams(**kw), disk_id=0)


def test_first_read_at_zero_is_sequential(env):
    d = make_disk(env)
    done = []

    def p(env):
        yield d.read(0, 32 * KiB)
        done.append(env.now)

    env.process(p(env))
    env.run()
    p_ = d.params
    expected = p_.controller_overhead_s + 32 * KiB / p_.media_rate
    assert done[0] == pytest.approx(expected)
    assert d.stats.sequential_hits == 1


def test_sequential_run_skips_seek_and_rotation(env):
    d = make_disk(env)

    def p(env):
        yield d.read(0, 32 * KiB)
        yield d.read(32 * KiB, 32 * KiB)

    env.process(p(env))
    env.run()
    assert d.stats.sequential_hits == 2
    assert d.stats.seek_time == 0
    assert d.stats.rotation_time == 0


def test_far_access_pays_seek_and_rotation(env):
    d = make_disk(env)

    def p(env):
        yield d.read(0, 32 * KiB)
        yield d.read(5_000 * MB, 32 * KiB)

    env.process(p(env))
    env.run()
    assert d.stats.seek_time > 0
    assert d.stats.rotation_time == pytest.approx(d.params.avg_rotation_s)


def test_backward_access_is_not_sequential(env):
    d = make_disk(env)

    def p(env):
        yield d.read(0, 32 * KiB)
        yield d.read(32 * KiB, 32 * KiB)  # forward, in window
        yield d.read(0, 32 * KiB)  # behind the head

    env.process(p(env))
    env.run()
    assert d.stats.sequential_hits == 2  # the backward one pays in full


def test_seek_time_monotonic_in_distance(env):
    d = make_disk(env)
    short = d.seek_time(1 * MB)
    far = d.seek_time(5_000 * MB)
    assert 0 < short < far <= d.params.full_stroke_seek_s
    assert d.seek_time(0) == 0.0


def test_out_of_range_request_rejected(env):
    d = make_disk(env)
    with pytest.raises(AddressError):
        d.read(d.capacity, 1)
    with pytest.raises(AddressError):
        d.read(-1, 10)


def test_bad_op_rejected(env):
    d = make_disk(env)
    with pytest.raises(ValueError):
        d.submit("erase", 0, 10)


def test_failed_disk_fails_requests(env):
    d = make_disk(env)
    d.fail()
    errors = []

    def p(env):
        try:
            yield d.read(0, 1024)
        except DiskFailedError as e:
            errors.append(e.disk_id)

    env.process(p(env))
    env.run()
    assert errors == [0]


def test_repair_restores_service(env):
    d = make_disk(env)
    d.fail()
    d.repair()
    done = []

    def p(env):
        yield d.read(0, 1024)
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done


def test_queued_requests_fail_on_late_failure(env):
    d = make_disk(env)
    errors = []
    done = []

    def issuer(env):
        ev1 = d.read(0, 32 * KiB)
        ev2 = d.read(5_000 * MB, 32 * KiB)
        try:
            yield ev1
            done.append(1)
        except DiskFailedError:
            errors.append(1)
        try:
            yield ev2
            done.append(2)
        except DiskFailedError:
            errors.append(2)

    def breaker(env):
        yield env.timeout(0.001)  # during/after req1, before req2 done
        d.fail()

    env.process(issuer(env))
    env.process(breaker(env))
    env.run()
    assert errors  # at least the later request failed


def test_write_statistics(env):
    d = make_disk(env)

    def p(env):
        yield d.write(0, 64 * KiB)
        yield d.read(0, 32 * KiB)

    env.process(p(env))
    env.run()
    assert d.stats.writes == 1 and d.stats.reads == 1
    assert d.stats.bytes_written == 64 * KiB
    assert d.stats.bytes_read == 32 * KiB
    assert d.stats.total_ops == 2


def test_priority_class_zero_served_first(env):
    d = make_disk(env)
    order = []

    def issuer(env):
        # Fill the disk with one in-service op, then queue bg before fg.
        first = d.read(0, 32 * KiB)
        bg = d.submit("write", 10 * MB, 32 * KiB, priority=1)
        fg = d.submit("write", 20 * MB, 32 * KiB, priority=0)

        def mark(tag):
            def cb(ev):
                order.append(tag)

            return cb

        bg.callbacks.append(mark("bg"))
        fg.callbacks.append(mark("fg"))
        yield env.all_of([first, bg, fg])

    env.process(issuer(env))
    env.run()
    assert order == ["fg", "bg"]


def test_utilization_bounded(env):
    d = make_disk(env)

    def p(env):
        yield d.read(0, 32 * KiB)
        yield env.timeout(1)

    env.process(p(env))
    env.run()
    assert 0 < d.utilization() < 1


def test_custom_scheduler_actually_used(env):
    """Regression: an *empty* scheduler is falsy (it has __len__), so a
    naive ``scheduler or Fifo()`` default silently replaced it."""
    from repro.io.scheduler import SstfScheduler

    sched = SstfScheduler()
    d = Disk(env, DiskParams(), scheduler=sched)
    assert d.scheduler is sched
    order = []
    evs = []
    for off in (0, 9_000 * MB, 1 * MB):
        ev = d.read(off, 32 * KiB)
        ev.callbacks.append(lambda e, off=off: order.append(off))
        evs.append(ev)

    def p(env):
        yield env.all_of(evs)

    env.process(p(env))
    env.run()
    # SSTF from head 0: nearest first — the far request goes last.
    assert order == [0, 1 * MB, 9_000 * MB]


def test_queue_depth_counts_pending(env):
    d = make_disk(env)
    d.read(0, 32 * KiB)
    d.read(1 * MB, 32 * KiB)
    assert d.queue_depth == 2
    env.run()
    assert d.queue_depth == 0

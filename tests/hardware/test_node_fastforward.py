"""Node fast-forward vs the event-driven hop chain: byte-identical.

With ``REPRO_NODE_FF`` on, a conflict-free local request collapses the
CPU → SCSI → disk pipeline into three eager closed-form claims (see
``Node.try_fast_forward``); the moment any conflict predicate fails the
request takes the full event-driven path.  Timing must be *exactly*
preserved either way: these tests run seeded open-loop-style scenarios
with both modes and compare full signatures — completion floats
(hex-exact), per-device stats, scheduler depth, byte accounting, CDD
counters, and the span stream.  Both modes run with the PR-5 disk
fast-forward enabled, so this pins node-FF against the disk-FF phase
path that PR 5 already pinned against the true generator loop.
"""

import hashlib
import json
import random

import pytest

from repro.cluster.cluster import build_cluster
from repro.hardware import node as node_mod
from repro.obs import runtime as obs_runtime
from repro.sim.core import Process
from tests.conftest import small_config


def _hex(v):
    return v.hex() if isinstance(v, float) else v


def _signature(cluster, results):
    st = cluster.storage
    return {
        "final": _hex(cluster.env.now),
        "results": results,
        "bytes_read": _hex(st.bytes_read),
        "bytes_written": _hex(st.bytes_written),
        "issued": [c.issued_ops for c in cluster.cdds],
        "local_ops": cluster.transport.stats.local_block_ops,
        "remote_ops": cluster.transport.stats.remote_block_ops,
        "cpu_busy": [_hex(n.cpu._work.busy_time) for n in cluster.nodes],
        "cpu_work": [_hex(n.cpu._work.bytes_carried) for n in cluster.nodes],
        "scsi_busy": [_hex(n.scsi._link.busy_time) for n in cluster.nodes],
        "scsi_bytes": [
            _hex(n.scsi._link.bytes_carried) for n in cluster.nodes
        ],
        "nic": [
            (_hex(nic.bytes_sent), _hex(nic.bytes_received))
            for nic in cluster.network.nics
        ],
        "disks": [
            {
                "busy": _hex(d.stats.busy_time),
                "busy_fg": _hex(d.stats.busy_time_foreground),
                "busy_bg": _hex(d.stats.busy_time_background),
                "seek": _hex(d.stats.seek_time),
                "rot": _hex(d.stats.rotation_time),
                "xfer": _hex(d.stats.transfer_time),
                "reads": d.stats.reads,
                "writes": d.stats.writes,
                "br": _hex(d.stats.bytes_read),
                "bw": _hex(d.stats.bytes_written),
                "seq": d.stats.sequential_hits,
                "depth": d.scheduler.max_depth_seen,
                "qd_hw": d.stats.queue_depth_hw,
            }
            for d in cluster.all_disks()
        ],
    }


def _run_scenario(
    node_ff,
    arch="raid0",
    op_mix="mixed",
    placement="mixed",
    chaos=False,
    traced=False,
    locking=False,
    read_policy="static",
    sample=1.0,
):
    """Drive a seeded request mix with node-FF forced on or off.

    Gap choices span well below and well above a disk service time, so
    requests land both on idle pipelines (fast-forward eligible) and on
    busy ones (predicate fails, event-driven fallback) — the mixed
    regime is where claim-order bugs would show.
    """
    old = node_mod.NODE_FAST_FORWARD
    node_mod.NODE_FAST_FORWARD = node_ff
    try:
        kwargs = {"read_policy": read_policy} if arch != "nfs" else {}
        cluster = build_cluster(
            small_config(n=4),
            architecture=arch,
            locking=locking,
            **kwargs,
        )
    finally:
        node_mod.NODE_FAST_FORWARD = old
    env = cluster.env
    storage = cluster.storage
    bs = storage.block_size
    results = []
    spans = []

    def outcome(i):
        def cb(event):
            if not event._ok:
                event.defused()
            results.append((i, event._ok, _hex(env.now)))

        return cb

    def driver():
        rnd = random.Random(0xA11D)
        idx = 0
        for step in range(50):
            for j in range(1 + step % 3):
                block = rnd.randrange(0, 160)
                disk = storage.layout.data_location(block).disk
                if placement == "local" or (placement == "mixed" and
                                            (step + j) % 2):
                    client = disk % cluster.n_nodes
                else:
                    client = (step + j) % cluster.n_nodes
                if op_mix == "read":
                    op = "read"
                elif op_mix == "write":
                    op = "write"
                else:
                    op = "read" if (step + j) % 3 else "write"
                nbytes = bs if (step + j) % 4 else bs // 2
                ev = storage.submit(client, op, block * bs, nbytes)
                ev.callbacks.append(outcome(idx))
                idx += 1
            # Sometimes shorter than a service time (overlap → fallback),
            # sometimes long enough to drain and park every device.
            yield rnd.choice((0.0002, 0.003, 0.06))

    def chaos_proc():
        # Failure/repair at drain points: the kill-switch must flip the
        # run to the event-driven path from that moment on.
        yield 1.4
        storage.fail_disk(1)
        yield 0.8
        storage.repair_disk(1)

    if traced:
        ctx = obs_runtime.tracing(sample_rate=sample, sample_seed=7)
        tracer = ctx.__enter__()
    env.process(driver())
    if chaos:
        env.process(chaos_proc())
    env.run()
    if traced:
        spans = [
            [s.kind, s.track, _hex(s.start), _hex(s.end), s.trace,
             {k: _hex(v) for k, v in sorted((s.args or {}).items())}]
            for s in tracer.spans
        ]
        ctx.__exit__(None, None, None)
    sig = _signature(cluster, results)
    sig["n_spans"] = len(spans)
    sig["span_sha"] = hashlib.sha256(
        json.dumps(spans, sort_keys=True).encode()
    ).hexdigest()
    return sig, cluster


@pytest.mark.parametrize("arch", ["raid0", "raidx", "raid10", "chained"])
def test_node_ff_matches_phase_path(arch):
    phase, _ = _run_scenario(False, arch=arch)
    ff, cluster = _run_scenario(True, arch=arch)
    assert ff == phase
    # The scenario actually exercised the shortcut and the fallback.
    assert cluster.storage.engine.fast_submits > 5
    assert cluster.transport.stats.remote_block_ops > 0


def test_node_ff_pure_local_reads():
    phase, _ = _run_scenario(False, op_mix="read", placement="local")
    ff, cluster = _run_scenario(True, op_mix="read", placement="local")
    assert ff == phase
    assert cluster.storage.engine.fast_submits > 30


def test_node_ff_local_writes_raid0():
    phase, _ = _run_scenario(False, op_mix="write", placement="local")
    ff, cluster = _run_scenario(True, op_mix="write", placement="local")
    assert ff == phase
    assert cluster.storage.engine.fast_submits > 30


def test_node_ff_with_chaos_kill_switch():
    phase, _ = _run_scenario(False, arch="raidx", chaos=True)
    ff, cluster = _run_scenario(True, arch="raidx", chaos=True)
    assert ff == phase
    # Fast-forwarded before the failure, locked out after it.
    assert cluster.storage.engine.fast_submits > 0
    assert not cluster.storage.node_ff


def test_node_ff_traced_runs_span_identical():
    phase, _ = _run_scenario(False, arch="raidx", traced=True)
    ff, cluster = _run_scenario(True, arch="raidx", traced=True)
    assert ff == phase
    assert ff["n_spans"] > 100
    # Tracing no longer disables the shortcut: the lockstep span
    # synthesis (FFSpanSynth) emits the phase path's spans from the
    # closed-form terms — same timestamps, same append order, same
    # trace ids — so the full-signature comparison above covers the
    # span stream hash too.
    assert cluster.storage.engine.fast_submits > 5


def test_node_ff_sampled_tracing_span_identical():
    # Deterministic sampling keeps the same trace ids on both paths
    # (ids allocate in submit order either way), so the sampled span
    # streams must also match byte for byte — while keeping fewer
    # spans than the full trace.
    full, _ = _run_scenario(True, arch="raidx", traced=True)
    phase, _ = _run_scenario(
        False, arch="raidx", traced=True, sample=0.25
    )
    ff, cluster = _run_scenario(
        True, arch="raidx", traced=True, sample=0.25
    )
    assert ff == phase
    assert cluster.storage.engine.fast_submits > 5
    assert 0 < ff["n_spans"] < full["n_spans"]


def test_node_ff_shortest_queue_reads_fall_back():
    phase, _ = _run_scenario(
        False, op_mix="read", placement="local",
        read_policy="shortest_queue",
    )
    ff, cluster = _run_scenario(
        True, op_mix="read", placement="local",
        read_policy="shortest_queue",
    )
    assert ff == phase
    assert cluster.storage.engine.fast_submits == 0


def test_node_ff_locking_writes_fall_back():
    phase, _ = _run_scenario(
        False, arch="raidx", op_mix="write", placement="local",
        locking=True,
    )
    ff, cluster = _run_scenario(
        True, arch="raidx", op_mix="write", placement="local", locking=True,
    )
    assert ff == phase


def test_node_ff_reduces_event_count():
    _, phase_cluster = _run_scenario(
        False, op_mix="read", placement="local"
    )
    _, ff_cluster = _run_scenario(True, op_mix="read", placement="local")
    assert (
        ff_cluster.env.processed_events
        < phase_cluster.env.processed_events
    )


def test_module_flag_controls_node_default(monkeypatch):
    monkeypatch.setattr(node_mod, "NODE_FAST_FORWARD", False)
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    assert not cluster.nodes[0].fast_forward
    assert not cluster.storage.node_ff
    monkeypatch.setattr(node_mod, "NODE_FAST_FORWARD", True)
    cluster = build_cluster(small_config(n=4), architecture="raid0")
    assert cluster.nodes[0].fast_forward
    assert cluster.storage.node_ff


def test_fast_submit_returns_plain_event_not_process():
    old = node_mod.NODE_FAST_FORWARD
    node_mod.NODE_FAST_FORWARD = True
    try:
        cluster = build_cluster(small_config(n=4), architecture="raid0")
    finally:
        node_mod.NODE_FAST_FORWARD = old
    storage = cluster.storage
    bs = storage.block_size
    disk = storage.layout.data_location(0).disk
    ev = storage.submit(disk % cluster.n_nodes, "read", 0, bs)
    assert not isinstance(ev, Process)
    cluster.env.run(ev)
    assert cluster.storage.engine.fast_submits == 1

"""CPU cost model, SCSI bus, and node assembly."""

import pytest

from repro.config import CpuParams
from repro.hardware.cpu import Cpu
from repro.hardware.node import Node
from repro.hardware.scsi import ScsiBus
from repro.units import KiB, MB
from tests.conftest import small_config


def test_cpu_busy_serializes(env):
    cpu = Cpu(env, CpuParams())
    done = {}

    def p(env, i):
        yield cpu.busy(1.0)
        done[i] = env.now

    env.process(p(env, 0))
    env.process(p(env, 1))
    env.run()
    assert done[0] == pytest.approx(1.0)
    assert done[1] == pytest.approx(2.0)


def test_cpu_xor_cost_scales_with_passes(env):
    cpu = Cpu(env, CpuParams())
    times = []

    def p(env):
        t0 = env.now
        yield cpu.xor(8 * MB, passes=1)
        times.append(env.now - t0)
        t0 = env.now
        yield cpu.xor(8 * MB, passes=3)
        times.append(env.now - t0)

    env.process(p(env))
    env.run()
    assert times[1] == pytest.approx(3 * times[0])


def test_cpu_negative_time_rejected(env):
    cpu = Cpu(env, CpuParams())
    with pytest.raises(ValueError):
        cpu.busy(-1)


def test_driver_entry_kernel_cheaper_than_user(env):
    cpu = Cpu(env, CpuParams())
    t = {}

    def p(env):
        t0 = env.now
        yield cpu.driver_entry(kernel_level=True)
        t["kernel"] = env.now - t0
        t0 = env.now
        yield cpu.driver_entry(kernel_level=False)
        t["user"] = env.now - t0

    env.process(p(env))
    env.run()
    assert t["kernel"] < t["user"]


def test_scsi_bus_serializes_transfers(env):
    bus = ScsiBus(env, rate=1000.0, arbitration_s=0.0)
    done = {}

    def p(env, i):
        yield bus.transfer(1000)
        done[i] = env.now

    env.process(p(env, 0))
    env.process(p(env, 1))
    env.run()
    assert done[0] == pytest.approx(1.0)
    assert done[1] == pytest.approx(2.0)


def test_node_owns_expected_disks(env):
    cfg = small_config(n=4, k=3)
    node = Node(env, cfg, node_id=1, disk_ids=[1, 5, 9])
    assert [d.disk_id for d in node.disks] == [1, 5, 9]
    assert node.local_disk(5).disk_id == 5
    with pytest.raises(KeyError):
        node.local_disk(2)


def test_node_disk_io_charges_bus_and_disk(env):
    cfg = small_config(n=4, k=1)
    node = Node(env, cfg, node_id=0, disk_ids=[0])
    done = []

    def p(env):
        yield node.submit_local(0, "read", 0, 32 * KiB)
        done.append(env.now)

    env.process(p(env))
    env.run()
    disk_only = (
        cfg.disk.controller_overhead_s + 32 * KiB / cfg.disk.media_rate
    )
    assert done[0] > disk_only  # SCSI time added on top

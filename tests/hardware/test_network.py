"""Fabric model: message path, loopback, incast stretch."""

import pytest

from repro.config import NetworkParams
from repro.errors import ConfigurationError
from repro.hardware.network import Network
from repro.units import KiB


def test_message_path_timing(env):
    params = NetworkParams(incast_flow_threshold=None)
    net = Network(env, 2, params)
    done = []

    def p(env):
        yield net.transfer(0, 1, 32 * KiB)
        done.append(env.now)

    env.process(p(env))
    env.run()
    expected = 2 * (32 * KiB / params.link_rate) + params.switch_latency_s
    assert done[0] == pytest.approx(expected)
    assert net.bytes_switched == 32 * KiB


def test_loopback_is_free_at_fabric_level(env):
    net = Network(env, 2, NetworkParams())
    done = []

    def p(env):
        yield net.transfer(0, 0, 1_000_000)
        done.append(env.now)

    env.process(p(env))
    env.run()
    assert done == [0]
    assert net.bytes_switched == 0


def test_bad_endpoints_rejected(env):
    from repro.sim.core import SimulationError

    net = Network(env, 2, NetworkParams())
    net.transfer(0, 5, 100)
    # The failing process surfaces as an unhandled simulation failure
    # whose cause is the configuration error.
    with pytest.raises(SimulationError) as exc:
        env.run()
    assert isinstance(exc.value.__cause__, ConfigurationError)


def test_tx_serializes_rx_parallel_sources(env):
    """Two senders to two different receivers don't interfere."""
    params = NetworkParams(incast_flow_threshold=None)
    net = Network(env, 4, params)
    done = {}

    def p(env, src, dst):
        yield net.transfer(src, dst, 32 * KiB)
        done[(src, dst)] = env.now

    env.process(p(env, 0, 2))
    env.process(p(env, 1, 3))
    env.run()
    assert done[(0, 2)] == pytest.approx(done[(1, 3)])


def test_incast_stretch_kicks_in_beyond_threshold(env):
    params = NetworkParams(
        incast_flow_threshold=2,
        incast_penalty=0.5,
        incast_max_stretch=2.0,
    )
    net = Network(env, 6, params)
    # Five distinct senders with in-flight messages toward node 0.
    for src in range(1, 6):
        net._flow_enter(src, 0)
    # threshold 2 -> excess 3 -> stretch 1.5 (below the 2.0 cap).
    s = net._incast_stretch(5, 0)
    assert s == pytest.approx(min(0.5 * 3, 2.0))


def test_incast_flows_clear_on_exit(env):
    params = NetworkParams(incast_flow_threshold=1, incast_penalty=0.5)
    net = Network(env, 4, params)
    net._flow_enter(1, 0)
    net._flow_enter(2, 0)
    assert net._incast_stretch(2, 0) > 0
    net._flow_exit(1, 0)
    net._flow_exit(2, 0)
    assert net._incast_stretch(3, 0) == 0.0


def test_incast_refcounts_multiple_messages_per_source(env):
    params = NetworkParams(incast_flow_threshold=1, incast_penalty=0.5)
    net = Network(env, 4, params)
    net._flow_enter(1, 0)
    net._flow_enter(1, 0)  # same source twice: still one flow
    assert net._incast_stretch(1, 0) == 0.0
    net._flow_exit(1, 0)
    net._flow_enter(2, 0)
    assert net._incast_stretch(2, 0) > 0  # sources {1, 2}


def test_incast_disabled(env):
    params = NetworkParams(incast_flow_threshold=None)
    net = Network(env, 4, params)
    for src in range(1, 4):
        assert net._incast_stretch(src, 0) == 0.0


def test_backplane_cap(env):
    params = NetworkParams(
        backplane_rate=NetworkParams().link_rate,  # as slow as one port
        incast_flow_threshold=None,
    )
    net = Network(env, 4, params)
    done = {}

    def p(env, src, dst):
        yield net.transfer(src, dst, 125_000)
        done[(src, dst)] = env.now

    env.process(p(env, 0, 2))
    env.process(p(env, 1, 3))
    env.run()
    # The shared backplane roughly doubles the pair's completion time
    # versus independent ports.
    assert max(done.values()) > 0.015


def test_aggregate_utilization_bounds(env):
    net = Network(env, 2, NetworkParams(incast_flow_threshold=None))

    def p(env):
        yield net.transfer(0, 1, 125_000)
        yield env.timeout(0.01)

    env.process(p(env))
    env.run()
    assert 0 < net.aggregate_utilization() < 1

"""Analytic fast-forward vs the generator serve loop: byte-identical.

The fast-forward path (``Disk(fast_forward=True)``) must be a perfect
transliteration of the phase-by-phase server: same completion floats,
same span stream (order included), same stats, same mid-run queue
depths — under bursty arrivals, priority mixes, every scheduler
policy, and failures landing while requests are queued and in flight.
These tests run both paths over seeded scenarios and compare full
signatures.
"""

import hashlib
import json
import random

import pytest

from repro.config import DiskParams
from repro.hardware import disk as disk_mod
from repro.hardware.disk import Disk
from repro.io.scheduler import FifoScheduler, LookScheduler, SstfScheduler
from repro.obs import runtime as obs_runtime
from repro.sim.core import Environment

_SCHEDULERS = {
    "fifo": FifoScheduler,
    "sstf": SstfScheduler,
    "look": LookScheduler,
}


def _hex(v):
    return v.hex() if isinstance(v, float) else v


def _run_scenario(fast_forward, scheduler, chaos):
    env = Environment()
    results = []
    depths = []
    with obs_runtime.tracing() as tracer:
        disk = Disk(
            env,
            DiskParams(),
            scheduler=_SCHEDULERS[scheduler](),
            fast_forward=fast_forward,
        )
        cap = disk.capacity

        def outcome(i):
            def cb(event):
                if not event._ok:
                    event.defused()
                results.append((i, event._ok, _hex(env.now)))

            return cb

        def driver():
            rnd = random.Random(0xD15C)
            seq_base = 0
            idx = 0
            for step in range(40):
                for j in range(1 + step % 3):  # bursts of 1..3
                    if (step + j) % 4 == 0:
                        # Sequential run continuation.
                        offset = seq_base
                        seq_base += 16384
                    else:
                        offset = rnd.randrange(0, (cap - 65536) // 4096)
                        offset *= 4096
                        seq_base = offset + 16384
                    ev = disk.submit(
                        "read" if (step + j) % 3 else "write",
                        offset,
                        4096 * (1 + (step + j) % 4),
                        priority=1 if (step + j) % 5 == 0 else 0,
                        trace=idx,
                    )
                    ev.callbacks.append(outcome(idx))
                    idx += 1
                # Gaps: sometimes shorter than a service interval, so
                # arrivals land mid-batch; sometimes long enough to
                # drain the queue and park the server.
                yield rnd.choice((0.0002, 0.0015, 0.02))

        def sampler():
            for _ in range(120):
                depths.append((_hex(env.now), disk.queue_depth))
                yield 0.004

        def chaos_proc():
            yield 0.05
            disk.fail()
            yield 0.03
            disk.repair()
            yield 0.06
            disk.fail()
            yield 0.001
            disk.repair()

        env.process(driver())
        env.process(sampler())
        if chaos:
            env.process(chaos_proc())
        env.run()

        spans = [
            [s.kind, s.track, _hex(s.start), _hex(s.end), s.trace,
             {k: _hex(v) for k, v in sorted((s.args or {}).items())}]
            for s in tracer.spans
        ]
        st = disk.stats
        return {
            "final_time": _hex(env.now),
            "results": results,
            "n_spans": len(spans),
            "span_sha": hashlib.sha256(
                json.dumps(spans, sort_keys=True).encode()
            ).hexdigest(),
            "depths": depths,
            "stats": {
                "reads": st.reads,
                "writes": st.writes,
                "bytes_read": _hex(st.bytes_read),
                "bytes_written": _hex(st.bytes_written),
                "busy": _hex(st.busy_time),
                "busy_fg": _hex(st.busy_time_foreground),
                "busy_bg": _hex(st.busy_time_background),
                "seek": _hex(st.seek_time),
                "rot": _hex(st.rotation_time),
                "xfer": _hex(st.transfer_time),
                "seq_hits": st.sequential_hits,
            },
            "max_depth_seen": disk.scheduler.max_depth_seen,
        }


@pytest.mark.parametrize("scheduler", sorted(_SCHEDULERS))
@pytest.mark.parametrize("chaos", [False, True], ids=["healthy", "chaos"])
def test_fast_forward_matches_phase_path(scheduler, chaos):
    phase = _run_scenario(False, scheduler, chaos)
    ff = _run_scenario(True, scheduler, chaos)
    assert ff == phase
    # The scenario actually exercised what it claims to.
    assert phase["n_spans"] > 100
    assert phase["stats"]["seq_hits"] > 0
    assert phase["stats"]["busy_bg"] != 0.0
    if chaos:
        assert any(not ok for _, ok, _ in phase["results"])
        assert any(ok for _, ok, _ in phase["results"])


def test_fast_forward_matches_untraced_too():
    # No tracer installed: the stats/completion bookkeeping alone.
    def run(ff):
        env = Environment()
        disk = Disk(env, DiskParams(), fast_forward=ff)
        done = [
            disk.submit("write", i * 8192, 8192) for i in range(100)
        ]
        env.run(done[-1])
        return (_hex(env.now), _hex(disk.stats.busy_time),
                disk.stats.sequential_hits)

    assert run(True) == run(False)


def test_module_flag_controls_default(monkeypatch):
    env = Environment()
    monkeypatch.setattr(disk_mod, "FAST_FORWARD", False)
    assert not Disk(env)._ff
    monkeypatch.setattr(disk_mod, "FAST_FORWARD", True)
    assert Disk(env)._ff
    # Explicit argument beats the module default.
    assert not Disk(env, fast_forward=False)._ff


def test_submit_to_failed_disk_fails_fast_both_paths():
    for ff in (False, True):
        env = Environment()
        disk = Disk(env, DiskParams(), fast_forward=ff)
        disk.fail()
        ev = disk.submit("read", 0, 4096)
        assert ev.triggered and not ev._ok
        ev.defused()
        assert disk.queue_depth == 0

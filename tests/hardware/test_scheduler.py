"""Disk queue disciplines: FIFO, SSTF, LOOK, and priority classes."""

import pytest

from repro.hardware.disk import DiskRequest
from repro.io.scheduler import (
    FifoScheduler,
    LookScheduler,
    SstfScheduler,
    make_scheduler,
)


def req(offset, priority=0):
    return DiskRequest(op="read", offset=offset, nbytes=1, priority=priority)


def drain(sched, head=0):
    out = []
    while not sched.empty():
        r = sched.pop(head=head)
        out.append(r.offset)
        head = r.offset
    return out


def test_fifo_preserves_arrival_order():
    s = FifoScheduler()
    for off in (50, 10, 30):
        s.push(req(off))
    assert drain(s) == [50, 10, 30]


def test_sstf_picks_nearest():
    s = SstfScheduler()
    for off in (100, 10, 55):
        s.push(req(off))
    assert drain(s, head=50) == [55, 100, 10]


def test_look_sweeps_then_reverses():
    s = LookScheduler()
    for off in (10, 90, 60, 40):
        s.push(req(off))
    # Head at 50 sweeping up: 60, 90; reverse: 40, 10.
    assert drain(s, head=50) == [60, 90, 40, 10]


def test_priority_class_respected_across_policies():
    for cls in (FifoScheduler, SstfScheduler, LookScheduler):
        s = cls()
        s.push(req(10, priority=1))
        s.push(req(99, priority=0))
        first = s.pop(head=0)
        assert first.priority == 0, cls.__name__


def test_pop_empty_raises():
    s = FifoScheduler()
    with pytest.raises(IndexError):
        s.pop(head=0)


def test_len_tracks_pushes():
    s = SstfScheduler()
    assert len(s) == 0 and s.empty()
    s.push(req(1))
    s.push(req(2))
    assert len(s) == 2 and not s.empty()
    s.pop(head=0)
    assert len(s) == 1


def test_make_scheduler_names():
    assert isinstance(make_scheduler(None), FifoScheduler)
    assert isinstance(make_scheduler("fcfs"), FifoScheduler)
    assert isinstance(make_scheduler("SSTF"), SstfScheduler)
    assert isinstance(make_scheduler("elevator"), LookScheduler)
    with pytest.raises(ValueError):
        make_scheduler("cfq")

"""Bandwidth-shared channels.

Two link models are provided:

* :class:`BandwidthLink` — FIFO serialization: one transfer at a time at
  full rate.  Matches a NIC transmit path or a SCSI bus at message
  granularity.
* :class:`SharedChannel` — processor-sharing: concurrent transfers split
  the rate equally, with exact completion-time recomputation on every
  arrival/departure.  Matches a switch backplane or a disk serving
  interleaved streams.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim.core import Environment, Process
from repro.sim.events import Event


class BandwidthLink:
    """A FIFO pipe with fixed rate and per-transfer fixed latency.

    ``transfer(nbytes)`` returns an event that triggers when the transfer
    (queueing + latency + nbytes/rate) completes.
    """

    def __init__(
        self,
        env: Environment,
        rate: float,
        latency: float = 0.0,
        name: str = "",
        congestion_threshold: Optional[int] = None,
        congestion_penalty: float = 0.0,
        congestion_max_stretch: float = 1.5,
    ):
        """``congestion_threshold``/``congestion_penalty`` model goodput
        collapse under deep queues (era TCP over Fast Ethernet: loss and
        retransmission under fan-in): each transfer beyond ``threshold``
        outstanding stretches service time by ``penalty`` fractionally,
        up to an extra ``congestion_max_stretch`` × the base duration
        (goodput floors rather than hitting zero).
        """
        if rate <= 0:
            raise ValueError("rate must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if congestion_penalty < 0:
            raise ValueError("congestion penalty must be non-negative")
        self.env = env
        self.rate = float(rate)
        self.latency = float(latency)
        self.name = name
        self.congestion_threshold = congestion_threshold
        self.congestion_penalty = float(congestion_penalty)
        self.congestion_max_stretch = float(congestion_max_stretch)
        #: Simulated time at which the link next becomes free.
        self._free_at = env.now
        #: Transfers enqueued but not yet completed.
        self.outstanding = 0
        #: Total bytes ever carried (for utilization accounting).
        self.bytes_carried = 0.0
        self.busy_time = 0.0
        self.congestion_delay = 0.0

    def transfer(self, nbytes: float, stretch: float = 0.0) -> Event:
        """Occupy the link for ``nbytes`` and return the completion event.

        ``stretch`` adds that fraction of the base duration (used by the
        fabric's incast model); the link's own queue-depth congestion
        model (if configured) composes on top.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if stretch < 0:
            raise ValueError("stretch must be non-negative")
        start = max(self.env.now, self._free_at)
        duration = nbytes / self.rate
        if stretch:
            extra = duration * stretch
            duration += extra
            self.congestion_delay += extra
        if (
            self.congestion_threshold is not None
            and self.outstanding > self.congestion_threshold
        ):
            excess = self.outstanding - self.congestion_threshold
            factor = min(
                self.congestion_penalty * excess, self.congestion_max_stretch
            )
            extra = duration * factor
            duration += extra
            self.congestion_delay += extra
        self._free_at = start + duration
        self.bytes_carried += nbytes
        self.busy_time += duration
        self.outstanding += 1
        done = start + duration + self.latency - self.env.now
        ev = self.env.timeout(done)
        ev.callbacks.append(self._completed)
        return ev

    def _completed(self, _event: Event) -> None:
        self.outstanding -= 1

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of ``elapsed`` (default: env.now) the link was busy."""
        total = self.env.now if elapsed is None else elapsed
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time / total)


class _Flow:
    __slots__ = ("remaining", "event")

    def __init__(self, nbytes: float, event: Event):
        self.remaining = float(nbytes)
        self.event = event


class SharedChannel:
    """Processor-sharing channel: N concurrent flows each get rate/N.

    Completion times are recomputed exactly whenever the flow set
    changes, using a background coordinator process.
    """

    def __init__(self, env: Environment, rate: float, name: str = ""):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.rate = float(rate)
        self.name = name
        self._flows: List[_Flow] = []
        self._last_update = env.now
        self._wakeup: Optional[Process] = None
        self.bytes_carried = 0.0

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def transfer(self, nbytes: float) -> Event:
        """Start a flow of ``nbytes``; returns its completion event."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._drain()
        done = self.env.event()
        if nbytes == 0:
            done.succeed()
            return done
        self._flows.append(_Flow(nbytes, done))
        self.bytes_carried += nbytes
        self._reschedule()
        return done

    # -- internals -------------------------------------------------------
    def _drain(self) -> None:
        """Advance all flows to the current time and complete finished ones."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        per_flow = self.rate * dt / len(self._flows)
        finished = []
        for flow in self._flows:
            flow.remaining -= per_flow
            if flow.remaining <= 1e-9:
                finished.append(flow)
        for flow in finished:
            self._flows.remove(flow)
            flow.event.succeed()

    def _reschedule(self) -> None:
        if self._wakeup is not None and self._wakeup.is_alive:
            self._wakeup.interrupt()
        if self._flows:
            self._wakeup = self.env.process(self._coordinator())

    def _coordinator(self) -> Generator:
        from repro.sim.events import Interrupt

        while self._flows:
            shortest = min(f.remaining for f in self._flows)
            dt = shortest * len(self._flows) / self.rate
            try:
                yield dt
            except Interrupt:
                # Flow set changed; a fresh coordinator has taken over.
                return
            self._drain()

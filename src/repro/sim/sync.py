"""Synchronization primitives built on the kernel.

:class:`Barrier` reproduces the MPI_Barrier semantics the paper's
parallel-I/O experiments use; :class:`Mutex` and :class:`CountdownLatch`
support the CDD locking protocol and coordinated checkpointing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.resources import Request, Resource


class Barrier:
    """A reusable cyclic barrier for ``parties`` processes.

    Each participant yields ``barrier.wait()``; all are released together
    when the last one arrives.  The barrier then resets for the next
    cycle.
    """

    def __init__(self, env: Environment, parties: int):
        if parties <= 0:
            raise ValueError("parties must be positive")
        self.env = env
        self.parties = parties
        self._waiting: List[Event] = []
        #: Number of completed barrier cycles (generations).
        self.generation = 0

    @property
    def n_waiting(self) -> int:
        """Processes currently blocked at the barrier."""
        return len(self._waiting)

    def wait(self) -> Event:
        """Arrive at the barrier; the event triggers on full arrival."""
        ev = self.env.event()
        self._waiting.append(ev)
        if len(self._waiting) >= self.parties:
            waiters, self._waiting = self._waiting, []
            self.generation += 1
            gen = self.generation
            for w in waiters:
                w.succeed(gen)
        return ev


class CountdownLatch:
    """Triggers once after ``n`` countdown events; not reusable."""

    def __init__(self, env: Environment, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.env = env
        self._remaining = n
        self._event = env.event()

    @property
    def remaining(self) -> int:
        return self._remaining

    def count_down(self) -> None:
        """Record one completion; fires the latch at zero."""
        if self._remaining <= 0:
            raise RuntimeError("latch already fired")
        self._remaining -= 1
        if self._remaining == 0:
            self._event.succeed()

    def wait(self) -> Event:
        """Event that triggers when the count reaches zero."""
        if self._event.callbacks is None or self._event.triggered:
            done = self.env.event()
            done.succeed()
            return done
        return self._event


class Mutex:
    """A FIFO mutual-exclusion lock (capacity-1 resource with holder info)."""

    def __init__(self, env: Environment):
        self.env = env
        self._res = Resource(env, capacity=1)
        self._holder = None

    @property
    def locked(self) -> bool:
        return self._res.count > 0

    @property
    def holder(self) -> Optional[object]:
        """Opaque token identifying the current holder (or ``None``)."""
        return self._holder

    def acquire(self, owner: Optional[object] = None) -> Request:
        """Request the lock; yields when granted.  Remember the request."""
        req = self._res.request()

        def _note(_ev: Event, owner: Optional[object] = owner) -> None:
            self._holder = owner

        req.callbacks.append(_note)
        return req

    def release(self, request: Request) -> None:
        """Release the lock previously granted to ``request``."""
        self._holder = None
        self._res.release(request)

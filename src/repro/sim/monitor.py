"""Measurement helpers: sample series and time-weighted statistics.

The benchmark harness relies on these to compute aggregate bandwidth,
utilization, and latency distributions without storing per-event logs
larger than needed.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.sim.core import Environment


class Monitor:
    """Collects (time, value) samples and summarizes them."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, value: float) -> None:
        """Sample ``value`` at the current simulated time."""
        self.times.append(self.env.now)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    # -- summaries -------------------------------------------------------
    def mean(self) -> float:
        """Arithmetic mean of the samples (nan when empty)."""
        if not self.values:
            return math.nan
        return sum(self.values) / len(self.values)

    def total(self) -> float:
        return sum(self.values)

    def min(self) -> float:
        return min(self.values) if self.values else math.nan

    def max(self) -> float:
        return max(self.values) if self.values else math.nan

    def stddev(self) -> float:
        """Population standard deviation (nan when < 2 samples)."""
        n = len(self.values)
        if n < 2:
            return math.nan
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / n)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 100]."""
        if not self.values:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError("q must be within [0, 100]")
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def rate(self) -> float:
        """Total value divided by elapsed simulated time."""
        if self.env.now <= 0:
            return math.nan
        return self.total() / self.env.now

    def summary(self) -> Dict[str, float]:
        """All headline statistics as a dict (for reports)."""
        return {
            "count": float(len(self)),
            "mean": self.mean(),
            "min": self.min(),
            "max": self.max(),
            "stddev": self.stddev(),
            "total": self.total(),
        }


class TimeWeightedStat:
    """Tracks a piecewise-constant signal, e.g. queue length over time.

    ``update(v)`` records that the signal takes value ``v`` from now on;
    the mean weights each value by how long it was held.
    """

    def __init__(self, env: Environment, initial: float = 0.0):
        self.env = env
        self._value = float(initial)
        self._last = env.now
        self._area = 0.0
        self._start = env.now
        self._max = float(initial)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max

    def update(self, value: float) -> None:
        """Change the signal to ``value`` as of the current time."""
        now = self.env.now
        self._area += self._value * (now - self._last)
        self._last = now
        self._value = float(value)
        self._max = max(self._max, self._value)

    def add(self, delta: float) -> None:
        """Increment the signal by ``delta`` (e.g. queue arrival)."""
        self.update(self._value + delta)

    def time_average(self) -> float:
        """Time-weighted mean from construction until now."""
        now = self.env.now
        elapsed = now - self._start
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._last)
        return area / elapsed


def throughput_mb_s(total_bytes: float, elapsed_s: float) -> float:
    """Aggregate bandwidth in MB/s (MB = 1e6 bytes, matching the paper)."""
    if elapsed_s <= 0:
        return math.nan
    return total_bytes / 1e6 / elapsed_s


def merge_series(
    series: Iterable[Tuple[float, float]],
) -> Tuple[List[float], List[float]]:
    """Sort a (time, value) iterable into parallel time/value lists."""
    pts = sorted(series, key=lambda tv: tv[0])
    return [t for t, _ in pts], [v for _, v in pts]

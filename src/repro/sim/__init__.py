"""Discrete-event simulation kernel.

A from-scratch, generator-based DES in the style of SimPy, sized for
simulating cluster storage protocols.  Processes are Python generators
that ``yield`` events; the :class:`~repro.sim.core.Environment` advances
simulated time through a binary-heap event queue with deterministic
tie-breaking.

Typical use::

    from repro.sim import Environment

    env = Environment()

    def hello(env):
        yield env.timeout(1.5)
        print("t =", env.now)

    env.process(hello(env))
    env.run()
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventAborted,
    Interrupt,
    Timeout,
)
from repro.sim.core import Environment, Process, SimulationError
from repro.sim.resources import (
    Container,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.shared import BandwidthLink, SharedChannel
from repro.sim.sync import Barrier, CountdownLatch, Mutex
from repro.sim.monitor import Monitor, TimeWeightedStat
from repro.sim.rand import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthLink",
    "Barrier",
    "Container",
    "CountdownLatch",
    "Environment",
    "Event",
    "EventAborted",
    "Interrupt",
    "Monitor",
    "Mutex",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SharedChannel",
    "SimulationError",
    "Store",
    "TimeWeightedStat",
    "Timeout",
]

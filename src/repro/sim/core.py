"""Environment and Process: the heart of the simulation kernel.

The :class:`Environment` owns simulated time and the event heap.  A
:class:`Process` wraps a generator; every value the generator yields must
be an :class:`~repro.sim.events.Event`, and the process resumes when that
event is processed, receiving the event's value at the ``yield``.

Hot path
--------
Every simulated disk seek, network hop, and CPU slice is one trip
through ``run`` → callbacks → ``Process._resume`` → a fresh
:class:`Timeout`, so this module is written for throughput (see
``benchmarks/bench_kernel.py``):

* ``run`` inlines the event loop instead of calling :meth:`step` per
  event, with the heap and ``heappop`` bound to locals;
* a process may ``yield dt`` (a plain float/int) instead of
  ``yield env.timeout(dt)``: the sleep reuses one :class:`_Sleep`
  event per process, and the run loop resumes it *inline* — no
  callback dispatch, no ``_resume`` frame — re-arming the same event
  with ``heappushpop`` (one heap sift per sleep instead of two);
* :meth:`Environment.timeout` recycles processed ``Timeout`` objects
  from a free list — the run loop returns a ``Timeout`` to the pool
  only when ``sys.getrefcount`` proves nothing else references it, so
  pooling is invisible to code that keeps a handle to the event;
* ``Process`` caches its own bound ``_resume`` (as ``_wake``) so
  parking at a yield costs no bound-method allocation;
* the scheduling entries are plain ``(time, key, event)`` tuples,
  pushed inline where profiling showed the extra frame of
  :meth:`schedule` dominating (``Timeout``, ``succeed``, ``_finish``);
  the key fuses priority and FIFO sequence into one int so heap
  comparisons at equal times touch a single element;
* :meth:`Environment.schedule_many` bulk-inserts a batch of events —
  sequence keys are allocated in iteration order, then the whole batch
  lands with one ``heapify`` when that beats per-event sifts.  Pop
  order depends only on the (unique) ``(time, key)`` totals, never on
  the heap's internal layout, so bulk insertion is timing-invisible;
* a :class:`Recurring` event drives callback-based server loops: the
  run loop calls its ``fn(now)`` directly and re-arms it at the
  returned time with ``heappushpop`` — the device-model analog of the
  ``_Sleep`` fast path, with no generator frame at all (see the
  analytic fast-forward in :mod:`repro.hardware.disk`).

Behaviour (event ordering, error propagation, interrupt semantics) is
identical to the straightforward implementation; the property tests in
``tests/sim`` pin it.
"""

from __future__ import annotations

from heapq import heapify, heappush, heappop, heappushpop
from itertools import count
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.events import (
    _KEY_OFFSET,
    _NORMAL,
    _PENDING,
    _URGENT,
    AllOf,
    AnyOf,
    Event,
    Initialize,
    Interruption,
    Timeout,
)

#: Upper bound on the Timeout free list (plenty for any workload's
#: concurrent-process count while keeping idle memory bounded).
_TIMEOUT_POOL_MAX = 512


class SimulationError(Exception):
    """An unrecoverable error inside the simulation kernel."""


class EmptySchedule(Exception):
    """Internal: the event queue has drained."""


class StopProcess(Exception):
    """Internal carrier for a process's return value (legacy exit path)."""

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value


class _Sleep(Event):
    """Internal: a process's reusable numeric-sleep event.

    The run loop recognises this type and resumes ``process`` directly —
    no callback dispatch, no ``_resume`` frame.  The ``callbacks`` list
    still holds the process's wakeup so :meth:`Environment.step` (the
    generic path) processes it identically.  An interrupt abandons an
    in-flight sleep by clearing ``process``; the orphaned heap entry is
    then skipped when popped.
    """

    __slots__ = ("process", "generator")


class Recurring(Event):
    """A self-rescheduling event driving a callback-based server loop.

    Each time the event is popped the kernel calls ``fn(now)``; the
    callback performs one service step and returns the *absolute* time
    of its next firing, or ``None`` to stop.  The run loop dispatches a
    ``Recurring`` inline and re-arms it with ``heappushpop`` — the
    device-model analog of the ``_Sleep`` fast path, with no generator
    frame behind it.  A stopped ``Recurring`` is re-armed by its owner
    with :meth:`Environment.schedule`; it is never *processed* in the
    :class:`~repro.sim.events.Event` sense, so it cannot be waited on.

    ``callbacks`` holds a fallback that mirrors the inline dispatch so
    the generic :meth:`Environment.step` path behaves identically.
    """

    __slots__ = ("fn",)

    def __init__(
        self,
        env: "Environment",
        fn: Callable[[float], Optional[float]],
    ):
        self.env = env
        self.callbacks = [self._step_fire]
        self._value = None
        self._ok = True
        self._defused = False
        self.fn = fn

    def _step_fire(self, _event: Event) -> None:
        # Generic-path fallback (Environment.step): fire, then restore
        # the callbacks list step() cleared so the event stays armable.
        env = self.env
        nxt = self.fn(env._now)
        self.callbacks = [self._step_fire]
        if nxt is not None:
            heappush(env._queue, (nxt, next(env._seq), self))


class Environment:
    """A simulation environment: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds by convention).
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_active_process",
        "_timeout_pool",
        "processed_events",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = count()
        self._active_process: Optional[Process] = None
        self._timeout_pool: list = []
        #: Heap entries dispatched so far, across all :meth:`run`/:meth:`step`
        #: calls — the denominator for events/sec throughput reporting.
        self.processed_events = 0

    # -- clock & introspection -----------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently executing, if any."""
        return self._active_process

    def __len__(self) -> int:
        return len(self._queue)

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay {delay!r}")
            t = pool.pop()
            t.delay = delay
            t._value = value
            t._ok = True
            t._defused = False
            heappush(self._queue, (self._now + delay, next(self._seq), t))
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        """Start ``generator`` as a new simulation process."""
        return Process(self, generator)

    def process_many(
        self, generators: Iterable[Generator]
    ) -> List["Process"]:
        """Bulk-start processes with one batched heap insertion.

        Equivalent to ``[self.process(g) for g in generators]`` — the
        deferred ``Initialize`` events receive the same urgent keys in
        the same order — but a large batch lands through
        :meth:`schedule_many`'s single ``heapify`` instead of one heap
        sift per process.
        """
        procs: List[Process] = []
        inits: List[Event] = []
        for g in generators:
            p = Process(self, g, defer_init=True)
            procs.append(p)
            target = p._target
            if target is not None:  # always true for a fresh process
                inits.append(target)
        self.schedule_many(inits, priority=_URGENT)
        return procs

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(
        self, event: Event, priority: int = _NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` for processing ``delay`` time units from now."""
        key = next(self._seq)
        if priority != _NORMAL:
            key -= _KEY_OFFSET
        heappush(self._queue, (self._now + delay, key, event))

    def schedule_many(
        self,
        events: Iterable[Event],
        priority: int = _NORMAL,
        delay: float = 0.0,
    ) -> int:
        """Bulk-queue ``events`` for processing ``delay`` from now.

        Sequence keys are allocated in iteration order, so the batch
        is processed exactly as N individual :meth:`schedule` calls
        would be.  When the batch rivals the queue in size the entries
        are appended and the heap rebuilt with one ``heapify``
        (O(H+n)) instead of n sifts (O(n·log H)); pop order depends
        only on the unique ``(time, key)`` totals, never on the heap's
        internal layout, so the strategy choice is timing-invisible.

        Returns the number of events queued.
        """
        seq = self._seq
        at = self._now + delay
        if priority != _NORMAL:
            entries = [(at, next(seq) - _KEY_OFFSET, e) for e in events]
        else:
            entries = [(at, next(seq), e) for e in events]
        n = len(entries)
        if not n:
            return 0
        queue = self._queue
        total = len(queue) + n
        # n sifts cost ~n·log2(total); a rebuild costs ~2·total.
        if n * max(1, total.bit_length()) < 2 * total:
            for entry in entries:
                heappush(queue, entry)
        else:
            queue.extend(entries)
            heapify(queue)
        return n

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event (advancing the clock)."""
        try:
            self._now, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self.processed_events += 1

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise SimulationError(
                f"unhandled failure of {event!r}: {exc!r}"
            ) from exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until
        it is processed, returning its value).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:  # already processed
                    return stop._value
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} lies in the past (now={self._now})"
                    )
                stop = Event(self)
                # Trigger just before any event at exactly `at` runs.
                stop._ok = True
                stop._value = None
                heappush(
                    self._queue, (at, next(self._seq) - _KEY_OFFSET, stop)
                )
            stop.callbacks.append(_stop_callback)

        # Inlined event loop (see module docstring): equivalent to
        # ``while True: self.step()`` minus a method call per event,
        # plus the Timeout free-list recycling and the _Sleep resume
        # path, which drives a sleeping process's generator directly —
        # no callback dispatch, no _resume frame, no event churn.
        queue = self._queue
        pool = self._timeout_pool
        next_seq = self._seq.__next__
        pop = heappop
        pushpop = heappushpop
        sleep_cls = _Sleep
        recurring_cls = Recurring
        timeout_cls = Timeout
        refcount = getrefcount
        _float, _int = float, int
        n_dispatched = 0
        try:
            while True:
                try:
                    now, _, event = pop(queue)
                except IndexError:
                    raise EmptySchedule() from None
                self._now = now
                n_dispatched += 1

                # Inner loop: process `event`; a sleeping process that
                # goes straight back to sleep re-arms its event with
                # heappushpop, fusing the push with the next pop into a
                # single sift and feeding the popped event back here.
                while True:
                    if event.__class__ is sleep_cls:
                        # NOTE: the sleep's callbacks list is left in
                        # place across inline resumes — only the
                        # interrupt path reads it, and it must stay
                        # intact there.  A _Sleep therefore never
                        # reports ``processed``.
                        process = event.process
                        if process is None:
                            # Abandoned by an interrupt mid-flight.
                            self._active_process = None
                            break
                        self._active_process = process
                        try:
                            nxt = event.generator.send(None)
                        except (StopIteration, StopProcess) as exc:
                            process._finish(exc.value)
                            self._active_process = None
                            break
                        except BaseException as exc:
                            process._fail_out(exc)
                            self._active_process = None
                            break
                        cls = nxt.__class__
                        if (cls is _float or cls is _int) and nxt >= 0:
                            # Sleep-to-sleep: re-arm the same event.
                            self._active_process = None
                            now, _, event = pushpop(
                                queue, (now + nxt, next_seq(), event)
                            )
                            self._now = now
                            n_dispatched += 1
                            continue
                        process._park(nxt)
                        self._active_process = None
                        break

                    if event.__class__ is recurring_cls:
                        # Callback-based server step: fire and re-arm
                        # at the returned time (heappushpop fuses the
                        # re-arm push with the next pop).  Like _Sleep,
                        # a Recurring's callbacks stay in place — only
                        # the generic step() fallback uses them.
                        nxt = event.fn(now)
                        if nxt is None:
                            break
                        now, _, event = pushpop(
                            queue, (nxt, next_seq(), event)
                        )
                        self._now = now
                        n_dispatched += 1
                        continue

                    callbacks = event.callbacks
                    event.callbacks = None
                    if callbacks is None:  # pragma: no cover - defensive
                        break
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)

                    if not event._ok and not event._defused:
                        exc = event._value
                        raise SimulationError(
                            f"unhandled failure of {event!r}: {exc!r}"
                        ) from exc

                    # Recycle the Timeout when provably unreferenced:
                    # the only two references are the loop variable and
                    # getrefcount's argument.  Any process/condition/
                    # user variable still holding the event raises the
                    # count.
                    if (
                        event.__class__ is timeout_cls
                        and refcount(event) == 2
                        and len(pool) < _TIMEOUT_POOL_MAX
                    ):
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                    break
        except _StopSimulation as exc:
            return exc.value
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                if isinstance(until, Event):
                    raise SimulationError(
                        "run(until=event): queue drained before the event "
                        "triggered"
                    ) from None
            return None
        finally:
            self.processed_events += n_dispatched


class _StopSimulation(Exception):
    """Internal: raised by the stop-event callback to end :meth:`run`."""

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise _StopSimulation(event._value)
    # The awaited event failed: surface its exception out of run().
    event.defused()
    raise event._value


class Process(Event):
    """A running simulation process.

    A process is itself an event: it triggers when the generator returns,
    with the generator's return value, so processes can wait on each
    other simply by yielding them.
    """

    __slots__ = ("_generator", "_target", "_wake", "_sleep", "_sleep_cbs")

    def __init__(
        self,
        env: Environment,
        generator: Generator,
        *,
        defer_init: bool = False,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Pre-bind _resume once: parking at a yield otherwise pays a
        # bound-method allocation every time (Initialize reuses it too).
        self._wake = self._resume
        # Reusable sleep event for numeric yields (created on first use).
        self._sleep: Optional[Event] = None
        self._sleep_cbs: Optional[list] = None
        # defer_init builds the Initialize unscheduled; the caller
        # (Environment.process_many) bulk-queues it.
        self._target: Optional[Event] = Initialize(
            env, self, schedule=not defer_init
        )

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self._generator
        try:
            while True:
                try:
                    if event._ok:
                        next_event = generator.send(event._value)
                    else:
                        # The awaited event failed: deliver its exception.
                        event._defused = True
                        next_event = generator.throw(event._value)
                except (StopIteration, StopProcess) as exc:
                    self._finish(exc.value)
                    break
                except BaseException as exc:
                    # The generator itself raised (or re-raised): the
                    # process fails with that exception as its outcome.
                    self._fail_out(exc)
                    break

                cls = next_event.__class__
                if cls is float or cls is int:
                    # Numeric yield: ``yield dt`` sleeps ``dt`` exactly
                    # like ``yield env.timeout(dt)`` but reuses one
                    # per-process sleep event instead of allocating a
                    # Timeout + callbacks list + bound method per wait.
                    if next_event >= 0:
                        sleep = self._sleep
                        if sleep is not None:
                            # Free for reuse: an interrupted-out-of
                            # (still in-flight) sleep is abandoned by
                            # Interruption._deliver, so reaching here
                            # means the event was fully processed.
                            sleep.callbacks = self._sleep_cbs
                        else:
                            sleep = _Sleep(env)
                            sleep._ok = True
                            sleep._value = None
                            sleep.process = self
                            sleep.generator = generator
                            self._sleep = sleep
                            cbs = self._sleep_cbs = sleep.callbacks
                            cbs.append(self._wake)
                        heappush(
                            env._queue,
                            (env._now + next_event, next(env._seq), sleep),
                        )
                        self._target = sleep
                        break
                    # Negative delay: surface the same ValueError a
                    # Timeout would raise, at the yield point.
                    err = Event(env)
                    err._ok = False
                    err._value = ValueError(
                        f"negative timeout delay {next_event!r}"
                    )
                    event = err
                    continue

                try:
                    callbacks = next_event.callbacks
                except AttributeError:
                    self._fail_out(
                        TypeError(
                            f"process yielded a non-event: {next_event!r}"
                        )
                    )
                    break

                if callbacks is not None:
                    # Pending or triggered-but-unprocessed: park here.
                    callbacks.append(self._wake)
                    self._target = next_event
                    break
                # Already processed: loop and deliver immediately.
                event = next_event
        finally:
            env._active_process = None

    def _park(self, next_event: Any) -> None:
        """Handle a yielded value after an inline sleep resume.

        The run loop drives numeric-to-numeric sleeps itself; anything
        else the generator yields after a sleep lands here — an event to
        park on, an already-processed event to deliver immediately, a
        negative delay to reject, or a non-event to fail on.  Mirrors
        the corresponding arms of :meth:`_resume`.
        """
        env = self.env
        generator = self._generator
        wake = self._wake
        while True:
            cls = next_event.__class__
            if cls is float or cls is int:
                if next_event >= 0:
                    sleep = self._sleep
                    if sleep is not None:
                        sleep.callbacks = self._sleep_cbs
                    else:
                        sleep = _Sleep(env)
                        sleep._ok = True
                        sleep._value = None
                        sleep.process = self
                        sleep.generator = generator
                        self._sleep = sleep
                        cbs = self._sleep_cbs = sleep.callbacks
                        cbs.append(wake)
                    heappush(
                        env._queue,
                        (env._now + next_event, next(env._seq), sleep),
                    )
                    self._target = sleep
                    return
                try:
                    next_event = generator.throw(
                        ValueError(f"negative timeout delay {next_event!r}")
                    )
                except (StopIteration, StopProcess) as exc:
                    self._finish(exc.value)
                    return
                except BaseException as exc:
                    self._fail_out(exc)
                    return
                continue

            try:
                callbacks = next_event.callbacks
            except AttributeError:
                self._fail_out(
                    TypeError(f"process yielded a non-event: {next_event!r}")
                )
                return

            if callbacks is not None:
                callbacks.append(wake)
                self._target = next_event
                return

            # Already processed: deliver its outcome immediately.
            event = next_event
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event._defused = True
                    next_event = generator.throw(event._value)
            except (StopIteration, StopProcess) as exc:
                self._finish(exc.value)
                return
            except BaseException as exc:
                self._fail_out(exc)
                return

    def _finish(self, value: Any) -> None:
        self._target = None
        self._ok = True
        self._value = value
        env = self.env
        heappush(env._queue, (env._now, next(env._seq), self))

    def _fail_out(self, exc: BaseException) -> None:
        self._target = None
        self._ok = False
        self._value = exc
        env = self.env
        heappush(env._queue, (env._now, next(env._seq), self))

"""Environment and Process: the heart of the simulation kernel.

The :class:`Environment` owns simulated time and the event heap.  A
:class:`Process` wraps a generator; every value the generator yields must
be an :class:`~repro.sim.events.Event`, and the process resumes when that
event is processed, receiving the event's value at the ``yield``.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional

from repro.sim.events import (
    _NORMAL,
    _PENDING,
    AllOf,
    AnyOf,
    Event,
    Initialize,
    Interruption,
    Timeout,
)


class SimulationError(Exception):
    """An unrecoverable error inside the simulation kernel."""


class EmptySchedule(Exception):
    """Internal: the event queue has drained."""


class StopProcess(Exception):
    """Internal carrier for a process's return value (legacy exit path)."""

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value


class Environment:
    """A simulation environment: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds by convention).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = count()
        self._active_process: Optional[Process] = None

    # -- clock & introspection -----------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process currently executing, if any."""
        return self._active_process

    def __len__(self) -> int:
        return len(self._queue)

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        """Start ``generator`` as a new simulation process."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event triggering when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def schedule(
        self, event: Event, priority: int = _NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` for processing ``delay`` time units from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event (advancing the clock)."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise SimulationError(
                f"unhandled failure of {event!r}: {exc!r}"
            ) from exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until
        it is processed, returning its value).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:  # already processed
                    return stop._value
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} lies in the past (now={self._now})"
                    )
                stop = Event(self)
                # Trigger just before any event at exactly `at` runs.
                stop._ok = True
                stop._value = None
                heapq.heappush(
                    self._queue, (at, _NORMAL - 1, next(self._seq), stop)
                )
            stop.callbacks.append(_stop_callback)

        try:
            while True:
                self.step()
        except _StopSimulation as exc:
            return exc.value
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                if isinstance(until, Event):
                    raise SimulationError(
                        "run(until=event): queue drained before the event "
                        "triggered"
                    ) from None
            return None


class _StopSimulation(Exception):
    """Internal: raised by the stop-event callback to end :meth:`run`."""

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise _StopSimulation(event._value)
    # The awaited event failed: surface its exception out of run().
    event.defused()
    raise event._value


class Process(Event):
    """A running simulation process.

    A process is itself an event: it triggers when the generator returns,
    with the generator's return value, so processes can wait on each
    other simply by yielding them.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: Environment, generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        next_event = self._generator.send(event._value)
                    else:
                        # The awaited event failed: deliver its exception.
                        event.defused()
                        next_event = self._generator.throw(event._value)
                except (StopIteration, StopProcess) as exc:
                    self._finish(exc.value)
                    break
                except BaseException as exc:
                    # The generator itself raised (or re-raised): the
                    # process fails with that exception as its outcome.
                    self._fail_out(exc)
                    break

                if not isinstance(next_event, Event):
                    self._fail_out(
                        TypeError(
                            f"process yielded a non-event: {next_event!r}"
                        )
                    )
                    break

                if next_event.callbacks is not None:
                    # Pending or triggered-but-unprocessed: park here.
                    next_event.callbacks.append(self._resume)
                    self._target = next_event
                    break
                # Already processed: loop and deliver immediately.
                event = next_event
        finally:
            self.env._active_process = None

    def _finish(self, value: Any) -> None:
        self._target = None
        self._ok = True
        self._value = value
        self.env.schedule(self)

    def _fail_out(self, exc: BaseException) -> None:
        self._target = None
        self._ok = False
        self._value = exc
        self.env.schedule(self)

"""Event primitives for the simulation kernel.

Events move through three states: *pending* (created but not scheduled),
*triggered* (scheduled on the environment's queue with a value), and
*processed* (callbacks have run).  Failures propagate exceptions into the
waiting process at its ``yield`` point.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.core import Environment, Process


class EventAborted(Exception):
    """Raised in a waiter when the event it waited on was aborted."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.core.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Sentinel distinguishing "not yet triggered" from a ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Callbacks registered before the event is processed run exactly once,
    in registration order, when the environment pops the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed; set to
        #: ``None`` afterwards, which marks the event as processed.
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if not self.triggered:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        heappush(env._queue, (env._now, next(env._seq), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(env._queue, (env._now, next(env._seq), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome into this one (callback form)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused()
            self.fail(event._value)

    def defused(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- composition ---------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Flat initialization + inline push: this constructor runs once
        # per simulated service interval, so it skips the Event.__init__
        # and Environment.schedule frames.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        heappush(env._queue, (env._now + delay, next(env._seq), self))


class ConditionValue:
    """Ordered mapping of the events a condition collected, with values."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits on a set of events until ``evaluate(events, n_done)`` is true."""

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        if not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Only *processed* events count: a Timeout is born triggered
            # (value pre-set) but has not occurred until it is processed.
            if event.callbacks is None and event._ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                # The condition has already fired; swallow stragglers'
                # failures so they do not crash the run unhandled.
                event.defused()
            return
        self._count += 1
        if not event._ok:
            event.defused()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list, count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_event(events: list, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Triggers when every constituent event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers when at least one constituent event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_event, events)


class Initialize(Event):
    """Internal: kicks a newly created process at the current time.

    With ``schedule=False`` the event is built triggered but *not*
    queued — :meth:`repro.sim.core.Environment.process_many` collects
    such deferred initializers and bulk-inserts them (urgent priority,
    sequence keys in creation order) via ``schedule_many``.
    """

    __slots__ = ()

    def __init__(
        self, env: "Environment", process: "Process", schedule: bool = True
    ):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        if schedule:
            heappush(
                env._queue, (env._now, next(env._seq) - _KEY_OFFSET, self)
            )


class Interruption(Event):
    """Internal: delivers an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        if process.triggered:
            raise RuntimeError("cannot interrupt a terminated process")
        if process is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        self.env.schedule(self, priority=_URGENT)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            return  # process finished before the interrupt arrived
        # Detach the process from whatever it is currently waiting on.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
            if target is process._sleep:
                # The reusable sleep event stays on the heap; abandon
                # it so the process builds a fresh one next sleep, and
                # detach the process so the run loop's inline resume
                # skips the orphaned entry when it pops.
                target.process = None
                process._sleep = None
        process._resume(self)


#: Scheduling priorities: urgent events (process init/interrupt) run
#: before normal events scheduled at the same simulated time.  In heap
#: entries ``(time, key, event)`` the priority is fused into the
#: sequence key: normal events use the bare sequence number, urgent
#: events subtract ``_KEY_OFFSET`` so they sort first at equal times
#: while staying FIFO among themselves.
_URGENT = 0
_NORMAL = 1
_KEY_OFFSET = 1 << 62

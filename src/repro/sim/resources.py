"""Queued resources: counting resources, priority resources, stores.

Requests are events; a process acquires with ``yield resource.request()``
and must release with ``resource.release(req)`` (or use the request as a
context manager inside the process generator).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, List, Optional

from repro.sim.core import Environment
from repro.sim.events import Event


class Request(Event):
    """A pending acquisition of one slot of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._enqueue(self)
        resource._trigger_pending()

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        if not self.triggered:
            self.resource._remove(self)

    # Context-manager sugar: ``with res.request() as req: yield req``.
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Release(Event):
    """Immediate event confirming a release (for symmetry with SimPy)."""

    __slots__ = ()


class Resource:
    """A counting resource with a FIFO wait queue.

    ``capacity`` slots may be held concurrently; further requests queue.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    # -- public API ------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Queue for one slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a previously granted slot.

        Releasing a request that was never granted *cancels* it instead
        (so ``with resource.request() as req`` stays correct when the
        waiting process is interrupted mid-queue); releasing a request
        that was already released is an error.
        """
        try:
            self.users.remove(request)
        except ValueError:
            if not request.triggered:
                request.cancel()
            else:
                raise RuntimeError(
                    "release() of a request that does not hold the "
                    "resource"
                ) from None
        ev = Release(self.env)
        self._trigger_pending()
        ev.succeed()
        return ev

    # -- queue mechanics (overridden by PriorityResource) -----------------
    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _remove(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _pop_next(self) -> Optional[Request]:
        return self.queue.pop(0) if self.queue else None

    def _trigger_pending(self) -> None:
        while len(self.users) < self.capacity:
            nxt = self._pop_next()
            if nxt is None:
                return
            self.users.append(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    """A resource request carrying a priority (lower = more urgent)."""

    __slots__ = ("priority", "_key")

    def __init__(self, resource: "PriorityResource", priority: float = 0):
        self.priority = priority
        self._key = (priority, next(resource._tiebreak))
        super().__init__(resource)


class PriorityResource(Resource):
    """A resource whose waiters are served lowest-priority-value first."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._tiebreak = count()
        self._heap: list = []

    def request(self, priority: float = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _enqueue(self, request: Request) -> None:
        heapq.heappush(self._heap, (request._key, request))  # type: ignore[attr-defined]

    def _remove(self, request: Request) -> None:
        for i, (_, req) in enumerate(self._heap):
            if req is request:
                self._heap[i] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                return

    def _pop_next(self) -> Optional[Request]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[1]


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._getters.append(self)
        container._dispatch()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._putters.append(self)
        container._dispatch()


class Container:
    """A homogeneous bulk quantity with blocking put/get.

    Models things like buffer pool pages or battery-style budgets.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: List[ContainerGet] = []
        self._putters: List[ContainerPut] = []

    @property
    def level(self) -> float:
        """Quantity currently stored."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; blocks while it would exceed capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; blocks until available."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                put = self._putters[0]
                if self._level + put.amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._getters:
                get = self._getters[0]
                if self._level >= get.amount:
                    self._getters.pop(0)
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progressed = True


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(
        self,
        store: "Store",
        filter: Optional[Callable[[Any], bool]] = None,
    ):
        super().__init__(store.env)
        self.filter = filter
        store._getters.append(self)
        store._dispatch()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._putters.append(self)
        store._dispatch()


class Store:
    """A FIFO store of discrete items with optional filtered gets.

    The workhorse for message queues between simulated cluster nodes.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List[StoreGet] = []
        self._putters: List[StorePut] = []

    def put(self, item: Any) -> StorePut:
        """Deposit ``item``; blocks while the store is full."""
        return StorePut(self, item)

    def get(
        self, filter: Optional[Callable[[Any], bool]] = None
    ) -> StoreGet:
        """Withdraw the oldest item (optionally the oldest matching one)."""
        return StoreGet(self, filter)

    def __len__(self) -> int:
        return len(self.items)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progressed = True
            for get in list(self._getters):
                idx = None
                if get.filter is None:
                    if self.items:
                        idx = 0
                else:
                    for i, item in enumerate(self.items):
                        if get.filter(item):
                            idx = i
                            break
                if idx is not None:
                    self._getters.remove(get)
                    get.succeed(self.items.pop(idx))
                    progressed = True

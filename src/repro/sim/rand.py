"""Deterministic named random streams.

Every stochastic model component draws from its own named stream so that
adding a component never perturbs another's draws — a standard DES
variance-reduction / reproducibility technique.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Sequence

import numpy as np


class RandomStreams:
    """A factory of independent, reproducible NumPy generators.

    Streams are keyed by name; the same (seed, name) pair always yields
    the same sequence, independent of creation order.
    """

    def __init__(self, seed: int = 0x5EED):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()
            ).digest()
            sub_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(sub_seed)
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw in [low, high)."""
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, seq: Sequence[Any]) -> Any:
        """Uniformly choose one element of ``seq``."""
        idx = int(self.stream(name).integers(0, len(seq)))
        return seq[idx]

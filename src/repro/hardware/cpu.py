"""CPU cost model for storage-path software work.

A node's storage work (driver entry, protocol processing, parity XOR,
memory copies) contends for a single CPU resource — the Pentium II/400
of a Trojans node.  Costs are charged through a FIFO bandwidth-style
link so that concurrent storage activity on one node serializes
realistically.
"""

from __future__ import annotations

from repro.config import CpuParams
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.shared import BandwidthLink


class Cpu:
    """One node's CPU as a serial work queue.

    ``busy(seconds)`` returns an event completing after the CPU has spent
    that much *serial* time; queued work from other processes delays it.
    """

    def __init__(self, env: Environment, params: CpuParams, node_id: int = 0):
        self.env = env
        self.params = params
        self.node_id = node_id
        # rate=1.0: "bytes" are seconds of CPU work.
        self._work = BandwidthLink(env, rate=1.0, name=f"cpu{node_id}")

    def busy(self, seconds: float) -> Event:
        """Charge ``seconds`` of CPU time (FIFO with other charges)."""
        if seconds < 0:
            raise ValueError("negative CPU time")
        return self._work.transfer(seconds)

    def xor(self, nbytes: float, passes: int = 1) -> Event:
        """Charge the cost of ``passes`` XOR passes over ``nbytes``."""
        return self.busy(passes * self.params.xor_time(nbytes))

    def memcpy(self, nbytes: float) -> Event:
        """Charge one memory copy of ``nbytes``."""
        return self.busy(nbytes / self.params.memcpy_rate)

    def driver_entry(self, kernel_level: bool = True) -> Event:
        """Charge a storage-driver entry (kernel CDD vs user-level RPC)."""
        p = self.params
        cost = (
            p.kernel_request_overhead_s
            if kernel_level
            else p.user_level_request_overhead_s
        )
        return self.busy(cost)

    def utilization(self) -> float:
        return self._work.utilization()

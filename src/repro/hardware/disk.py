"""Mechanical disk model.

Service time for a request at byte offset ``o`` of size ``s``::

    controller + seek(|o - head|) + rotation + s / media_rate

where seek and rotation are skipped when the request continues a
sequential run (within ``sequential_window_bytes`` ahead of the head).
Seek time interpolates between track-to-track and full-stroke with the
usual square-root profile.

Requests are served one at a time by a server process; the queue
discipline is pluggable (see :mod:`repro.io.scheduler`).

Analytic fast-forward
---------------------
With :data:`FAST_FORWARD` enabled (the default; set ``REPRO_DISK_FF=0``
to disable) the server process is replaced by a callback-driven loop
built on :class:`repro.sim.core.Recurring`: the whole service interval
is computed in closed form at dispatch and a single marker firing per
completion performs the span/stats/completion bookkeeping — no
generator frame, and no Store machinery at all: submissions land in a
plain list, and a parked server is woken by arming the marker directly.
Relative to the phase path this *removes* heap events (the StorePut
per submit, the StoreGet per idle grant), which is order-isomorphic —
deleting an event that runs no callbacks only shifts later sequence
numbers uniformly, never reordering them (see DESIGN §6.13 for the
full legality argument).  Event order, spans, and float timestamps are
byte-identical to the phase-by-phase path; the golden equivalence
suite pins this.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from heapq import heappush
from math import sqrt as _sqrt
from typing import TYPE_CHECKING, List, Optional

from repro.config import DiskParams
from repro.errors import AddressError, DiskFailedError
from repro.obs import runtime as _obs
from repro.obs.trace import DISK_QUEUE_WAIT, DISK_SERVICE
from repro.sim.core import Environment, Recurring
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.io.scheduler import DiskScheduler

#: Process-wide default for the analytic fast-forward (per-disk override
#: via ``Disk(fast_forward=...)``).  Read at Disk construction time, so
#: tests and A/B benchmarks can flip it before building a cluster.
FAST_FORWARD = os.environ.get("REPRO_DISK_FF", "1").lower() not in (
    "0",
    "off",
    "no",
    "false",
)


@dataclass
class DiskStats:
    """Cumulative per-disk accounting."""

    reads: int = 0
    writes: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    busy_time: float = 0.0
    #: Busy time split by priority class: foreground (class 0) vs
    #: background (e.g. RAID-x image flushes) — background work has
    #: slack, so only the foreground share sits on the critical path.
    busy_time_foreground: float = 0.0
    busy_time_background: float = 0.0
    seek_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    sequential_hits: int = 0
    #: High-water mark of the submitted-but-not-completed count — the
    #: always-on queue-depth signal (one compare per submit, cheap
    #: enough to stay within the perf-smoke floors).
    queue_depth_hw: int = 0

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written


@dataclass(slots=True)
class DiskRequest:
    """One disk operation; ``done`` triggers with the service time."""

    op: str  # "read" | "write"
    offset: int  # byte offset on this disk
    nbytes: int
    done: Event = field(repr=False, default=None)  # type: ignore[assignment]
    submitted_at: float = 0.0
    #: Scheduling priority: lower values served first when the queue
    #: discipline honours priorities (background mirror flushes use >0).
    priority: int = 0
    #: Trace id of the logical request this op belongs to (see repro.obs).
    trace: Optional[int] = None

    def validate(self, capacity: int) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"bad disk op {self.op!r}")
        if self.nbytes < 0:
            raise ValueError("negative request size")
        if self.offset < 0 or self.offset + self.nbytes > capacity:
            raise AddressError(
                f"request [{self.offset}, {self.offset + self.nbytes}) "
                f"outside disk of {capacity} bytes"
            )


class Disk:
    """A single simulated disk with its own server process."""

    def __init__(
        self,
        env: Environment,
        params: Optional[DiskParams] = None,
        disk_id: int = 0,
        scheduler: Optional["DiskScheduler"] = None,
        name: str = "",
        fast_forward: Optional[bool] = None,
    ):
        from repro.io.scheduler import FifoScheduler

        self.env = env
        self.params = params or DiskParams()
        self.disk_id = disk_id
        self.name = name or f"disk{disk_id}"
        # NB: "scheduler or ..." would discard a custom scheduler — an
        # empty DiskScheduler is falsy because it defines __len__.
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        self.stats = DiskStats()
        self.failed = False
        #: Current head position (byte offset).
        self._head = 0
        #: End of the last completed request, for sequential detection.
        self._last_end = 0
        self._inbox: Store = Store(env)
        self._pending = 0
        self._ff = FAST_FORWARD if fast_forward is None else fast_forward
        if self._ff:
            # Callback-driven server: one Recurring firing per request
            # completion.  The marker's fn dispatches on _ff_req: None
            # means "wake from park" (grant _ff_wake_req), anything
            # else is the in-flight request completing now.
            self._ff_marker = Recurring(env, self._ff_step)
            self._ff_items: List[DiskRequest] = []
            self._ff_parked = True
            self._ff_wake_req: Optional[DiskRequest] = None
            self._ff_req: Optional[DiskRequest] = None
            self._ff_info: Optional[tuple] = None
            # DiskParams is frozen: bind the closed-form constants once
            # (avg_rotation_s is a computed property — one call, not
            # one per dispatch).
            p = self.params
            self._ff_ctrl = p.controller_overhead_s
            self._ff_window = p.sequential_window_bytes
            self._ff_rate = p.media_rate
            self._ff_rot = p.avg_rotation_s
            self._ff_t2t = p.track_to_track_seek_s
            self._ff_stroke = p.full_stroke_seek_s - p.track_to_track_seek_s
            self._ff_cap = p.capacity_bytes
        else:
            self._server = env.process(self._serve())

    # -- public API ------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.params.capacity_bytes

    @property
    def queue_depth(self) -> int:
        """Requests submitted but not yet completed."""
        return self._pending

    def submit(
        self, op: str, offset: int, nbytes: int, priority: int = 0,
        trace: Optional[int] = None,
    ) -> Event:
        """Queue a request; returns the completion event.

        The event fails with :class:`DiskFailedError` if the disk is (or
        becomes) failed before the request is served.  ``trace`` tags the
        op's queue-wait/service spans with a logical request's trace id.
        """
        req = DiskRequest(
            op=op,
            offset=offset,
            nbytes=nbytes,
            done=self.env.event(),
            submitted_at=self.env.now,
            priority=priority,
            trace=trace,
        )
        req.validate(self.capacity)
        if self.failed:
            req.done.fail(DiskFailedError(self.disk_id))
            return req.done
        self._pending += 1
        if self._pending > self.stats.queue_depth_hw:
            self.stats.queue_depth_hw = self._pending
        if self._ff:
            if self._ff_parked:
                # Wake the parked server: arm the marker at now.  The
                # phase path's put+grant pair becomes one heap event;
                # the dropped StorePut ran no callbacks, so the removal
                # is a uniform sequence shift (DESIGN §6.13).
                self._ff_parked = False
                self._ff_wake_req = req
                self.env.schedule(self._ff_marker)
            else:
                self._ff_items.append(req)
        else:
            self._inbox.put(req)
        return req.done

    def read(self, offset: int, nbytes: int, priority: int = 0,
             trace: Optional[int] = None) -> Event:
        """Shorthand for a read request."""
        return self.submit("read", offset, nbytes, priority, trace)

    def write(self, offset: int, nbytes: int, priority: int = 0,
              trace: Optional[int] = None) -> Event:
        """Shorthand for a write request."""
        return self.submit("write", offset, nbytes, priority, trace)

    def fail(self) -> None:
        """Mark the disk failed; subsequent and queued requests error."""
        self.failed = True

    def repair(self) -> None:
        """Bring a failed disk back (contents considered rebuilt)."""
        self.failed = False

    def utilization(self) -> float:
        """Busy fraction since simulation start."""
        if self.env.now <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / self.env.now)

    # -- service model -----------------------------------------------------
    def seek_time(self, distance_bytes: int) -> float:
        """Seek time for a head movement of ``distance_bytes``.

        Square-root interpolation between track-to-track and full-stroke,
        the standard fit for mechanical arms.
        """
        if distance_bytes <= 0:
            return 0.0
        p = self.params
        frac = min(1.0, distance_bytes / p.capacity_bytes)
        return p.track_to_track_seek_s + (
            p.full_stroke_seek_s - p.track_to_track_seek_s
        ) * math.sqrt(frac)

    def service_time(self, req: DiskRequest) -> tuple:
        """(seek, rotation, transfer) components for ``req`` now."""
        p = self.params
        sequential = (
            req.offset >= self._last_end
            and req.offset - self._last_end < p.sequential_window_bytes
        )
        if sequential:
            seek = 0.0
            rot = 0.0
        else:
            seek = self.seek_time(abs(req.offset - self._head))
            rot = p.avg_rotation_s
        xfer = req.nbytes / p.media_rate
        return seek, rot, xfer

    def _serve(self):
        sched = self.scheduler
        while True:
            # Refill the scheduler from the inbox; block when idle.
            if sched.empty():
                req = yield self._inbox.get()
                sched.push(req)
            while len(self._inbox) > 0:
                sched.push(self._inbox.items.pop(0))

            req = sched.pop(head=self._head)
            if self.failed:
                self._pending -= 1
                req.done.fail(DiskFailedError(self.disk_id))
                continue

            seek, rot, xfer = self.service_time(req)
            service = self.params.controller_overhead_s + seek + rot + xfer
            tracer = _obs.TRACER
            if tracer.enabled:
                t0 = self.env.now
                if t0 > req.submitted_at:
                    tracer.record(
                        DISK_QUEUE_WAIT,
                        self.name,
                        req.submitted_at,
                        t0,
                        trace=req.trace,
                        op=req.op,
                        priority=req.priority,
                    )
            yield service  # numeric sleep: kernel fast path
            if tracer.enabled:
                now = self.env.now
                tracer.record(
                    DISK_SERVICE,
                    self.name,
                    now - service,
                    now,
                    trace=req.trace,
                    op=req.op,
                    nbytes=req.nbytes,
                    seek=seek,
                    rotation=rot,
                    transfer=xfer,
                    priority=req.priority,
                )

            st = self.stats
            st.busy_time += service
            if req.priority == 0:
                st.busy_time_foreground += service
            else:
                st.busy_time_background += service
            st.seek_time += seek
            st.rotation_time += rot
            st.transfer_time += xfer
            if seek == 0.0 and rot == 0.0:
                st.sequential_hits += 1
            if req.op == "read":
                st.reads += 1
                st.bytes_read += req.nbytes
            else:
                st.writes += 1
                st.bytes_written += req.nbytes

            self._head = req.offset + req.nbytes
            self._last_end = self._head
            self._pending -= 1
            if self.failed:
                req.done.fail(DiskFailedError(self.disk_id))
            else:
                req.done.succeed(service)

    # -- analytic fast-forward ---------------------------------------------
    # A callback transliteration of _serve.  Every action with an
    # observable effect (scheduler drain/pop, span record, stats
    # update, done trigger) runs in the same relative order and
    # allocates heap sequence numbers at the same points as the
    # generator; the Store round-trips the generator needs to block are
    # dropped entirely, which only removes callback-free heap events —
    # a uniform sequence shift.  The two paths are therefore
    # order-isomorphic: identical timestamps, span streams, and
    # counters.  DESIGN §6.13 spells out the argument.

    # -- node fast-forward hooks (see repro.hardware.node) ----------------

    def ff_ready(self, op: str, offset: int, nbytes: int) -> bool:
        """True when a node fast-forward may preload this request.

        Requires the callback server (so the marker is free to arm),
        parked with no backlog and nothing in flight, a healthy disk,
        and a request that would pass :meth:`DiskRequest.validate` —
        folded in here so the claim/preload sequence that follows can
        never raise after upstream resources have been charged.
        """
        return (
            self._ff
            and self._ff_parked
            and not self.failed
            and self._pending == 0
            and (op == "read" or op == "write")
            and offset >= 0
            and nbytes >= 0
            and offset + nbytes <= self.params.capacity_bytes
        )

    def ff_preload(
        self,
        op: str,
        offset: int,
        nbytes: int,
        dispatch_at: float,
        priority: int = 0,
        trace: Optional[int] = None,
    ) -> Event:
        """Price a request *now* that will reach the disk at ``dispatch_at``.

        The node fast-forward has established (conflict predicate, see
        DESIGN §6.14) that this parked disk stays untouched until the
        request's bus transfer completes at ``dispatch_at``, so the
        wake-at-dispatch marker firing can run early: same scheduler
        push/pop (depth accounting), same closed-form pricing against
        the same head state, with the completion marker armed directly
        at ``dispatch_at + service`` — skipping the wake event.  The
        caller must have checked :meth:`ff_ready`.
        """
        req = DiskRequest(
            op=op,
            offset=offset,
            nbytes=nbytes,
            done=self.env.event(),
            submitted_at=dispatch_at,
            priority=priority,
            trace=trace,
        )
        self._pending += 1
        if self._pending > self.stats.queue_depth_hw:
            self.stats.queue_depth_hw = self._pending
        self._ff_parked = False
        sched = self.scheduler
        sched.push(req)
        req = sched.pop(head=self._head)
        # The closed form below mirrors _ff_next term for term (kept
        # duplicated: a shared helper would put a call frame on the
        # per-completion hot path).  Head state read at submit time is
        # the head state at dispatch time — the predicate guarantees no
        # intervening service.
        off = req.offset
        last_end = self._last_end
        if off >= last_end and off - last_end < self._ff_window:
            seek = 0.0
            rot = 0.0
        else:
            dist = off - self._head
            if dist < 0:
                dist = -dist
            if dist <= 0:
                seek = 0.0
            else:
                frac = dist / self._ff_cap
                if frac > 1.0:
                    frac = 1.0
                seek = self._ff_t2t + self._ff_stroke * _sqrt(frac)
            rot = self._ff_rot
        xfer = req.nbytes / self._ff_rate
        service = self._ff_ctrl + seek + rot + xfer
        self._ff_req = req
        self._ff_info = (service, seek, rot, xfer, _obs.TRACER)
        # Phase path: the wake marker pops at dispatch_at and the run
        # loop re-arms it at ``now + service`` with now == dispatch_at.
        # Same float expression here, armed early.
        env = self.env
        heappush(
            env._queue, (dispatch_at + service, next(env._seq), self._ff_marker)
        )
        return req.done

    def _ff_step(self, now: float) -> Optional[float]:
        """Marker firing: wake from park, or complete the request at ``now``.

        Returns the absolute time of the next completion (the run loop
        re-arms the marker) or None when the disk parks or the marker
        was re-armed inline for an immediate grant.
        """
        req = self._ff_req
        if req is None:
            # Wake from park — the loop's ``req = yield inbox.get()``.
            self.scheduler.push(self._ff_wake_req)
            self._ff_wake_req = None
            service = self._ff_next(now)
            return None if service is None else now + service

        service, seek, rot, xfer, tracer = self._ff_info  # type: ignore[misc]
        if tracer.enabled:
            tracer.record(
                DISK_SERVICE,
                self.name,
                now - service,
                now,
                trace=req.trace,
                op=req.op,
                nbytes=req.nbytes,
                seek=seek,
                rotation=rot,
                transfer=xfer,
                priority=req.priority,
            )
        st = self.stats
        nbytes = req.nbytes
        st.busy_time += service
        if req.priority == 0:
            st.busy_time_foreground += service
        else:
            st.busy_time_background += service
        st.seek_time += seek
        st.rotation_time += rot
        st.transfer_time += xfer
        if seek == 0.0 and rot == 0.0:
            st.sequential_hits += 1
        if req.op == "read":
            st.reads += 1
            st.bytes_read += nbytes
        else:
            st.writes += 1
            st.bytes_written += nbytes

        self._head = self._last_end = req.offset + nbytes
        self._pending -= 1
        done = req.done
        if self.failed:
            done.fail(DiskFailedError(self.disk_id))
        else:
            # Inlined done.succeed(service): a request reaching its
            # completion firing can never be pre-triggered (a fail-fast
            # submit never queues; a mid-queue failure fails in
            # _ff_next), so the already-triggered guard is dead here.
            done._value = service
            env = self.env
            heappush(env._queue, (now, next(env._seq), done))

        nxt = self._ff_next(now)
        return None if nxt is None else now + nxt

    def _ff_next(self, now: float) -> Optional[float]:
        """Dispatch the next request; its service time, or None.

        Mirrors the serve loop from its ``sched.empty()`` check through
        the queue-wait span: drain arrivals, pop by policy, fail or
        price.  The completion bookkeeping runs in :meth:`_ff_step`
        when the marker pops.  On empty backlog the server parks (a
        submit re-arms the marker); if arrivals raced in, the marker is
        re-armed at ``now`` instead — the phase path's immediately
        granted StoreGet.
        """
        sched = self.scheduler
        items = self._ff_items
        while True:
            if sched.empty():
                self._ff_req = None
                if items:
                    self._ff_wake_req = items.pop(0)
                    self.env.schedule(self._ff_marker)
                else:
                    self._ff_parked = True
                return None
            if items:
                for r in items:
                    sched.push(r)
                del items[:]
            req = sched.pop(head=self._head)
            if self.failed:
                self._pending -= 1
                req.done.fail(DiskFailedError(self.disk_id))
                continue
            # The service closed form, inlined from service_time()/
            # seek_time() with the frozen params bound at construction.
            # Identical float arithmetic, term for term.
            off = req.offset
            last_end = self._last_end
            if off >= last_end and off - last_end < self._ff_window:
                seek = 0.0
                rot = 0.0
            else:
                dist = off - self._head
                if dist < 0:
                    dist = -dist
                if dist <= 0:
                    seek = 0.0
                else:
                    frac = dist / self._ff_cap
                    if frac > 1.0:
                        frac = 1.0
                    seek = self._ff_t2t + self._ff_stroke * _sqrt(frac)
                rot = self._ff_rot
            xfer = req.nbytes / self._ff_rate
            service = self._ff_ctrl + seek + rot + xfer
            tracer = _obs.TRACER
            if tracer.enabled and now > req.submitted_at:
                tracer.record(
                    DISK_QUEUE_WAIT,
                    self.name,
                    req.submitted_at,
                    now,
                    trace=req.trace,
                    op=req.op,
                    priority=req.priority,
                )
            self._ff_req = req
            # The tracer rides along: the phase path gates the service
            # span on the tracer it read at dispatch, not at completion.
            self._ff_info = (service, seek, rot, xfer, tracer)
            return service

"""Mechanical disk model.

Service time for a request at byte offset ``o`` of size ``s``::

    controller + seek(|o - head|) + rotation + s / media_rate

where seek and rotation are skipped when the request continues a
sequential run (within ``sequential_window_bytes`` ahead of the head).
Seek time interpolates between track-to-track and full-stroke with the
usual square-root profile.

Requests are served one at a time by a server process; the queue
discipline is pluggable (see :mod:`repro.io.scheduler`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.config import DiskParams
from repro.errors import AddressError, DiskFailedError
from repro.obs import runtime as _obs
from repro.obs.trace import DISK_QUEUE_WAIT, DISK_SERVICE
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.io.scheduler import DiskScheduler


@dataclass
class DiskStats:
    """Cumulative per-disk accounting."""

    reads: int = 0
    writes: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    busy_time: float = 0.0
    #: Busy time split by priority class: foreground (class 0) vs
    #: background (e.g. RAID-x image flushes) — background work has
    #: slack, so only the foreground share sits on the critical path.
    busy_time_foreground: float = 0.0
    busy_time_background: float = 0.0
    seek_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    sequential_hits: int = 0

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written


@dataclass
class DiskRequest:
    """One disk operation; ``done`` triggers with the service time."""

    op: str  # "read" | "write"
    offset: int  # byte offset on this disk
    nbytes: int
    done: Event = field(repr=False, default=None)  # type: ignore[assignment]
    submitted_at: float = 0.0
    #: Scheduling priority: lower values served first when the queue
    #: discipline honours priorities (background mirror flushes use >0).
    priority: int = 0
    #: Trace id of the logical request this op belongs to (see repro.obs).
    trace: Optional[int] = None

    def validate(self, capacity: int) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"bad disk op {self.op!r}")
        if self.nbytes < 0:
            raise ValueError("negative request size")
        if self.offset < 0 or self.offset + self.nbytes > capacity:
            raise AddressError(
                f"request [{self.offset}, {self.offset + self.nbytes}) "
                f"outside disk of {capacity} bytes"
            )


class Disk:
    """A single simulated disk with its own server process."""

    def __init__(
        self,
        env: Environment,
        params: Optional[DiskParams] = None,
        disk_id: int = 0,
        scheduler: Optional["DiskScheduler"] = None,
        name: str = "",
    ):
        from repro.io.scheduler import FifoScheduler

        self.env = env
        self.params = params or DiskParams()
        self.disk_id = disk_id
        self.name = name or f"disk{disk_id}"
        # NB: "scheduler or ..." would discard a custom scheduler — an
        # empty DiskScheduler is falsy because it defines __len__.
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        self.stats = DiskStats()
        self.failed = False
        #: Current head position (byte offset).
        self._head = 0
        #: End of the last completed request, for sequential detection.
        self._last_end = 0
        self._inbox: Store = Store(env)
        self._pending = 0
        self._server = env.process(self._serve())

    # -- public API ------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.params.capacity_bytes

    @property
    def queue_depth(self) -> int:
        """Requests submitted but not yet completed."""
        return self._pending

    def submit(
        self, op: str, offset: int, nbytes: int, priority: int = 0,
        trace: Optional[int] = None,
    ) -> Event:
        """Queue a request; returns the completion event.

        The event fails with :class:`DiskFailedError` if the disk is (or
        becomes) failed before the request is served.  ``trace`` tags the
        op's queue-wait/service spans with a logical request's trace id.
        """
        req = DiskRequest(
            op=op,
            offset=offset,
            nbytes=nbytes,
            done=self.env.event(),
            submitted_at=self.env.now,
            priority=priority,
            trace=trace,
        )
        req.validate(self.capacity)
        if self.failed:
            req.done.fail(DiskFailedError(self.disk_id))
            return req.done
        self._pending += 1
        self._inbox.put(req)
        return req.done

    def read(self, offset: int, nbytes: int, priority: int = 0,
             trace: Optional[int] = None) -> Event:
        """Shorthand for a read request."""
        return self.submit("read", offset, nbytes, priority, trace)

    def write(self, offset: int, nbytes: int, priority: int = 0,
              trace: Optional[int] = None) -> Event:
        """Shorthand for a write request."""
        return self.submit("write", offset, nbytes, priority, trace)

    def fail(self) -> None:
        """Mark the disk failed; subsequent and queued requests error."""
        self.failed = True

    def repair(self) -> None:
        """Bring a failed disk back (contents considered rebuilt)."""
        self.failed = False

    def utilization(self) -> float:
        """Busy fraction since simulation start."""
        if self.env.now <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / self.env.now)

    # -- service model -----------------------------------------------------
    def seek_time(self, distance_bytes: int) -> float:
        """Seek time for a head movement of ``distance_bytes``.

        Square-root interpolation between track-to-track and full-stroke,
        the standard fit for mechanical arms.
        """
        if distance_bytes <= 0:
            return 0.0
        p = self.params
        frac = min(1.0, distance_bytes / p.capacity_bytes)
        return p.track_to_track_seek_s + (
            p.full_stroke_seek_s - p.track_to_track_seek_s
        ) * math.sqrt(frac)

    def service_time(self, req: DiskRequest) -> tuple:
        """(seek, rotation, transfer) components for ``req`` now."""
        p = self.params
        sequential = (
            req.offset >= self._last_end
            and req.offset - self._last_end < p.sequential_window_bytes
        )
        if sequential:
            seek = 0.0
            rot = 0.0
        else:
            seek = self.seek_time(abs(req.offset - self._head))
            rot = p.avg_rotation_s
        xfer = req.nbytes / p.media_rate
        return seek, rot, xfer

    def _serve(self):
        sched = self.scheduler
        while True:
            # Refill the scheduler from the inbox; block when idle.
            if sched.empty():
                req = yield self._inbox.get()
                sched.push(req)
            while len(self._inbox) > 0:
                sched.push(self._inbox.items.pop(0))

            req = sched.pop(head=self._head)
            if self.failed:
                self._pending -= 1
                req.done.fail(DiskFailedError(self.disk_id))
                continue

            seek, rot, xfer = self.service_time(req)
            service = self.params.controller_overhead_s + seek + rot + xfer
            tracer = _obs.TRACER
            if tracer.enabled:
                t0 = self.env.now
                if t0 > req.submitted_at:
                    tracer.record(
                        DISK_QUEUE_WAIT,
                        self.name,
                        req.submitted_at,
                        t0,
                        trace=req.trace,
                        op=req.op,
                        priority=req.priority,
                    )
            yield service  # numeric sleep: kernel fast path
            if tracer.enabled:
                now = self.env.now
                tracer.record(
                    DISK_SERVICE,
                    self.name,
                    now - service,
                    now,
                    trace=req.trace,
                    op=req.op,
                    nbytes=req.nbytes,
                    seek=seek,
                    rotation=rot,
                    transfer=xfer,
                    priority=req.priority,
                )

            st = self.stats
            st.busy_time += service
            if req.priority == 0:
                st.busy_time_foreground += service
            else:
                st.busy_time_background += service
            st.seek_time += seek
            st.rotation_time += rot
            st.transfer_time += xfer
            if seek == 0.0 and rot == 0.0:
                st.sequential_hits += 1
            if req.op == "read":
                st.reads += 1
                st.bytes_read += req.nbytes
            else:
                st.writes += 1
                st.bytes_written += req.nbytes

            self._head = req.offset + req.nbytes
            self._last_end = self._head
            self._pending -= 1
            if self.failed:
                req.done.fail(DiskFailedError(self.disk_id))
            else:
                req.done.succeed(service)

"""A cluster node: CPU + NIC + SCSI bus(es) + local disks."""

from __future__ import annotations

import os
from heapq import heappush
from typing import TYPE_CHECKING, List, Optional

from repro.config import ClusterConfig
from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.scsi import ScsiBus
from repro.io.scheduler import make_scheduler
from repro.obs import runtime as _obs
from repro.obs.trace import CPU_DRIVER, REQUEST, SCSI_TRANSFER
from repro.sim.core import Environment
from repro.sim.events import _KEY_OFFSET, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.nic import Nic

#: Process-wide default for the node-level analytic fast-forward
#: (per-node override via ``Node(fast_forward=...)``).  Read at Node
#: construction time, like the disk-level ``FAST_FORWARD`` flag.
NODE_FAST_FORWARD = os.environ.get("REPRO_NODE_FF", "1").lower() not in (
    "0",
    "off",
    "no",
    "false",
)


class FFSpanSynth(Event):
    """Lockstep span synthesis for one fast-forwarded request.

    With tracing on, the event-driven phase path allocates its trace id
    and records its cpu/scsi/request spans at specific *event pops*
    whose heap keys were allocated at specific earlier pops.  The heap
    breaks same-time ties by those keys, so the byte-identical
    span-stream contract (the golden equivalence suites hash spans in
    append order) is about *pop positions*, not just timestamps.

    This event re-schedules itself through the exact pop positions the
    phase path would occupy — one urgent pop at submit time matching the
    request process's ``Initialize``, one matching the piece process's,
    then one per hop completion — and performs the phase path's
    observable actions (trace-id allocation, span records) at each.
    The closed-form times priced by :meth:`Node.try_fast_forward` supply
    the span boundaries, so timestamps are the same float expressions
    the phase path evaluates.  DESIGN §6.15 gives the full argument.

    Cost: tracing off, no synth exists; a sampled-out request spends one
    event pop (the decision point, where the counters are fed); a
    sampled-in request spends five pops plus a completion callback —
    still far below the phase path's per-hop process machinery.
    """

    __slots__ = (
        "tracer", "client", "op", "offset", "nbytes", "arch", "stage",
        "trace", "t0", "t1", "t2", "t3", "io_nbytes", "req",
    )

    def __init__(
        self, env: Environment, tracer, client: int, op: str,
        offset: int, nbytes: int, arch: str,
    ):
        self.env = env
        self.callbacks: Optional[list] = [self._fire]
        self._value = None
        self._ok = True
        self._defused = False
        self.tracer = tracer
        self.client = client
        self.op = op
        self.offset = offset
        self.nbytes = nbytes
        self.arch = arch
        self.stage = 0
        self.trace: Optional[int] = None

    def arm(self, t0, t1, t2, t3, io_nbytes, req, done) -> None:
        """Start the stage chain once the eager claims have priced it.

        ``req`` is the preloaded :class:`~repro.hardware.disk.DiskRequest`
        (its ``trace`` field is filled in at stage 0, before the disk's
        completion marker reads it); ``done`` is the completion event —
        its pop schedules the request-epilogue stages.
        """
        self.t0 = t0
        self.t1 = t1
        self.t2 = t2
        self.t3 = t3
        self.io_nbytes = io_nbytes
        self.req = req
        done.callbacks.append(self._on_done)
        env = self.env
        # Urgent at submit time: the pop slot the phase request's
        # Initialize would occupy, so trace ids allocate in submit order.
        heappush(env._queue, (t0, next(env._seq) - _KEY_OFFSET, self))

    def _on_done(self, _event: Event) -> None:
        # The disk completion pop: where the phase piece process would
        # resume and finish (pushing its Process event).  A sampled-out
        # synth (req cleared at stage 0) has nothing left to emit.
        if self.req is None:
            return
        env = self.env
        heappush(env._queue, (env._now, next(env._seq), self))

    def _fire(self, _event: Event) -> None:
        env = self.env
        stage = self.stage
        self.stage = stage + 1
        self.callbacks = [self._fire]
        tracer = self.tracer
        if stage == 0:
            # ≡ Initialize pop: the request body starts; the phase path
            # allocates the trace id here, then spawns the piece
            # process (one urgent push).
            trace = tracer.new_trace()
            self.trace = trace
            self.req.trace = trace
            if not tracer.keeps(trace):
                # Sampled out: no spans will be appended anywhere (the
                # disk marker's record() drops its span by the same
                # hash), so the remaining stages have nothing to do.
                # Feed the per-hop latency histograms the durations the
                # phase path would observe, and stop.
                self._ff_observe(tracer)
                self.req = None  # deadens _on_done
                return
            heappush(env._queue, (self.t0, next(env._seq) - _KEY_OFFSET, self))
        elif stage == 1:
            # ≡ piece-process Initialize pop: the CPU claim's completion
            # Timeout is allocated here (normal key at t1).
            heappush(env._queue, (self.t1, next(env._seq), self))
        elif stage == 2:
            # ≡ CPU Timeout pop: the driver-entry span records, and the
            # SCSI transfer's Timeout is allocated (normal key at t2).
            tracer.record(
                CPU_DRIVER, f"node{self.client}.cpu", self.t0, self.t1,
                trace=self.trace,
            )
            heappush(env._queue, (self.t2, next(env._seq), self))
        elif stage == 3:
            # ≡ SCSI Timeout pop: the bus span records.  The disk's own
            # service span is recorded by its completion marker (armed
            # at preload), which also triggers ``done`` → _on_done.
            tracer.record(
                SCSI_TRANSFER, f"node{self.client}.scsi", self.t1, self.t2,
                trace=self.trace, nbytes=self.io_nbytes,
            )
        elif stage == 4:
            # ≡ piece Process pop: the phase path's AllOf condition
            # fires here (one normal push).
            heappush(env._queue, (env._now, next(env._seq), self))
        else:
            # ≡ AllOf pop: the request generator's epilogue records its
            # spans at the completion instant.
            self._ff_final(tracer, env)

    def _ff_observe(self, tracer) -> None:
        """Feed the latency histograms for a sampled-out request — the
        per-hop durations the phase path's ``record`` calls would have
        contributed.  Subclasses with extra epilogue spans add theirs."""
        tracer.observe(CPU_DRIVER, self.t1 - self.t0)
        tracer.observe(SCSI_TRANSFER, self.t2 - self.t1)
        tracer.observe(REQUEST, self.t3 - self.t0)

    def _ff_final(self, tracer, env) -> None:
        """Record the request-epilogue span(s) at the final stage pop.
        Subclasses prepend any span their phase twin records before the
        root REQUEST span (append order is part of the byte-identity
        contract)."""
        tracer.record(
            REQUEST, f"node{self.client}.request", self.t0, env.now,
            trace=self.trace, op=self.op, offset=self.offset,
            nbytes=self.nbytes, arch=self.arch,
        )


class Node:
    """One Trojans-cluster node with ``k`` locally attached disks.

    Disk ids are global: node ``i`` of an n×k array owns disks
    ``i, i+n, i+2n, …`` — matching the paper's Fig. 3 where D_j sits on
    node ``j mod n``.
    """

    def __init__(
        self,
        env: Environment,
        config: ClusterConfig,
        node_id: int,
        disk_ids: List[int],
        scheduler_policy: Optional[str] = None,
        fast_forward: Optional[bool] = None,
    ):
        self.env = env
        self.config = config
        self.node_id = node_id
        self.cpu = Cpu(env, config.cpu, node_id=node_id)
        self.scsi = ScsiBus(env, name=f"scsi{node_id}")
        #: This node's NIC, attached by the cluster wiring (None for a
        #: node built stand-alone); the fast-forward predicate treats a
        #: missing NIC as idle.
        self.nic: Optional["Nic"] = None
        self.fast_forward = (
            NODE_FAST_FORWARD if fast_forward is None else fast_forward
        )
        self.disks: List[Disk] = [
            Disk(
                env,
                params=config.disk,
                disk_id=d,
                scheduler=make_scheduler(scheduler_policy),
                name=f"node{node_id}.disk{d}",
            )
            for d in disk_ids
        ]
        self.disk_ids = list(disk_ids)

    def local_disk(self, disk_id: int) -> Disk:
        """The local :class:`Disk` with the given global id."""
        try:
            return self.disks[self.disk_ids.index(disk_id)]
        except ValueError:
            raise KeyError(
                f"disk {disk_id} is not local to node {self.node_id}"
            ) from None

    def disk_io(self, disk_id: int, op: str, offset: int, nbytes: int,
                priority: int = 0, trace: Optional[int] = None):
        """Process generator: one local disk op through the SCSI bus.

        The SCSI bus and the disk serialize independently; the bus
        transfer is charged for the full payload.
        """
        disk = self.local_disk(disk_id)
        tracer = _obs.TRACER
        if tracer.enabled:
            t0 = self.env.now
            yield self.scsi.transfer(nbytes)
            tracer.record(
                SCSI_TRANSFER,
                f"node{self.node_id}.scsi",
                t0,
                self.env.now,
                trace=trace,
                nbytes=nbytes,
            )
        else:
            yield self.scsi.transfer(nbytes)
        yield disk.submit(op, offset, nbytes, priority=priority, trace=trace)

    def submit_local(self, disk_id: int, op: str, offset: int, nbytes: int,
                     priority: int = 0, trace: Optional[int] = None) -> Event:
        """Run :meth:`disk_io` as a process; returns its completion event."""
        return self.env.process(
            self.disk_io(disk_id, op, offset, nbytes, priority, trace)
        )

    def ff_claim_cpu(self, seconds: float) -> float:
        """Eagerly claim ``seconds`` of CPU work; returns the finish time.

        ``BandwidthLink.transfer``'s arithmetic, term for term (the CPU
        work link's rate-1.0 convention carries seconds of work as
        "bytes"), minus the completion Timeout — ``outstanding`` stays 0
        for the window, which is exactly why callers must check the link
        is idle *before* claiming.  Shared by the node fast-forward's
        driver-entry hop (DESIGN §6.14) and the cache stage's memcpy hit
        pricing (DESIGN §6.18).
        """
        link = self.cpu._work
        now = self.env.now
        start = max(now, link._free_at)
        duration = seconds / link.rate
        link._free_at = start + duration
        link.bytes_carried += seconds
        link.busy_time += duration
        return now + (start + duration + link.latency - now)

    def ff_ready_chain(
        self, disk_id: int, op: str, offset: int, nbytes: int
    ) -> Optional[Disk]:
        """The fast-forward conflict predicate for one local hop chain.

        Returns the target :class:`Disk` when the whole chain is
        conflict-free — CPU and SCSI links idle, NIC quiet, disk parked
        — and ``None`` otherwise.  Checks only; claims nothing, so a
        ``None`` leaves no state behind.
        """
        if not self.fast_forward:
            return None
        cpu_link = self.cpu._work
        scsi_link = self.scsi._link
        if (
            cpu_link.outstanding
            or scsi_link.outstanding
            or cpu_link.congestion_threshold is not None
            or scsi_link.congestion_threshold is not None
        ):
            return None
        nic = self.nic
        if nic is not None and not nic.idle:
            return None
        try:
            disk = self.local_disk(disk_id)
        except KeyError:
            return None
        if not disk.ff_ready(op, offset, nbytes):
            return None
        return disk

    def ff_claim_scsi(self, t1: float, nbytes: float) -> float:
        """Eagerly claim a SCSI bus transfer starting no earlier than
        ``t1``; returns the delivery time.  ``BandwidthLink.transfer``'s
        arithmetic term for term, minus the completion Timeout — the
        same eager-claim contract as :meth:`ff_claim_cpu` (the caller
        must have checked the link idle before claiming).  The phase
        twin claims at its CPU-Timeout pop with ``now == t1``, and the
        expression uses ``max(t1, _free_at)``, so claiming early yields
        identical floats as long as no other claimant can slot in
        between — which the CPU claim itself guarantees, since every
        path onto this bus charges the CPU first (DESIGN §6.18).
        """
        link = self.scsi._link
        start = max(t1, link._free_at)
        duration = nbytes / link.rate
        link._free_at = start + duration
        link.bytes_carried += nbytes
        link.busy_time += duration
        return t1 + (start + duration + link.latency - t1)

    def ff_claim_chain(
        self, disk: Disk, op: str, offset: int, nbytes: int,
        priority: int = 0,
    ):
        """Claim the priced hop chain on a disk :meth:`ff_ready_chain`
        approved: CPU driver entry, SCSI transfer, disk preload.
        Returns ``(t1, t2, done)`` — the CPU and bus release times and
        the completion marker's event.

        The predicate and the claims are split so the cache stage can
        defer the claims to the pop slot where the phase path makes
        them (DESIGN §6.18); the claim arithmetic itself is
        ``BandwidthLink.transfer`` term for term, and stays valid while
        the link queue only grows behind ``_free_at``.
        """
        # Eager CPU claim for the driver-entry work (see ff_claim_cpu).
        t1 = self.ff_claim_cpu(self.config.cpu.kernel_request_overhead_s)
        t2 = self.ff_claim_scsi(t1, nbytes)
        done = disk.ff_preload(op, offset, nbytes, t2, priority=priority)
        return t1, t2, done

    def try_fast_forward(
        self, disk_id: int, op: str, offset: int, nbytes: int,
        priority: int = 0, synth: Optional[FFSpanSynth] = None,
    ) -> Optional[Event]:
        """Closed-form local pipeline: CPU driver entry → SCSI → disk.

        When this node's whole hop chain is conflict-free — CPU and SCSI
        links idle, NIC quiet, target disk parked — the phase path's
        per-hop event chain collapses to three eager bandwidth-link
        claims priced with *identical float arithmetic* (see DESIGN
        §6.14 for the legality argument), and the disk completion marker
        is armed directly at the closed-form finish time.  Returns the
        completion event, or ``None`` to fall back to the event-driven
        path; a fallback leaves no state behind (all checks precede any
        claim).

        With tracing on the engine passes a :class:`FFSpanSynth`, armed
        here with the priced hop boundaries so the span stream stays
        byte-identical to the phase path (DESIGN §6.15); a fallback
        leaves the synth un-armed and inert.
        """
        disk = self.ff_ready_chain(disk_id, op, offset, nbytes)
        if disk is None:
            return None
        now = self.env.now
        t1, t2, done = self.ff_claim_chain(
            disk, op, offset, nbytes, priority=priority
        )
        if synth is not None:
            # t2 + service is the exact float the completion marker was
            # armed at — the phase path's request end time.
            synth.arm(
                now, t1, t2, t2 + disk._ff_info[0], nbytes,
                disk._ff_req, done,
            )
        return done

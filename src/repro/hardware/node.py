"""A cluster node: CPU + NIC + SCSI bus(es) + local disks."""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List, Optional

from repro.config import ClusterConfig
from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.scsi import ScsiBus
from repro.io.scheduler import make_scheduler
from repro.obs import runtime as _obs
from repro.obs.trace import SCSI_TRANSFER
from repro.sim.core import Environment
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.nic import Nic

#: Process-wide default for the node-level analytic fast-forward
#: (per-node override via ``Node(fast_forward=...)``).  Read at Node
#: construction time, like the disk-level ``FAST_FORWARD`` flag.
NODE_FAST_FORWARD = os.environ.get("REPRO_NODE_FF", "1").lower() not in (
    "0",
    "off",
    "no",
    "false",
)


class Node:
    """One Trojans-cluster node with ``k`` locally attached disks.

    Disk ids are global: node ``i`` of an n×k array owns disks
    ``i, i+n, i+2n, …`` — matching the paper's Fig. 3 where D_j sits on
    node ``j mod n``.
    """

    def __init__(
        self,
        env: Environment,
        config: ClusterConfig,
        node_id: int,
        disk_ids: List[int],
        scheduler_policy: Optional[str] = None,
        fast_forward: Optional[bool] = None,
    ):
        self.env = env
        self.config = config
        self.node_id = node_id
        self.cpu = Cpu(env, config.cpu, node_id=node_id)
        self.scsi = ScsiBus(env, name=f"scsi{node_id}")
        #: This node's NIC, attached by the cluster wiring (None for a
        #: node built stand-alone); the fast-forward predicate treats a
        #: missing NIC as idle.
        self.nic: Optional["Nic"] = None
        self.fast_forward = (
            NODE_FAST_FORWARD if fast_forward is None else fast_forward
        )
        self.disks: List[Disk] = [
            Disk(
                env,
                params=config.disk,
                disk_id=d,
                scheduler=make_scheduler(scheduler_policy),
                name=f"node{node_id}.disk{d}",
            )
            for d in disk_ids
        ]
        self.disk_ids = list(disk_ids)

    def local_disk(self, disk_id: int) -> Disk:
        """The local :class:`Disk` with the given global id."""
        try:
            return self.disks[self.disk_ids.index(disk_id)]
        except ValueError:
            raise KeyError(
                f"disk {disk_id} is not local to node {self.node_id}"
            ) from None

    def disk_io(self, disk_id: int, op: str, offset: int, nbytes: int,
                priority: int = 0, trace: Optional[int] = None):
        """Process generator: one local disk op through the SCSI bus.

        The SCSI bus and the disk serialize independently; the bus
        transfer is charged for the full payload.
        """
        disk = self.local_disk(disk_id)
        tracer = _obs.TRACER
        if tracer.enabled:
            t0 = self.env.now
            yield self.scsi.transfer(nbytes)
            tracer.record(
                SCSI_TRANSFER,
                f"node{self.node_id}.scsi",
                t0,
                self.env.now,
                trace=trace,
                nbytes=nbytes,
            )
        else:
            yield self.scsi.transfer(nbytes)
        yield disk.submit(op, offset, nbytes, priority=priority, trace=trace)

    def submit_local(self, disk_id: int, op: str, offset: int, nbytes: int,
                     priority: int = 0, trace: Optional[int] = None) -> Event:
        """Run :meth:`disk_io` as a process; returns its completion event."""
        return self.env.process(
            self.disk_io(disk_id, op, offset, nbytes, priority, trace)
        )

    def try_fast_forward(
        self, disk_id: int, op: str, offset: int, nbytes: int,
        priority: int = 0,
    ) -> Optional[Event]:
        """Closed-form local pipeline: CPU driver entry → SCSI → disk.

        When this node's whole hop chain is conflict-free — CPU and SCSI
        links idle, NIC quiet, target disk parked — the phase path's
        per-hop event chain collapses to three eager bandwidth-link
        claims priced with *identical float arithmetic* (see DESIGN
        §6.14 for the legality argument), and the disk completion marker
        is armed directly at the closed-form finish time.  Returns the
        completion event, or ``None`` to fall back to the event-driven
        path; a fallback leaves no state behind (all checks precede any
        claim).
        """
        if not self.fast_forward:
            return None
        cpu_link = self.cpu._work
        scsi_link = self.scsi._link
        if (
            cpu_link.outstanding
            or scsi_link.outstanding
            or cpu_link.congestion_threshold is not None
            or scsi_link.congestion_threshold is not None
        ):
            return None
        nic = self.nic
        if nic is not None and not nic.idle:
            return None
        try:
            disk = self.local_disk(disk_id)
        except KeyError:
            return None
        if not disk.ff_ready(op, offset, nbytes):
            return None
        now = self.env.now
        # Eager CPU claim: BandwidthLink.transfer's arithmetic, term for
        # term (rate 1.0 carries seconds of work as "bytes"), minus the
        # completion Timeout — ``outstanding`` stays 0 for the window.
        cost = self.config.cpu.kernel_request_overhead_s
        start = max(now, cpu_link._free_at)
        duration = cost / cpu_link.rate
        cpu_link._free_at = start + duration
        cpu_link.bytes_carried += cost
        cpu_link.busy_time += duration
        t1 = now + (start + duration + cpu_link.latency - now)
        # Eager SCSI claim from the CPU's release time.
        start = max(t1, scsi_link._free_at)
        duration = nbytes / scsi_link.rate
        scsi_link._free_at = start + duration
        scsi_link.bytes_carried += nbytes
        scsi_link.busy_time += duration
        t2 = t1 + (start + duration + scsi_link.latency - t1)
        return disk.ff_preload(op, offset, nbytes, t2, priority=priority)

"""A cluster node: CPU + NIC + SCSI bus(es) + local disks."""

from __future__ import annotations

from typing import List, Optional

from repro.config import ClusterConfig
from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.scsi import ScsiBus
from repro.io.scheduler import make_scheduler
from repro.obs import runtime as _obs
from repro.obs.trace import SCSI_TRANSFER
from repro.sim.core import Environment
from repro.sim.events import Event


class Node:
    """One Trojans-cluster node with ``k`` locally attached disks.

    Disk ids are global: node ``i`` of an n×k array owns disks
    ``i, i+n, i+2n, …`` — matching the paper's Fig. 3 where D_j sits on
    node ``j mod n``.
    """

    def __init__(
        self,
        env: Environment,
        config: ClusterConfig,
        node_id: int,
        disk_ids: List[int],
        scheduler_policy: Optional[str] = None,
    ):
        self.env = env
        self.config = config
        self.node_id = node_id
        self.cpu = Cpu(env, config.cpu, node_id=node_id)
        self.scsi = ScsiBus(env, name=f"scsi{node_id}")
        self.disks: List[Disk] = [
            Disk(
                env,
                params=config.disk,
                disk_id=d,
                scheduler=make_scheduler(scheduler_policy),
                name=f"node{node_id}.disk{d}",
            )
            for d in disk_ids
        ]
        self.disk_ids = list(disk_ids)

    def local_disk(self, disk_id: int) -> Disk:
        """The local :class:`Disk` with the given global id."""
        try:
            return self.disks[self.disk_ids.index(disk_id)]
        except ValueError:
            raise KeyError(
                f"disk {disk_id} is not local to node {self.node_id}"
            ) from None

    def disk_io(self, disk_id: int, op: str, offset: int, nbytes: int,
                priority: int = 0, trace: Optional[int] = None):
        """Process generator: one local disk op through the SCSI bus.

        The SCSI bus and the disk serialize independently; the bus
        transfer is charged for the full payload.
        """
        disk = self.local_disk(disk_id)
        tracer = _obs.TRACER
        if tracer.enabled:
            t0 = self.env.now
            yield self.scsi.transfer(nbytes)
            tracer.record(
                SCSI_TRANSFER,
                f"node{self.node_id}.scsi",
                t0,
                self.env.now,
                trace=trace,
                nbytes=nbytes,
            )
        else:
            yield self.scsi.transfer(nbytes)
        yield disk.submit(op, offset, nbytes, priority=priority, trace=trace)

    def submit_local(self, disk_id: int, op: str, offset: int, nbytes: int,
                     priority: int = 0, trace: Optional[int] = None) -> Event:
        """Run :meth:`disk_io` as a process; returns its completion event."""
        return self.env.process(
            self.disk_io(disk_id, op, offset, nbytes, priority, trace)
        )

"""Hardware models: disks, buses, NICs, switched fabric, CPUs, nodes.

Everything here is architecture-agnostic — RAID layouts and the CDD
protocol are layered on top (``repro.raid``, ``repro.cluster``).  The
models are calibrated to the USC Trojans cluster (see
:func:`repro.config.trojans_cluster` and DESIGN.md §6.2).
"""

from repro.hardware.disk import Disk, DiskRequest, DiskStats
from repro.hardware.scsi import ScsiBus
from repro.hardware.nic import Nic
from repro.hardware.network import Network
from repro.hardware.cpu import Cpu
from repro.hardware.node import Node

__all__ = [
    "Cpu",
    "Disk",
    "DiskRequest",
    "DiskStats",
    "Network",
    "Nic",
    "Node",
    "ScsiBus",
]

"""SCSI bus: the shared channel between a node and its k local disks.

The paper's 2D arrays (Fig. 3) attach k disks per node on the same SCSI
bus, which is why consecutive stripe groups *pipeline* rather than
parallelize within a node.  We model the bus as a FIFO bandwidth link
that each disk transfer must traverse in addition to the disk's own
mechanical service.
"""

from __future__ import annotations

from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.shared import BandwidthLink
from repro.units import MB, US


class ScsiBus:
    """An Ultra-Wide-SCSI-class bus shared by one node's disks."""

    def __init__(
        self,
        env: Environment,
        rate: float = 40 * MB,
        arbitration_s: float = 20 * US,
        name: str = "",
    ):
        self.env = env
        self._link = BandwidthLink(env, rate=rate, latency=arbitration_s)
        self.name = name

    @property
    def rate(self) -> float:
        return self._link.rate

    def transfer(self, nbytes: float) -> Event:
        """Occupy the bus for a ``nbytes`` transfer."""
        return self._link.transfer(nbytes)

    def utilization(self) -> float:
        return self._link.utilization()

"""Network interface model: full-duplex TX and RX serialization paths."""

from __future__ import annotations

from repro.config import NetworkParams
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.shared import BandwidthLink


class Nic:
    """One node's network interface.

    Fast Ethernet is full duplex through a switch, so the TX and RX
    directions serialize independently.  The switch fabric adds latency;
    endpoint protocol CPU is charged by the :class:`~repro.hardware.cpu.Cpu`
    model at a higher layer.
    """

    def __init__(
        self,
        env: Environment,
        params: NetworkParams,
        node_id: int = 0,
    ):
        self.env = env
        self.params = params
        self.node_id = node_id
        self.tx = BandwidthLink(
            env, rate=params.link_rate, latency=0.0, name=f"nic{node_id}.tx"
        )
        self.rx = BandwidthLink(
            env, rate=params.link_rate, latency=0.0, name=f"nic{node_id}.rx"
        )
        #: Tracing track names: thread ``nic.tx``/``nic.rx`` of the node's
        #: process group in the exported trace (see repro.obs.export).
        self.track_tx = f"node{node_id}.nic.tx"
        self.track_rx = f"node{node_id}.nic.rx"

    def send_occupancy(self, nbytes: float) -> Event:
        """Occupy the TX path for ``nbytes``."""
        return self.tx.transfer(nbytes)

    def recv_occupancy(self, nbytes: float, stretch: float = 0.0) -> Event:
        """Occupy the RX path for ``nbytes``; ``stretch`` is the incast
        slowdown factor computed by the fabric (fraction of base time)."""
        return self.rx.transfer(nbytes, stretch=stretch)

    @property
    def idle(self) -> bool:
        """No transfer in flight on either direction.

        Consulted by the node fast-forward conflict predicate: a busy
        NIC means remote traffic may contend for this node's CPU before
        an analytically-priced local request would release it.
        """
        return self.tx.outstanding == 0 and self.rx.outstanding == 0

    @property
    def bytes_sent(self) -> float:
        return self.tx.bytes_carried

    @property
    def bytes_received(self) -> float:
        return self.rx.bytes_carried

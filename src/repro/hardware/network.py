"""Switched-Ethernet fabric connecting the cluster nodes.

Message path (store-and-forward at message granularity — callers keep
messages at block size, so this is within one MTU of cut-through):

1. occupy the sender's NIC TX for ``nbytes``,
2. cross the switch (fixed latency, optional shared backplane),
3. occupy the receiver's NIC RX for ``nbytes``.

Endpoint protocol CPU is charged by the transport layer
(:mod:`repro.cluster.transport`) so that it contends with the node's
other storage-path work.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import NetworkParams
from repro.errors import ConfigurationError
from repro.hardware.nic import Nic
from repro.obs import runtime as _obs
from repro.obs.trace import NET_RX, NET_TX
from repro.sim.core import Environment
from repro.sim.shared import SharedChannel


class Network:
    """The cluster fabric: one NIC per node plus the switch."""

    def __init__(
        self,
        env: Environment,
        n_nodes: int,
        params: Optional[NetworkParams] = None,
    ):
        if n_nodes < 1:
            raise ConfigurationError("network needs at least one node")
        self.env = env
        self.params = params or NetworkParams()
        self.nics: List[Nic] = [
            Nic(env, self.params, node_id=i) for i in range(n_nodes)
        ]
        self._backplane: Optional[SharedChannel] = None
        if self.params.backplane_rate is not None:
            self._backplane = SharedChannel(
                env, rate=self.params.backplane_rate, name="backplane"
            )
        #: Total bytes that crossed the switch.
        self.bytes_switched = 0.0
        self.messages = 0
        #: Per-destination {source: in-flight message count} (incast).
        self._flows_seen: List[dict] = [{} for _ in range(n_nodes)]
        self.incast_stretch_total = 0.0

    @property
    def n_nodes(self) -> int:
        return len(self.nics)

    def send(self, src: int, dst: int, nbytes: float, trace=None):
        """Process generator: move ``nbytes`` from node src to node dst.

        Messages larger than the MTU are fragmented and *pipelined*:
        each fragment's RX reservation is made as soon as its TX
        completes, so fragment k+1 transmits while fragment k is
        received — and fragments of other messages can interleave at the
        receive port.  Completes when the last byte lands.  Loopback
        (src == dst) is free at this layer — memory copies are charged
        by the transport.  ``trace`` tags the recorded NIC tx/rx spans.
        """
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise ConfigurationError(
                f"bad endpoints {src}->{dst} on {self.n_nodes} nodes"
            )
        self.messages += 1
        if src == dst:
            return
            yield  # pragma: no cover - makes this a generator
        self.bytes_switched += nbytes
        mtu = self.params.mtu_bytes
        tracer = _obs.TRACER
        env = self.env
        tx_start = env.now
        tx_end = tx_start
        rx_start = None
        self._flow_enter(src, dst)
        try:
            last_rx = None
            pos = 0
            first = True
            while True:
                frag = min(mtu, nbytes - pos)
                yield self.nics[src].send_occupancy(frag)
                tx_end = env.now
                if self._backplane is not None:
                    yield self._backplane.transfer(frag)
                if first:
                    # Switch forwarding latency, paid once up front;
                    # later fragments ride the full pipeline.
                    yield self.params.switch_latency_s
                    first = False
                stretch = self._incast_stretch(src, dst)
                if rx_start is None:
                    rx_start = env.now
                last_rx = self.nics[dst].recv_occupancy(
                    frag, stretch=stretch
                )
                pos += frag
                if pos >= nbytes:
                    break
            if last_rx is not None:
                yield last_rx
            if tracer.enabled:
                tracer.record(
                    NET_TX,
                    self.nics[src].track_tx,
                    tx_start,
                    tx_end,
                    trace=trace,
                    nbytes=nbytes,
                    dst=dst,
                )
                tracer.record(
                    NET_RX,
                    self.nics[dst].track_rx,
                    rx_start if rx_start is not None else env.now,
                    env.now,
                    trace=trace,
                    nbytes=nbytes,
                    src=src,
                )
        finally:
            self._flow_exit(src, dst)

    # -- incast model ----------------------------------------------------
    def _flow_enter(self, src: int, dst: int) -> None:
        flows = self._flows_seen[dst]
        flows[src] = flows.get(src, 0) + 1

    def _flow_exit(self, src: int, dst: int) -> None:
        flows = self._flows_seen[dst]
        flows[src] -= 1
        if flows[src] <= 0:
            del flows[src]

    def _incast_stretch(self, src: int, dst: int) -> float:
        """Incast slowdown at the receive port (see NetworkParams).

        Counts the distinct senders with a message currently in flight
        toward ``dst``; each flow beyond the threshold stretches RX
        service — the fan-in goodput collapse of era TCP on Fast
        Ethernet.  Counting *in-flight* flows (not a time window) keeps
        the model free of slow-down→more-flows feedback.
        """
        p = self.params
        if p.incast_flow_threshold is None:
            return 0.0
        excess = len(self._flows_seen[dst]) - p.incast_flow_threshold
        if excess <= 0:
            return 0.0
        stretch = min(p.incast_penalty * excess, p.incast_max_stretch)
        self.incast_stretch_total += stretch
        return stretch

    def transfer(self, src: int, dst: int, nbytes: float, trace=None):
        """Convenience: run :meth:`send` as a process; returns its event."""
        return self.env.process(self.send(src, dst, nbytes, trace=trace))

    def aggregate_utilization(self) -> float:
        """Mean per-port utilization (TX+RX) across the fabric."""
        if not self.nics:
            return 0.0
        total = 0.0
        for nic in self.nics:
            total += nic.tx.utilization() + nic.rx.utilization()
        return total / (2 * len(self.nics))

"""Framework of the simulator-aware static analyzer.

The analyzer parses every target file once, wraps it in a
:class:`ModuleInfo` (path, dotted module name, AST, source lines, import
table), and runs two kinds of rules over the result:

* :class:`Rule` — examines one module's AST at a time (the SIM, LOCK and
  OBS families);
* :class:`ProjectRule` — examines the whole module set at once (the ARCH
  family: layering and cycles need the import *graph*, not one file).

Findings are plain value objects with a stable ``fingerprint`` so a
committed baseline can grandfather known findings (the repo targets an
*empty* baseline; see ``lint-baseline.json``).

Suppression: append ``# lint: ignore`` (or ``# lint: ignore[SIM001]``)
to the offending line.  Suppressions are deliberately line-scoped —
there is no file- or block-level escape hatch.  The marker is anchored
to a real trailing *comment token* (found with :mod:`tokenize`), so the
text ``# lint: ignore`` inside a string literal is inert; and every
suppression must earn its keep — one that no longer suppresses any
finding is itself reported (LINT001, :mod:`repro.lint.rules_lint`).
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Sub-packages whose code runs (or is imported by) simulation processes
#: and must therefore obey the determinism rules: simulated time only,
#: named seeded random streams only, no threads.
SIM_SCOPE = frozenset(
    {
        "sim",
        "hardware",
        "io",
        "cluster",
        "raid",
        "fs",
        "checkpoint",
        "workloads",
        "fault",
        "obs",
        "cache",
    }
)

#: Top-level helper modules every layer may import.
BASE_MODULES = frozenset({"units", "errors", "config"})


@dataclass(frozen=True)
class Finding:
    """One reported violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (``rule::path::line::col``)."""
        return f"{self.rule}::{self.path}::{self.line}::{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ModuleInfo:
    """One parsed target file plus derived lookup tables."""

    def __init__(self, path: str, module: str, source: str):
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: local name -> dotted origin, e.g. ``np`` -> ``numpy``,
        #: ``_obs`` -> ``repro.obs.runtime`` (module-level and nested
        #: imports both contribute; later bindings win).
        self.aliases: dict[str, str] = {}
        #: (imported module, bound name or None, lineno, top_level) —
        #: repro-internal imports only, for the ARCH rules.
        self.repro_imports: list[tuple[str, str | None, int, bool]] = []
        #: line -> (codes or None for blanket, column of the comment).
        #: Collected from real COMMENT tokens only: the marker inside a
        #: string literal is not a suppression.
        self.suppressions: dict[int, tuple[frozenset[str] | None, int]] = {}
        #: Lines whose suppression actually suppressed >= 1 finding in
        #: the current run (reset by :func:`run_rules`); the complement
        #: is what LINT001 reports.
        self.suppression_hits: set[int] = set()
        self._collect_imports()
        self._collect_suppressions()

    # -- derived properties ----------------------------------------------
    @property
    def package(self) -> str:
        """Second component of the module path (``repro.sim.core`` -> ``sim``)."""
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else ""

    @property
    def in_sim_scope(self) -> bool:
        return self.module.startswith("repro.") and self.package in SIM_SCOPE

    # -- imports -----------------------------------------------------------
    def _collect_imports(self) -> None:
        top_level_ids = {id(stmt) for stmt in self.tree.body}
        type_checking_ids: set[int] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.If) and _is_type_checking_test(node.test):
                for sub in ast.walk(node):
                    type_checking_ids.add(id(sub))
        for node in ast.walk(self.tree):
            top = id(node) in top_level_ids and id(node) not in type_checking_ids
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.aliases[local] = alias.name if alias.asname else (
                        alias.name.split(".")[0]
                    )
                    if alias.name.split(".")[0] == "repro":
                        self.repro_imports.append(
                            (alias.name, None, node.lineno, top)
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"
                    if node.module.split(".")[0] == "repro":
                        self.repro_imports.append(
                            (node.module, alias.name, node.lineno, top)
                        )

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a Name/Attribute chain, through import aliases.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        under ``import numpy as np``; ``perf_counter`` resolves to
        ``time.perf_counter`` under ``from time import perf_counter``.
        Returns ``None`` for anything that is not a plain dotted chain.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    # -- suppressions ------------------------------------------------------
    def _collect_suppressions(self) -> None:
        """Find ``# lint: ignore[...]`` markers in real comment tokens.

        The old line-text scan matched the marker anywhere — including
        inside string literals — so a docstring *describing* the escape
        hatch silently suppressed findings on its line.  Tokenizing
        anchors the marker to the trailing comment token: the comment's
        text (after ``#``) must *start* with ``lint: ignore``.
        """
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                body = tok.string[1:].lstrip()
                if not body.startswith("lint: ignore"):
                    continue
                rest = body[len("lint: ignore"):].strip()
                line, col = tok.start
                if not rest.startswith("["):
                    self.suppressions[line] = (None, col)
                    continue
                raw = rest[1:rest.find("]")] if "]" in rest else rest[1:]
                self.suppressions[line] = (
                    frozenset(c.strip() for c in raw.split(",") if c.strip()),
                    col,
                )
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            # The file parsed as AST, so this is near-unreachable; a
            # tokenizer hiccup just means no suppressions are honoured.
            pass

    def suppressed(self, line: int, rule: str) -> bool:
        entry = self.suppressions.get(line)
        if entry is None:
            return False
        codes, _col = entry
        if codes is None or rule in codes:
            self.suppression_hits.add(line)
            return True
        return False

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule, self.path, line, col, message)


def _is_type_checking_test(test: ast.AST) -> bool:
    return (
        isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
    ) or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


class Rule:
    """A module-scoped rule.  Subclasses set ``code`` and implement ``check``."""

    code: str = ""
    summary: str = ""

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError
        yield


class ProjectRule(Rule):
    """A rule that needs every module at once (import-graph analyses)."""

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        raise NotImplementedError
        yield


def module_name_for(path: Path) -> str:
    """Dotted module name for a source path (``src/repro/x/y.py`` ->
    ``repro.x.y``); falls back to the stem for paths outside a package."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("repro",):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return parts[-1] if parts else "<unknown>"


def collect_files(paths: Iterable[str]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(
                f for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            out.append(p)
    return out


def load_modules(paths: Iterable[str]) -> tuple[list[ModuleInfo], list[Finding]]:
    """Parse every target file; syntax errors become PARSE findings."""
    mods: list[ModuleInfo] = []
    errors: list[Finding] = []
    for f in collect_files(paths):
        rel = f.as_posix()
        try:
            source = f.read_text(encoding="utf-8")
            mods.append(ModuleInfo(rel, module_name_for(f), source))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    "PARSE", rel, exc.lineno or 1, exc.offset or 0,
                    f"cannot parse: {exc.msg}",
                )
            )
    return mods, errors


def run_rules(
    mods: Sequence[ModuleInfo],
    rules: Sequence[Rule],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Run ``rules`` over ``mods``; ``select`` filters findings by code
    prefix (``SIM`` selects the family, ``SIM002`` one rule).

    The suppression check runs *before* the ``select`` filter so that a
    suppression is marked used whenever it matches a real finding, even
    one outside the selection — LINT001 (unused suppressions, emitted by
    the last registered rule from ``suppression_hits``) therefore never
    flags a suppression just because the run was narrowed.
    """
    findings: list[Finding] = []
    by_path = {m.path: m for m in mods}
    for m in mods:
        m.suppression_hits.clear()
    for rule in rules:
        produced: list[Finding] = []
        if isinstance(rule, ProjectRule):
            produced.extend(rule.check_project(mods))
        else:
            for mod in mods:
                produced.extend(rule.check(mod))
        for f in produced:
            mod = by_path.get(f.path)
            if mod is not None:
                if f.rule == "LINT001":
                    # A stale suppression cannot launder itself with a
                    # blanket marker; only an explicit [LINT001] works.
                    entry = mod.suppressions.get(f.line)
                    if entry is not None and entry[0] is not None and (
                        "LINT001" in entry[0]
                    ):
                        mod.suppression_hits.add(f.line)
                        continue
                elif mod.suppressed(f.line, f.rule):
                    continue
            if select and not any(f.rule.startswith(s) for s in select):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings

"""Project-wide call graph over the parsed module set.

The interprocedural rule families (SIM taint, cross-function LOCK, the
FF legality contract) all need the same substrate: *which known function
does this call reach?*  This module builds it once per lint run from the
:class:`~repro.lint.core.ModuleInfo` import/alias tables:

* **symbols** — every module-level function, class, and method gets a
  dotted qualname (``repro.hardware.disk.Disk.submit``); aliased
  re-exports are followed through the importing module's alias table, so
  ``from repro.x import helper`` resolves to ``repro.x.helpers.helper``
  when ``repro/x/__init__.py`` re-exports it;
* **method resolution** — ``self.m()`` / ``cls.m()`` resolves over the
  known class hierarchy (bases resolved by dotted origin, nearest
  definition wins); ``ClassName.m()`` and constructor calls resolve the
  same way.  A bare ``obj.m()`` with an unknown receiver resolves only
  when exactly one known class defines ``m`` — these **unique-method**
  edges are kept in a separate, lower-confidence tier, and an ambiguous
  name (two classes defining ``m``) produces *no* edge: resolution never
  guesses between candidates;
* **SCC condensation** — an iterative Tarjan pass groups mutually
  recursive functions; SCCs come out callee-first, which is exactly the
  bottom-up order the summary caches (taint, lock ownership) need to
  stay O(functions).

The graph is memoized per module set (:func:`get_callgraph`), so the
four rule families that consume it share one build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.core import ModuleInfo


@dataclass
class FunctionInfo:
    """One known function/method and where it lives."""

    qualname: str
    module: str
    mod: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Simple name of the enclosing class, or None for a module-level def.
    cls: Optional[str]
    #: Parameter names in call order, ``self``/``cls`` already stripped.
    params: Tuple[str, ...]

    @property
    def site_key(self) -> str:
        """``Class.method`` (or bare function name) — the contract-table
        key the FF rules match allowed mutation sites against."""
        return f"{self.cls}.{self.node.name}" if self.cls else self.node.name


@dataclass
class ClassInfo:
    qualname: str
    name: str
    mod: ModuleInfo
    #: Base-class dotted origins as resolved in the defining module.
    bases: Tuple[str, ...]
    #: method name -> function qualname (own methods only).
    methods: Dict[str, str]


class CallGraph:
    """Functions, classes, and resolved call edges for one module set."""

    def __init__(self, mods: Sequence[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {m.module: m for m in mods}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> list of defining function qualnames.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: caller qualname -> [(callee qualname, call node, certain)].
        self.sites: Dict[str, List[Tuple[str, ast.Call, bool]]] = {}
        #: caller -> callees (certain tier only / both tiers).
        self.calls_certain: Dict[str, Set[str]] = {}
        self.calls_all: Dict[str, Set[str]] = {}
        self.callers_certain: Dict[str, Set[str]] = {}
        self.callers_all: Dict[str, Set[str]] = {}
        self._mro_cache: Dict[str, Tuple[str, ...]] = {}
        for mod in mods:
            self._index_module(mod)
        for fn in list(self.functions.values()):
            self._resolve_function(fn)

    # -- indexing ----------------------------------------------------------
    def _index_module(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(mod, node)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.module}.{node.name}"
        bases = tuple(
            # A bare base name not bound by an import is a class from
            # this same module: qualify it so the MRO walk can find it.
            origin if "." in origin or origin in mod.aliases
            else f"{mod.module}.{origin}"
            for origin in (mod.resolve(b) for b in node.bases)
            if origin is not None
        )
        methods: Dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = self._add_function(mod, stmt, cls=node.name)
                methods[stmt.name] = fq
        self.classes[qual] = ClassInfo(qual, node.name, mod, bases, methods)

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: Optional[str],
    ) -> str:
        qual = (
            f"{mod.module}.{cls}.{node.name}"
            if cls
            else f"{mod.module}.{node.name}"
        )
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if cls and names and names[0] in ("self", "cls"):
            names = names[1:]
        names.extend(a.arg for a in args.kwonlyargs)
        info = FunctionInfo(qual, mod.module, mod, node, cls, tuple(names))
        self.functions[qual] = info
        if cls:
            self.methods_by_name.setdefault(node.name, []).append(qual)
        return info.qualname

    # -- symbol resolution -------------------------------------------------
    def canonicalize(self, origin: str, _depth: int = 0) -> Optional[str]:
        """Follow aliased re-exports until ``origin`` names a known
        function or class, or give up."""
        if not origin or _depth > 8:
            return None
        if origin in self.functions or origin in self.classes:
            return origin
        parts = origin.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            owner = self.modules.get(prefix)
            if owner is None:
                continue
            target = owner.aliases.get(parts[i])
            if target is None:
                return None
            return self.canonicalize(
                ".".join([target] + parts[i + 1:]), _depth + 1
            )
        return None

    def _mro(self, class_qual: str, _depth: int = 0) -> Tuple[str, ...]:
        """Depth-first base linearization (good enough for this codebase;
        we need *a* nearest-definition order, not C3 exactness)."""
        cached = self._mro_cache.get(class_qual)
        if cached is not None:
            return cached
        if _depth > 16:
            return (class_qual,)
        order: List[str] = [class_qual]
        info = self.classes.get(class_qual)
        if info is not None:
            for base in info.bases:
                canon = self.canonicalize(base)
                if canon is None or canon not in self.classes:
                    continue
                for anc in self._mro(canon, _depth + 1):
                    if anc not in order:
                        order.append(anc)
        result = tuple(order)
        self._mro_cache[class_qual] = result
        return result

    def resolve_method(self, class_qual: str, name: str) -> Optional[str]:
        """Nearest definition of ``name`` over the class's hierarchy."""
        for anc in self._mro(class_qual):
            info = self.classes.get(anc)
            if info is not None and name in info.methods:
                return info.methods[name]
        return None

    def resolved_via_symbol(
        self, mod: ModuleInfo, call: ast.Call
    ) -> Optional[str]:
        """Canonical symbol a call's dotted spelling names, or None when
        the call is attribute dispatch on a runtime value."""
        origin = mod.resolve(call.func)
        if origin is None:
            return None
        if origin.split(".")[0] not in mod.aliases:
            # Head is a bare local name (``helper()``, ``Disk.spin()``):
            # try the defining module's own namespace first.
            local = self.canonicalize(f"{mod.module}.{origin}")
            if local is not None:
                return local
        return self.canonicalize(origin)

    def resolve_call(
        self, fn: Optional[FunctionInfo], mod: ModuleInfo, call: ast.Call
    ) -> Tuple[Optional[str], bool]:
        """``(callee qualname, certain)`` for one call, or ``(None, _)``.

        Certain tier: alias-resolved functions/classes, ``self``/``cls``
        method resolution, ``ClassName.method``.  Unique tier: attribute
        calls on unknown receivers whose method name has exactly one
        known definition.  Ambiguous names resolve to nothing.
        """
        func = call.func
        canon = self.resolved_via_symbol(mod, call)
        if canon is not None:
            return self._as_callable(canon), True
        if isinstance(func, ast.Attribute):
            recv = func.value
            if (
                isinstance(recv, ast.Name)
                and recv.id in ("self", "cls")
                and fn is not None
                and fn.cls is not None
            ):
                target = self.resolve_method(
                    f"{fn.module}.{fn.cls}", func.attr
                )
                if target is not None:
                    return target, True
                return None, True
            candidates = self.methods_by_name.get(func.attr, [])
            if len(candidates) == 1:
                return candidates[0], False
        return None, True

    def _as_callable(self, canon: str) -> Optional[str]:
        if canon in self.functions:
            return canon
        if canon in self.classes:
            # Constructing a known class executes its __init__.
            return self.resolve_method(canon, "__init__")
        return None

    # -- edge construction -------------------------------------------------
    def _resolve_function(self, fn: FunctionInfo) -> None:
        sites: List[Tuple[str, ast.Call, bool]] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.ClassDef) and node is not fn.node:
                continue  # nested class bodies are out of scope
            if not isinstance(node, ast.Call):
                continue
            callee, certain = self.resolve_call(fn, fn.mod, node)
            if callee is None or callee == fn.qualname:
                continue
            sites.append((callee, node, certain))
        self.sites[fn.qualname] = sites
        cert = {c for c, _n, ok in sites if ok}
        both = {c for c, _n, _ok in sites}
        self.calls_certain[fn.qualname] = cert
        self.calls_all[fn.qualname] = both
        for c in cert:
            self.callers_certain.setdefault(c, set()).add(fn.qualname)
        for c in both:
            self.callers_all.setdefault(c, set()).add(fn.qualname)

    def functions_in(self, mod: ModuleInfo) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.mod is mod]

    # -- condensation ------------------------------------------------------
    def sccs(self, certain_only: bool = False) -> List[List[str]]:
        """Tarjan SCCs of the call graph, emitted callee-first (every
        SCC appears after all SCCs it calls into) — the bottom-up order
        the summary caches consume.  Iterative, so a deep helper chain
        cannot blow the recursion limit."""
        graph = self.calls_certain if certain_only else self.calls_all
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = 0
        for root in sorted(self.functions):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                v, pi = work[-1]
                if pi == 0:
                    index[v] = low[v] = counter
                    counter += 1
                    stack.append(v)
                    on_stack.add(v)
                advanced = False
                succ = sorted(graph.get(v, ()))
                for j in range(pi, len(succ)):
                    w = succ[j]
                    if w not in self.functions:
                        continue
                    if w not in index:
                        work[-1] = (v, j + 1)
                        work.append((w, 0))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if low[v] == index[v]:
                    comp: List[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == v:
                            break
                    comp.sort()
                    sccs.append(comp)
                if work:
                    parent, _ = work[-1]
                    low[parent] = min(low[parent], low[v])
        return sccs

    def guarded_closure(
        self, seeds: Set[str], certain_only: bool = True
    ) -> Set[str]:
        """Seeds plus every function *only* reachable through them.

        A function joins the closure when it has at least one known
        caller and every known caller is already in the closure — i.e.
        every call chain that reaches it passes through a seed.  Used by
        the FF rules: a helper is "guard-aware" when all its callers
        are.  Functions with no known callers (entry points) never join.
        """
        callers = self.callers_certain if certain_only else self.callers_all
        legal = set(seeds)
        changed = True
        while changed:
            changed = False
            for qual in self.functions:
                if qual in legal:
                    continue
                cs = callers.get(qual)
                if cs and cs <= legal:
                    legal.add(qual)
                    changed = True
        return legal


#: One-slot memo: run_rules hands every rule the same module list, so
#: the four interprocedural families share one graph build.  The cached
#: CallGraph holds strong references to its ModuleInfos (via
#: FunctionInfo.mod), so the id()-based key cannot be recycled while the
#: entry is alive.
_CACHE: Dict[Tuple[int, ...], "CallGraph"] = {}


def get_callgraph(mods: Sequence[ModuleInfo]) -> CallGraph:
    key = tuple(id(m) for m in mods)
    graph = _CACHE.get(key)
    if graph is None:
        _CACHE.clear()
        graph = CallGraph(mods)
        _CACHE[key] = graph
    return graph

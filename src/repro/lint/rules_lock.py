"""LOCK rules: the paper's atomic grant/release requirement, statically.

§4 of the paper requires the CDD lock-group table's write locks to be
granted and released atomically: a client that acquires a group and then
dies, raises, or forgets the handle strands the group for every other
CDD.  The rules below run the release-on-all-paths analysis
(:mod:`repro.lint.cfg`) over every function that touches a recognized
acquire method (``Mutex.acquire``, ``DistributedLockManager.acquire``,
``CooperativeDiskDriver.acquire_write_locks``) — and, since the
interprocedural engine, across function boundaries: callee summaries
(:mod:`repro.lint.summaries`) let the interpreter credit a release that
happens inside a helper, keep tracking a token a helper merely borrows,
and treat a helper that *returns* a fresh acquire on every path as an
acquire site in the caller.

========  ==============================================================
LOCK001   a lock acquired here may not be released on some path out of
          the function — wrap the held region in ``try/finally`` (or
          transfer ownership into a handle immediately).  Since the
          interprocedural engine this also covers acquires obtained
          *from* a helper and tokens a callee provably keeps held.
LOCK002   the acquire's return value is discarded: nothing can ever
          release this lock
LOCK003   a held lock is passed to a callee that releases it on some
          paths but not all — the caller cannot know whether it still
          owns the lock; make the callee release unconditionally (or
          never)
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.callgraph import get_callgraph
from repro.lint.cfg import FunctionAnalysis, ResourceSpec, find_resource_leaks
from repro.lint.core import Finding, ModuleInfo, ProjectRule
from repro.lint.summaries import get_lock_summaries

LOCK_SPEC = ResourceSpec(
    acquire_methods=frozenset({"acquire", "acquire_write_locks"}),
    release_methods=frozenset({"release", "release_write_locks"}),
    noun="lock",
    leak_code="LOCK001",
    discard_code="LOCK002",
)

_LEAK_MSG = (
    "lock acquired here may not be released on all paths; hold it "
    "under try/finally (or a with block) so a failure between grant "
    "and release cannot strand the group"
)
_DISCARD_MSG = (
    "acquire result discarded: keep the request handle and release "
    "it, or nothing ever can"
)


def _in_scope(mod: ModuleInfo) -> bool:
    return mod.module.startswith("repro.") and mod.package not in (
        "lint",
        "bench",
        "analysis",
    )


def _mentions_acquire(node: ast.AST, spec: ResourceSpec) -> bool:
    return any(
        isinstance(n, ast.Attribute) and n.attr in spec.acquire_methods
        for n in ast.walk(node)
    )


class LockReleaseRule(ProjectRule):
    """LOCK001/LOCK002/LOCK003 over every function in lock-using modules."""

    code = "LOCK"
    summary = "lock acquires must be released on all paths (across calls)"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        scope = [m for m in mods if _in_scope(m)]
        if not scope:
            return
        graph = get_callgraph(mods)
        summaries = get_lock_summaries(graph, LOCK_SPEC)
        returns_acquired = summaries.returns_acquired_quals()
        graphed_nodes = {id(fn.node) for fn in graph.functions.values()}
        for mod in scope:
            for fn in graph.functions_in(mod):
                calls_ra = bool(
                    graph.calls_certain.get(fn.qualname, set())
                    & returns_acquired
                )
                if not calls_ra and not _mentions_acquire(fn.node, LOCK_SPEC):
                    continue
                analysis = FunctionAnalysis(
                    fn.node,
                    LOCK_SPEC,
                    resolver=summaries.resolver_for(fn.qualname),
                )
                analysis.run()
                yield from self._report(mod, analysis)
            # Nested defs are outside the call graph; run them in the
            # original intraprocedural mode so nothing regresses.
            for node in ast.walk(mod.tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and id(node) not in graphed_nodes
                    and _mentions_acquire(node, LOCK_SPEC)
                ):
                    analysis = FunctionAnalysis(node, LOCK_SPEC)
                    analysis.run()
                    yield from self._report(mod, analysis)

    def _report(
        self, mod: ModuleInfo, analysis: FunctionAnalysis
    ) -> Iterator[Finding]:
        for site in analysis.leaks.values():
            yield mod.finding(site, "LOCK001", _LEAK_MSG)
        for site in analysis.discards:
            yield mod.finding(site, "LOCK002", _DISCARD_MSG)
        for call, _token, callee in analysis.mixed_calls.values():
            short = callee.rsplit(".", 1)[-1]
            yield mod.finding(
                call, "LOCK003",
                f"held lock passed to {short}(), which releases it on "
                "some paths but not all — the caller cannot know whether "
                "it still owns the lock; make the callee release "
                "unconditionally (try/finally) or not at all",
            )


__all__ = ["LOCK_SPEC", "LockReleaseRule", "RULES", "find_resource_leaks"]

RULES = (LockReleaseRule(),)

"""LOCK rules: the paper's atomic grant/release requirement, statically.

§4 of the paper requires the CDD lock-group table's write locks to be
granted and released atomically: a client that acquires a group and then
dies, raises, or forgets the handle strands the group for every other
CDD.  The rules below run the shared release-on-all-paths analysis
(:mod:`repro.lint.cfg`) over every function that touches a recognized
acquire method (``Mutex.acquire``, ``DistributedLockManager.acquire``,
``CooperativeDiskDriver.acquire_write_locks``):

========  ==============================================================
LOCK001   a lock acquired here may not be released on some path out of
          the function — wrap the held region in ``try/finally`` (or
          transfer ownership into a handle immediately)
LOCK002   the acquire's return value is discarded: nothing can ever
          release this lock
========  ==============================================================
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.cfg import ResourceSpec, find_resource_leaks
from repro.lint.core import Finding, ModuleInfo, Rule

LOCK_SPEC = ResourceSpec(
    acquire_methods=frozenset({"acquire", "acquire_write_locks"}),
    release_methods=frozenset({"release", "release_write_locks"}),
    noun="lock",
    leak_code="LOCK001",
    discard_code="LOCK002",
)


class LockReleaseRule(Rule):
    """LOCK001/LOCK002 over every function in lock-using modules."""

    code = "LOCK"
    summary = "lock acquires must be released on all paths"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith("repro."):
            return
        if mod.package in ("lint", "bench", "analysis"):
            return
        for kind, node in find_resource_leaks(mod.tree, LOCK_SPEC):
            if kind == "leak":
                yield mod.finding(
                    node, "LOCK001",
                    "lock acquired here may not be released on all "
                    "paths; hold it under try/finally (or a with block) "
                    "so a failure between grant and release cannot "
                    "strand the group",
                )
            else:
                yield mod.finding(
                    node, "LOCK002",
                    "acquire result discarded: keep the request handle "
                    "and release it, or nothing ever can",
                )


RULES = (LockReleaseRule(),)

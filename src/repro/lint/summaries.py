"""Interprocedural summaries: determinism taint and lock-ownership fates.

Built on the :mod:`repro.lint.callgraph` substrate, this module computes
the two per-function summary tables the cross-function rule families
consume, each in one bottom-up pass over the SCC condensation (so the
whole thing stays O(functions), not O(paths)):

* **Determinism taint** (:func:`get_taint`) — a function is *tainted*
  when it (transitively) reaches a wall-clock read, a real sleep,
  ``threading``, the stdlib ``random`` module, or unseeded NumPy
  randomness.  Direct sources are the same patterns SIM001/SIM002 match
  literally; taint then propagates caller-ward over resolved call edges,
  carrying the call chain for the report.  SIM005 fires where tainted
  code is *called from* simulation scope — the transitive catch the
  intraprocedural rules miss.
* **Lock-ownership summaries** (:func:`get_lock_summaries`) — every
  function is run once in the :class:`~repro.lint.cfg.FunctionAnalysis`
  summary mode (parameters seeded as held tokens) to classify what it
  does with a token handed to it (releases / keeps / escapes / mixed)
  and whether it returns a fresh acquire on every path.  The resulting
  :class:`~repro.lint.cfg.LockSummary` table is what the caller-mode
  resolver feeds back into the abstract interpreter.

Members of a non-trivial SCC (mutual recursion) get no lock summary —
callers fall back to the conservative ownership-transfer behavior — and
taint inside an SCC is unioned to a fixpoint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.cfg import FunctionAnalysis, LockSummary, Resolver, ResourceSpec

#: Wall-clock reads and real sleeps (resolved dotted origins).  These are
#: the canonical source sets — :mod:`repro.lint.rules_sim` re-exports
#: them for the literal (SIM001/SIM002) checks.
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
REAL_SLEEP = frozenset({"time.sleep"})

#: numpy.random attributes that are fine to reference (types and the
#: seedable constructor; the constructor's *call* is checked separately).
NP_RANDOM_OK = frozenset(
    {
        "numpy.random.Generator",
        "numpy.random.BitGenerator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.default_rng",
    }
)


@dataclass(frozen=True)
class Taint:
    """Why a function is non-deterministic."""

    #: "wall-clock" | "real-sleep" | "threading" | "random-module"
    #: | "unseeded-rng"
    kind: str
    #: the offending dotted origin, e.g. ``time.perf_counter``.
    origin: str
    #: call chain from the tainted function down to (and including) the
    #: function containing the direct source; empty for a direct source.
    chain: Tuple[str, ...]

    def describe(self) -> str:
        if not self.chain:
            return f"{self.origin} ({self.kind})"
        via = " -> ".join(self.chain)
        return f"{self.origin} ({self.kind}) via {via}"


def _direct_taint(fn: FunctionInfo) -> Optional[Taint]:
    mod = fn.mod
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            names = (
                [a.name for a in node.names]
                if isinstance(node, ast.Import)
                else [node.module or ""]
            )
            for name in names:
                root = name.split(".")[0]
                if root == "threading":
                    return Taint("threading", f"import {name}", ())
                if root == "random":
                    return Taint("random-module", f"import {name}", ())
        elif isinstance(node, ast.Call):
            origin = mod.resolve(node.func)
            if origin is None:
                continue
            root = origin.split(".")[0]
            if origin in WALL_CLOCK:
                return Taint("wall-clock", origin, ())
            if origin in REAL_SLEEP:
                return Taint("real-sleep", origin, ())
            if root == "threading":
                return Taint("threading", origin, ())
            if root == "random":
                return Taint("random-module", origin, ())
            if origin == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    return Taint("unseeded-rng", origin, ())
            elif origin.startswith("numpy.random.") and origin not in NP_RANDOM_OK:
                return Taint("unseeded-rng", origin, ())
    return None


def compute_taint(graph: CallGraph) -> Dict[str, Taint]:
    """Taint per function qualname; absent means provably clean (w.r.t.
    the known graph — unresolved calls contribute nothing, same as the
    intraprocedural rules)."""
    taints: Dict[str, Taint] = {}
    for scc in graph.sccs():
        for qual in scc:
            t = _direct_taint(graph.functions[qual])
            if t is not None:
                taints[qual] = t
        # Propagate from callees; within an SCC iterate to a fixpoint
        # (each member is assigned at most once, so this terminates).
        changed = True
        while changed:
            changed = False
            for qual in scc:
                if qual in taints:
                    continue
                for callee in sorted(graph.calls_all.get(qual, ())):
                    ct = taints.get(callee)
                    if ct is None:
                        continue
                    taints[qual] = Taint(
                        ct.kind, ct.origin, (callee,) + ct.chain
                    )
                    changed = True
                    break
    return taints


def get_taint(graph: CallGraph) -> Dict[str, Taint]:
    cached = getattr(graph, "_taint_table", None)
    if cached is None:
        cached = compute_taint(graph)
        graph._taint_table = cached  # type: ignore[attr-defined]
    return cached


class LockSummaries:
    """Lock-ownership summary table for one (graph, spec) pair.

    ``summaries[qual]`` is the callee's :class:`LockSummary`, or ``None``
    for members of recursion cycles (conservative: callers treat their
    calls as ownership transfer, exactly the pre-interprocedural
    behavior).  :meth:`resolver_for` builds the per-caller closure that
    :class:`FunctionAnalysis` consumes.
    """

    def __init__(self, graph: CallGraph, spec: ResourceSpec):
        self.graph = graph
        self.spec = spec
        self.summaries: Dict[str, Optional[LockSummary]] = {}
        self._call_maps: Dict[str, Dict[int, Tuple[str, bool]]] = {}
        for scc in graph.sccs(certain_only=True):
            if len(scc) > 1:
                for qual in scc:
                    self.summaries[qual] = None
                continue
            qual = scc[0]
            fn = graph.functions[qual]
            analysis = FunctionAnalysis(
                fn.node,
                spec,
                resolver=self.resolver_for(qual),
                initial=fn.params,
            )
            analysis.run()
            self.summaries[qual] = LockSummary(
                qual,
                fn.params,
                analysis.param_fates(),
                analysis.returns_acquired(),
            )

    def _call_map(self, qual: str) -> Dict[int, Tuple[str, bool]]:
        cmap = self._call_maps.get(qual)
        if cmap is None:
            cmap = {}
            fn = self.graph.functions[qual]
            for callee, call, certain in self.graph.sites.get(qual, ()):
                if not certain:
                    # Lockset edges use the certain tier only: crediting
                    # a release on a guessed edge would hide real leaks.
                    continue
                cmap[id(call)] = (callee, self._needs_shift(fn, call, callee))
            self._call_maps[qual] = cmap
        return cmap

    def _needs_shift(
        self, fn: FunctionInfo, call: ast.Call, callee_qual: str
    ) -> bool:
        """``ClassName.method(obj, tok)`` passes the receiver explicitly,
        so positional arguments sit one slot right of the bound form."""
        callee = self.graph.functions.get(callee_qual)
        if callee is None or callee.cls is None:
            return False
        return self.graph.resolved_via_symbol(fn.mod, call) == callee_qual

    def resolver_for(self, qual: str) -> Resolver:
        cmap = self._call_map(qual)

        def resolve(call: ast.Call) -> Optional[LockSummary]:
            hit = cmap.get(id(call))
            if hit is None:
                return None
            callee, shift = hit
            summary = self.summaries.get(callee)
            if summary is None:
                return None
            if shift:
                return LockSummary(
                    summary.qualname,
                    ("<self>",) + summary.param_order,
                    summary.fates,
                    summary.returns_acquired,
                )
            return summary

        return resolve

    def returns_acquired_quals(self) -> set:
        return {
            q
            for q, s in self.summaries.items()
            if s is not None and s.returns_acquired
        }


def get_lock_summaries(graph: CallGraph, spec: ResourceSpec) -> LockSummaries:
    cache = getattr(graph, "_lock_summaries", None)
    if cache is None:
        cache = {}
        graph._lock_summaries = cache  # type: ignore[attr-defined]
    table = cache.get(spec)
    if table is None:
        table = LockSummaries(graph, spec)
        cache[spec] = table
    return table

"""Baseline handling: grandfathered findings.

The baseline file is a JSON object ``{"version": 1, "fingerprints":
[...]}``.  A finding whose fingerprint appears in it is *baselined*:
still reported, but it does not fail the run.  The committed baseline
(``lint-baseline.json``) is empty on purpose; ``--write-baseline``
exists for bootstrapping a branch mid-remediation, not for parking
violations long-term.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.core import Finding

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> set:
    p = Path(path)
    if not p.exists():
        return set()
    data = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"{path}: not a lint baseline file")
    return set(data["fingerprints"])


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({f.fingerprint for f in findings}),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def prune_baseline(
    path: str | Path, findings: Sequence[Finding]
) -> tuple[int, int]:
    """Drop baseline fingerprints no longer matched by any current
    finding; returns ``(kept, dropped)``.  The file is rewritten only
    when something was dropped."""
    baseline = load_baseline(path)
    current = {f.fingerprint for f in findings}
    kept = sorted(baseline & current)
    dropped = len(baseline) - len(kept)
    if dropped:
        payload = {"version": BASELINE_VERSION, "fingerprints": kept}
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    return len(kept), dropped


def split_by_baseline(
    findings: Sequence[Finding], baseline: set
) -> tuple:
    """``(new, grandfathered)`` according to ``baseline``."""
    new = [f for f in findings if f.fingerprint not in baseline]
    old = [f for f in findings if f.fingerprint in baseline]
    return new, old

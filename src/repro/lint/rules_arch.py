"""ARCH rules: import layering over the paper's module stack.

The reproduction is layered the way the paper's Figure 2 stacks its
software: the DES kernel (``sim``) at the bottom knows nothing above it;
device models (``hardware``, ``io``) sit on the kernel; the CDD/SIOS
layer (``cluster``) owns every hardware object; placement math
(``raid``), observability (``obs``) and the buffer-cache bookkeeping
(``cache``, whose own CACHE rules live in
:mod:`repro.lint.rules_cache`) are freestanding utilities; and
everything application-shaped (``fs``, ``checkpoint``, ``workloads``,
``fault``, ``analysis``, ``bench``) stacks on top.  Only module-level
imports count — lazy function-level imports and ``TYPE_CHECKING`` blocks
are the sanctioned cycle-breakers and are exempt.

The plan/execute split adds one finer-grained contract on top of the
package table: ``repro.raid.plan`` and ``repro.raid.planners`` are the
*pure* half of the I/O path.  They may see only placement math and the
base modules — never the sim kernel, hardware models, or the cluster
layer, not even lazily — and they must not contain ``yield``: a planner
that becomes a process generator has smuggled execution into planning.
(The executing half, ``repro.cluster.engine``, is an ordinary
``cluster`` module and follows the table above.)

========  ==============================================================
ARCH001   a package imports a layer it must not see (e.g. ``sim``
          importing anything, ``hardware`` importing ``cluster``)
ARCH002   ``Disk``/``ScsiBus`` reached directly from outside the
          hardware/cluster boundary — all disk access goes through the
          CDD / single-I/O-space path
ARCH003   an import cycle among modules (module-level imports only)
ARCH004   a planner module (``repro.raid.plan``/``planners``) imports
          outside raid + base modules (even lazily) or contains a
          ``yield`` — planners are pure, the engine executes
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set

from repro.lint.core import (
    BASE_MODULES,
    Finding,
    ModuleInfo,
    ProjectRule,
)

#: Which sibling packages each package may import (``units``/``errors``/
#: ``config`` are always allowed; intra-package imports likewise).
ALLOWED_IMPORTS: Dict[str, Set[str]] = {
    "sim": set(),
    "obs": set(),
    "raid": set(),
    "hardware": {"sim", "obs", "io"},
    "io": {"sim", "obs", "hardware"},
    "cache": set(),
    "cluster": {"sim", "obs", "hardware", "io", "raid", "cache"},
    "fs": {"sim", "obs", "hardware", "io", "raid", "cache", "cluster"},
    "checkpoint": {
        "sim", "obs", "hardware", "io", "raid", "cache", "cluster", "fs",
    },
    "workloads": {
        "sim", "obs", "hardware", "io", "raid", "cache", "cluster", "fs",
        "checkpoint",
    },
    "fault": {
        "sim", "obs", "hardware", "io", "raid", "cache", "cluster", "fs",
        "checkpoint", "workloads",
    },
    "analysis": {
        "sim", "obs", "hardware", "io", "raid", "cache", "cluster", "fs",
        "checkpoint", "workloads", "fault",
    },
    "bench": {
        "sim", "obs", "hardware", "io", "raid", "cache", "cluster", "fs",
        "checkpoint", "workloads", "fault", "analysis",
    },
    "lint": set(),
}

#: Names that must not cross the CDD/SIOS boundary.
_BOUNDARY_NAMES = {"Disk", "ScsiBus"}
#: Packages allowed to touch them (plus the defining modules themselves).
_BOUNDARY_PACKAGES = {"hardware", "cluster"}


def _dest_package(imported: str) -> str | None:
    parts = imported.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


class ArchLayeringRule(ProjectRule):
    """ARCH001: the layer table above, enforced."""

    code = "ARCH001"
    summary = "import-layering violation"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        for mod in mods:
            src_pkg = mod.package
            if not mod.module.startswith("repro.") or not src_pkg:
                continue
            allowed = ALLOWED_IMPORTS.get(src_pkg)
            if allowed is None:
                continue
            for imported, _name, lineno, top in mod.repro_imports:
                if not top:
                    continue  # lazy imports are the sanctioned escape
                dst = _dest_package(imported)
                if (
                    dst is None
                    or dst == src_pkg
                    or dst in BASE_MODULES
                    or dst in allowed
                ):
                    continue
                yield Finding(
                    self.code, mod.path, lineno, 0,
                    f"{src_pkg} must not import {dst} "
                    f"({mod.module} -> {imported}); the layer table in "
                    "repro.lint.rules_arch names what each layer may see",
                )


class ArchBoundaryRule(ProjectRule):
    """ARCH002: Disk/ScsiBus stay behind the CDD/SIOS boundary."""

    code = "ARCH002"
    summary = "Disk/ScsiBus reached past the CDD/SIOS boundary"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        for mod in mods:
            if not mod.module.startswith("repro."):
                continue
            if mod.package in _BOUNDARY_PACKAGES:
                continue
            for imported, name, lineno, _top in mod.repro_imports:
                if not imported.startswith("repro.hardware"):
                    continue
                if name in _BOUNDARY_NAMES:
                    yield Finding(
                        self.code, mod.path, lineno, 0,
                        f"{name} imported outside the CDD/SIOS boundary "
                        f"({mod.module}); disk access goes through the "
                        "cluster layer (CooperativeDiskDriver / "
                        "SingleIOSpace), never the raw device",
                    )


class ArchCycleRule(ProjectRule):
    """ARCH003: the module-level import graph stays a DAG."""

    code = "ARCH003"
    summary = "import cycle"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        known = {m.module for m in mods}
        graph: Dict[str, Set[str]] = {m.module: set() for m in mods}
        lines: Dict[tuple, int] = {}
        for mod in mods:
            for imported, name, lineno, top in mod.repro_imports:
                if not top:
                    continue
                dst = imported
                if dst not in known and name and f"{dst}.{name}" in known:
                    dst = f"{dst}.{name}"  # `from repro.x import y` submodule
                if dst in known and dst != mod.module:
                    graph[mod.module].add(dst)
                    lines.setdefault((mod.module, dst), lineno)

        for cycle in _find_cycles(graph):
            head = cycle[0]
            mod = next(m for m in mods if m.module == head)
            lineno = lines.get((cycle[0], cycle[1 % len(cycle)]), 1)
            yield Finding(
                self.code, mod.path, lineno, 0,
                "import cycle: " + " -> ".join(cycle + [head]) + " "
                "(break it with a lazy import or by moving the shared "
                "type down a layer)",
            )


#: The pure half of the plan/execute split.  These modules describe I/O
#: as data; the ExecutionEngine (repro.cluster.engine) runs it.
PLANNER_MODULES = ("repro.raid.plan", "repro.raid.planners")
#: What planners may import from repro (intra-raid plus the base set).
_PLANNER_ALLOWED = {"raid"} | BASE_MODULES


class PlannerPurityRule(ProjectRule):
    """ARCH004: planners stay pure — data in, IOPlan out."""

    code = "ARCH004"
    summary = "planner module is not pure"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        for mod in mods:
            if mod.module not in PLANNER_MODULES:
                continue
            # Unlike ARCH001, lazy imports are NOT an escape hatch here:
            # a planner that lazily imports the sim kernel is still
            # executing, just sneakily.
            for imported, name, lineno, _top in mod.repro_imports:
                dst = _dest_package(imported)
                if dst is None or dst in _PLANNER_ALLOWED:
                    continue
                yield Finding(
                    self.code, mod.path, lineno, 0,
                    f"planner module {mod.module} imports repro.{dst} "
                    f"({imported}); planners are pure — geometry in, "
                    "IOPlan out — and only the engine "
                    "(repro.cluster.engine) may touch the sim kernel, "
                    "hardware, or cluster layers",
                )
            for node in ast.walk(mod.tree):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    yield Finding(
                        self.code, mod.path, node.lineno, 0,
                        f"yield in planner module {mod.module}; a "
                        "planner must not be a process generator — "
                        "return a declarative plan and let the "
                        "ExecutionEngine schedule the simulator events",
                    )


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components with more than one member (plus
    self-loops), smallest member first for stable reporting."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            if len(comp) > 1 or v in graph.get(v, ()):
                comp.sort()
                sccs.append(comp)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    sccs.sort()
    return sccs


RULES = (
    ArchLayeringRule(),
    ArchBoundaryRule(),
    ArchCycleRule(),
    PlannerPurityRule(),
)

"""repro.lint — the simulator-aware static analyzer.

Run it locally with::

    PYTHONPATH=src python -m repro.lint src            # text output
    python -m repro.lint src --format json             # machine output
    python -m repro.lint src --select SIM,LOCK001      # one family/rule

Rule families (see each module's docstring for the full rationale):

* **SIM** (:mod:`repro.lint.rules_sim`) — determinism: no wall clock,
  no real sleeps, no threads, no unseeded randomness, only kernel-legal
  yields, numeric-yield sleeps on the hot path.
* **LOCK** (:mod:`repro.lint.rules_lock`) — the paper's atomic
  grant/release: every lock acquire releases on all paths.
* **OBS** (:mod:`repro.lint.rules_obs`) — tracing discipline: runtime
  slot only, open spans always closed.
* **ARCH** (:mod:`repro.lint.rules_arch`) — import layering, the
  Disk/ScsiBus boundary, cycle detection.
* **FF** (:mod:`repro.lint.rules_ff`) — the fast-forward legality
  contract: guard-state mutations only at owning sites, float-only
  pricing, ``ff_preload`` downstream of ``ff_ready``.
* **CACHE** (:mod:`repro.lint.rules_cache`) — the buffer-cache layer
  boundary: no layer below the engine imports ``repro.cache``, and the
  cache package itself stays pure bookkeeping.
* **LINT** (:mod:`repro.lint.rules_lint`) — stale suppressions.

The SIM taint, LOCK, OBS span, and FF families are *interprocedural*:
they share one project call graph (:mod:`repro.lint.callgraph`) and
per-function summary tables (:mod:`repro.lint.summaries`), so a
violation hidden one call deep — a wall-clock read in a helper, a lock
released in a callee, a guard-state write in a function nobody guards —
is caught at the boundary where it matters.

Baseline: findings whose fingerprints appear in ``lint-baseline.json``
are grandfathered (reported but not fatal).  The repo's committed
baseline is **empty** and should stay that way — fix the finding or
justify a line-scoped ``# lint: ignore[CODE]`` instead.
"""

from __future__ import annotations

from typing import Sequence

from repro.lint.baseline import load_baseline, split_by_baseline
from repro.lint.core import (
    Finding,
    ModuleInfo,
    ProjectRule,
    Rule,
    load_modules,
    run_rules,
)
from repro.lint.rules_arch import RULES as ARCH_RULES
from repro.lint.rules_cache import RULES as CACHE_RULES
from repro.lint.rules_ff import RULES as FF_RULES
from repro.lint.rules_lint import RULES as LINT_RULES
from repro.lint.rules_lock import RULES as LOCK_RULES
from repro.lint.rules_obs import RULES as OBS_RULES
from repro.lint.rules_sim import RULES as SIM_RULES

#: Every registered rule, in reporting order.  LINT_RULES must stay
#: last: LINT001 reports the suppressions every *earlier* rule's
#: findings failed to use.
ALL_RULES = (
    tuple(SIM_RULES)
    + tuple(LOCK_RULES)
    + tuple(OBS_RULES)
    + tuple(ARCH_RULES)
    + tuple(FF_RULES)
    + tuple(CACHE_RULES)
    + tuple(LINT_RULES)
)


def lint_paths(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Parse ``paths`` and run every (selected) rule; returns findings."""
    mods, parse_errors = load_modules(paths)
    return parse_errors + run_rules(mods, ALL_RULES, select)


def lint_sources(
    sources: dict[str, str],
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint in-memory sources (``{module_name: source}``) — the fixture
    entry point the rule tests use."""
    mods = [
        ModuleInfo(name.replace(".", "/") + ".py", name, src)
        for name, src in sources.items()
    ]
    return run_rules(mods, ALL_RULES, select)


__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleInfo",
    "ProjectRule",
    "Rule",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "load_modules",
    "run_rules",
    "split_by_baseline",
]

"""CLI: ``python -m repro.lint [paths] [--format text|json] ...``.

Exit status: 0 when every finding is baselined (or none), 1 when any
non-baselined finding exists, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Sequence

from repro.lint import ALL_RULES, lint_paths
from repro.lint.baseline import (
    load_baseline,
    prune_baseline,
    split_by_baseline,
    write_baseline,
)

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Simulator-aware static analysis for the RAID-x repro "
        "(SIM determinism, LOCK release-on-all-paths, OBS tracing "
        "discipline, ARCH layering).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule or family prefixes, e.g. SIM,LOCK001",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered fingerprints "
        f"(default: {DEFAULT_BASELINE}; missing file = empty baseline)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write every current finding to the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline fingerprints that no longer match any "
        "finding (stale grandfathering), then exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code:8} {rule.summary}")
        return 0

    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    findings = lint_paths(args.paths, select=select)

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"wrote {len(findings)} fingerprint(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    if args.prune_baseline:
        kept, dropped = prune_baseline(args.baseline, findings)
        print(
            f"pruned {dropped} stale fingerprint(s) from {args.baseline} "
            f"({kept} kept)",
            file=sys.stderr,
        )
        return 0

    baseline = load_baseline(args.baseline)
    new, grandfathered = split_by_baseline(findings, baseline)

    if args.format == "json":
        payload = {
            "version": 1,
            "tool": "repro.lint",
            "select": select or [],
            "findings": [f.to_dict() for f in new],
            "baselined": [f.to_dict() for f in grandfathered],
            "summary": {
                "findings": len(new),
                "baselined": len(grandfathered),
                "by_rule": dict(Counter(f.rule for f in new)),
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        for f in new:
            print(f.render())
        for f in grandfathered:
            print(f"{f.render()}  [baselined]")
        if new:
            print(
                f"\n{len(new)} finding(s)"
                + (f", {len(grandfathered)} baselined" if grandfathered else "")
            )
        else:
            print(
                "clean"
                + (f" ({len(grandfathered)} baselined)" if grandfathered else "")
            )
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())

"""SIM rules: determinism and simulation hygiene.

Simulation code (everything under the packages in
:data:`repro.lint.core.SIM_SCOPE`) runs inside a single-threaded
discrete-event kernel whose only clock is ``env.now`` and whose only
randomness is :class:`repro.sim.rand.RandomStreams`.  Wall-clock reads,
real sleeps, threads, or unseeded draws silently break reproducibility
— the exact bug class a seed-pinned simulator exists to rule out.

========  ==============================================================
SIM001    wall-clock / real-sleep / threading use in simulation code
SIM002    ``random`` module or unseeded NumPy randomness in simulation
          code (use ``repro.sim.rand`` named streams, or at minimum an
          explicitly seeded ``default_rng``)
SIM003    a process generator yields a value the kernel cannot wait on
          (string, tuple/list/dict display, ``None``, bool)
SIM004    ``yield env.timeout(dt)`` where the documented hot-path form
          is a plain numeric ``yield dt``
SIM005    simulation code calls a helper that (transitively) reaches a
          wall-clock read, real sleep, threading, or unseeded
          randomness — the interprocedural extension of SIM001/SIM002,
          reported where the taint *enters* simulation scope
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.callgraph import get_callgraph
from repro.lint.core import Finding, ModuleInfo, ProjectRule, Rule
from repro.lint.summaries import (
    NP_RANDOM_OK as _NP_RANDOM_OK,
    REAL_SLEEP as _REAL_SLEEP,
    WALL_CLOCK as _WALL_CLOCK,
    get_taint,
)


class SimWallClockRule(Rule):
    """SIM001: simulated code must take time only from ``env.now``."""

    code = "SIM001"
    summary = "wall-clock, real sleep, or threading in simulation code"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.in_sim_scope:
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                names = (
                    [a.name for a in node.names]
                    if isinstance(node, ast.Import)
                    else [node.module or ""]
                )
                for name in names:
                    if name.split(".")[0] == "threading":
                        yield mod.finding(
                            node, self.code,
                            "threading has no place in simulation code: "
                            "the kernel is single-threaded by design",
                        )
            elif isinstance(node, ast.Call):
                origin = mod.resolve(node.func)
                if origin in _REAL_SLEEP:
                    yield mod.finding(
                        node, self.code,
                        "time.sleep() stalls the real process, not the "
                        "simulation — yield a numeric delay instead",
                    )
                elif origin in _WALL_CLOCK:
                    yield mod.finding(
                        node, self.code,
                        f"{origin}() reads the wall clock; simulation "
                        "code must use env.now",
                    )


class SimRandomnessRule(Rule):
    """SIM002: randomness must be named, seeded streams."""

    code = "SIM002"
    summary = "random module or unseeded randomness in simulation code"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.in_sim_scope:
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield mod.finding(
                            node, self.code,
                            "the stdlib random module is process-global "
                            "state; draw from repro.sim.rand streams",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "random":
                    yield mod.finding(
                        node, self.code,
                        "the stdlib random module is process-global "
                        "state; draw from repro.sim.rand streams",
                    )
            elif isinstance(node, ast.Call):
                origin = mod.resolve(node.func)
                if origin is None or not origin.startswith("numpy.random."):
                    continue
                if origin == "numpy.random.default_rng":
                    if not node.args and not node.keywords:
                        yield mod.finding(
                            node, self.code,
                            "default_rng() without a seed draws from OS "
                            "entropy; pass an explicit seed (or use "
                            "repro.sim.rand.RandomStreams)",
                        )
                elif origin not in _NP_RANDOM_OK:
                    yield mod.finding(
                        node, self.code,
                        f"{origin}() uses NumPy's legacy global stream; "
                        "use a seeded Generator (repro.sim.rand)",
                    )


class SimYieldRule(Rule):
    """SIM003: process generators may yield only events and numeric delays."""

    code = "SIM003"
    summary = "process generator yields a value the kernel cannot wait on"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.in_sim_scope:
            return
        # Visit every statement list exactly once, tracking the previous
        # sibling (the return-then-yield generator marker needs it).
        for block in ast.walk(mod.tree):
            for slot in ("body", "orelse", "finalbody"):
                stmts = getattr(block, slot, None)
                if not isinstance(stmts, list):
                    continue
                prev = None
                for stmt in stmts:
                    if isinstance(stmt, ast.stmt):
                        yield from self._check_stmt(mod, stmt, prev)
                    prev = stmt

    def _check_stmt(
        self, mod: ModuleInfo, stmt: ast.stmt, prev: ast.stmt | None
    ) -> Iterator[Finding]:
        if not isinstance(stmt, (ast.Expr, ast.Assign)):
            return
        value = stmt.value
        if not isinstance(value, ast.Yield):
            return
        yielded = value.value
        if yielded is None or (
            isinstance(yielded, ast.Constant) and yielded.value is None
        ):
            # ``return`` followed by an unreachable bare ``yield`` is the
            # sanctioned marker that keeps a no-op body a generator.
            if isinstance(prev, (ast.Return, ast.Raise)):
                return
            yield mod.finding(
                value, self.code,
                "bare yield hands None to the kernel, which cannot wait "
                "on it (only the unreachable return-then-yield generator "
                "marker is exempt)",
            )
        elif isinstance(yielded, ast.Constant) and (
            isinstance(yielded.value, (str, bytes, bool))
        ):
            yield mod.finding(
                value, self.code,
                f"yield of {type(yielded.value).__name__} constant: a "
                "process may only yield Events or numeric delays",
            )
        elif isinstance(
            yielded,
            (ast.List, ast.Tuple, ast.Dict, ast.Set, ast.ListComp,
             ast.SetComp, ast.DictComp, ast.GeneratorExp, ast.JoinedStr),
        ):
            yield mod.finding(
                value, self.code,
                "yield of a container/string display: wrap multiple "
                "events in env.all_of()/env.any_of()",
            )


class SimTimeoutFormRule(Rule):
    """SIM004: plain numeric yields are the documented hot-path sleep."""

    code = "SIM004"
    summary = "yield env.timeout(dt) where a numeric yield is the hot-path form"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.in_sim_scope:
            return
        for stmt in ast.walk(mod.tree):
            if not isinstance(stmt, ast.Expr):
                continue
            value = stmt.value
            if not isinstance(value, ast.Yield) or value.value is None:
                continue
            call = value.value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "timeout"
                and len(call.args) == 1
                and not call.keywords
            ):
                continue
            recv = call.func.value
            is_env = (isinstance(recv, ast.Name) and recv.id == "env") or (
                isinstance(recv, ast.Attribute) and recv.attr in ("env", "_env")
            )
            if is_env:
                yield mod.finding(
                    call, self.code,
                    "yield env.timeout(dt): the kernel's hot-path sleep "
                    "is a plain numeric `yield dt` (no Timeout object, "
                    "no callback dispatch)",
                )


class SimTaintRule(ProjectRule):
    """SIM005: transitive determinism violations, caught at the boundary.

    SIM001/SIM002 fire at the literal offending call, but only inside
    sim-scope modules — a helper in a non-scope package (``bench``,
    ``analysis``, a utility module) that reads the wall clock is
    invisible to them.  This rule propagates taint over the project call
    graph and reports every sim-scope call site whose resolved callee is
    tainted and lives *outside* sim scope: the edge where
    non-determinism crosses into the simulator.  (Inside sim scope the
    source itself is already a SIM001/SIM002 finding; re-reporting every
    caller would only add noise.)
    """

    code = "SIM005"
    summary = "call into code that transitively reaches a determinism violation"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        if not any(m.in_sim_scope for m in mods):
            return
        graph = get_callgraph(mods)
        taints = get_taint(graph)
        if not taints:
            return
        for mod in mods:
            if not mod.in_sim_scope:
                continue
            for fn in graph.functions_in(mod):
                for callee, call, _certain in graph.sites.get(fn.qualname, ()):
                    taint = taints.get(callee)
                    if taint is None:
                        continue
                    callee_fn = graph.functions[callee]
                    if callee_fn.mod.in_sim_scope:
                        continue  # source is reported there directly
                    yield mod.finding(
                        call, self.code,
                        f"{callee_fn.node.name}() transitively reaches "
                        f"{taint.describe()} (defined outside simulation "
                        f"scope in {callee_fn.module}); simulation code "
                        "must stay deterministic through every helper it "
                        "calls",
                    )


RULES = (
    SimWallClockRule(),
    SimRandomnessRule(),
    SimYieldRule(),
    SimTimeoutFormRule(),
    SimTaintRule(),
)

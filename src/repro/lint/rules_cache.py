"""CACHE rules: the buffer-cache layer boundary.

:mod:`repro.cache` is the *bookkeeping* half of the buffer-cache layer
introduced in DESIGN §6.17: pure state machines (block states, eviction
policies, destage selection, the write-invalidate directory) with no
simulator time in them.  The *timing* half lives in
``repro.cluster.cache_stage``, an ordinary ``cluster`` module.  Two
contracts keep that split honest:

========  ==============================================================
CACHE001  a layer below the engine (``sim``, ``hardware``, ``io``,
          ``raid``, ``obs``) imports ``repro.cache`` — even lazily.
          The cache is an engine-level stage; if a disk model or a
          planner needs cache state, that state must be passed *down*
          as plain data (e.g. :class:`repro.raid.plan.WriteContext`),
          never reached *up* for.
CACHE002  a ``repro.cache`` module imports outside cache + base
          modules (even lazily), or contains ``yield`` — the cache
          package is pure bookkeeping; anything that needs simulated
          time belongs in the cluster-layer cache stage
========  ==============================================================

Lazy imports are deliberately NOT an escape hatch for either rule
(unlike ARCH001): both directions of this boundary are semantic, not
just a cycle-avoidance concern.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.core import (
    BASE_MODULES,
    Finding,
    ModuleInfo,
    ProjectRule,
)

#: Packages strictly below the execution engine in the layer stack.
BELOW_ENGINE = frozenset({"sim", "hardware", "io", "raid", "obs"})

_CACHE_ALLOWED = {"cache"} | BASE_MODULES


def _dest_package(imported: str) -> str | None:
    parts = imported.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


class CacheLayerRule(ProjectRule):
    """CACHE001: nothing below the engine may see the cache."""

    code = "CACHE001"
    summary = "sub-engine layer imports repro.cache"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        for mod in mods:
            if mod.package not in BELOW_ENGINE:
                continue
            for imported, _name, lineno, _top in mod.repro_imports:
                if _dest_package(imported) != "cache":
                    continue
                yield Finding(
                    self.code, mod.path, lineno, 0,
                    f"{mod.module} (layer {mod.package}) imports "
                    f"{imported}; the buffer cache is an engine-level "
                    "stage — layers below the engine receive cache "
                    "state as plain data (WriteContext), they never "
                    "import repro.cache, not even lazily",
                )


class CachePurityRule(ProjectRule):
    """CACHE002: the cache package stays pure bookkeeping."""

    code = "CACHE002"
    summary = "repro.cache module is not pure"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        for mod in mods:
            if mod.package != "cache":
                continue
            # Like ARCH004, lazy imports are NOT exempt: a cache module
            # that lazily imports the sim kernel is still scheduling,
            # just sneakily.
            for imported, _name, lineno, _top in mod.repro_imports:
                dst = _dest_package(imported)
                if dst is None or dst in _CACHE_ALLOWED:
                    continue
                yield Finding(
                    self.code, mod.path, lineno, 0,
                    f"cache module {mod.module} imports repro.{dst} "
                    f"({imported}); repro.cache is pure bookkeeping — "
                    "only cache-internal and base modules are allowed; "
                    "timing belongs in repro.cluster.cache_stage",
                )
            for node in ast.walk(mod.tree):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    yield Finding(
                        self.code, mod.path, node.lineno, 0,
                        f"yield in cache module {mod.module}; the cache "
                        "package must not contain process generators — "
                        "hits, fills and destages are timed by the "
                        "cluster-layer cache stage",
                    )


RULES = (CacheLayerRule(), CachePurityRule())

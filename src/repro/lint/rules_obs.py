"""OBS rules: tracing discipline.

The tracing subsystem has exactly one sanctioned wiring: instrumentation
reads the process-wide slot (``repro.obs.runtime.TRACER``), installs go
through ``runtime.install()``/``runtime.tracing()``, and open spans
(:meth:`Tracer.open_span`) are closed on every exit — an unclosed span
is a silent hole in the trace that skews every percentile computed from
it.

========  ==============================================================
OBS001    direct ``Tracer()``/``NullTracer()`` construction outside
          ``repro.obs`` — bypasses the runtime slot, so instrumentation
          sites will not see it
OBS002    a span opened with ``open_span`` may not be closed on some
          path — close it in ``finally`` or use it as a context manager
OBS003    assignment to the ``TRACER`` slot outside
          ``repro.obs.runtime`` — use ``install()``/``tracing()``
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.cfg import ResourceSpec, find_resource_leaks
from repro.lint.core import Finding, ModuleInfo, Rule

SPAN_SPEC = ResourceSpec(
    acquire_methods=frozenset({"open_span"}),
    release_methods=frozenset({"close"}),
    noun="span",
    leak_code="OBS002",
    discard_code="OBS002",
)

_TRACER_CLASSES = {
    "repro.obs.trace.Tracer",
    "repro.obs.trace.NullTracer",
    "repro.obs.Tracer",
    "repro.obs.NullTracer",
}


class ObsDirectTracerRule(Rule):
    """OBS001: tracers are installed through the runtime slot, not built
    ad hoc."""

    code = "OBS001"
    summary = "direct tracer construction bypassing the runtime slot"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith("repro.") or mod.package in (
            "obs", "lint",
        ):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = mod.resolve(node.func)
            if origin in _TRACER_CLASSES:
                yield mod.finding(
                    node, self.code,
                    f"direct {origin.rsplit('.', 1)[-1]}() construction "
                    "bypasses the process-wide slot; use "
                    "repro.obs.runtime.install() or tracing()",
                )


class ObsSpanCloseRule(Rule):
    """OBS002: spans opened with ``open_span`` close on every path."""

    code = "OBS002"
    summary = "open span not closed on all paths"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith("repro.") or mod.package == "lint":
            return
        for kind, node in find_resource_leaks(mod.tree, SPAN_SPEC):
            if kind == "leak":
                yield mod.finding(
                    node, self.code,
                    "span opened here may not be closed on all paths; "
                    "close it in finally or use `with tracer.open_span(...)`",
                )
            else:
                yield mod.finding(
                    node, self.code,
                    "open_span result discarded: the span can never be "
                    "closed (use record() for one-shot spans)",
                )


class ObsSlotAssignRule(Rule):
    """OBS003: only the runtime module writes the TRACER slot."""

    code = "OBS003"
    summary = "TRACER slot assigned outside repro.obs.runtime"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if mod.module in ("repro.obs.runtime",) or mod.package == "lint":
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr == "TRACER"
                ):
                    continue
                origin = mod.resolve(target.value)
                if origin in (
                    "repro.obs.runtime",
                    "repro.obs.runtime.TRACER",
                ) or (origin or "").endswith(".runtime"):
                    yield mod.finding(
                        node, self.code,
                        "assigning the TRACER slot directly skips "
                        "install()/tracing() bookkeeping; never poke "
                        "runtime.TRACER from outside repro.obs.runtime",
                    )


RULES = (ObsDirectTracerRule(), ObsSpanCloseRule(), ObsSlotAssignRule())

"""OBS rules: tracing discipline.

The tracing subsystem has exactly one sanctioned wiring: instrumentation
reads the process-wide slot (``repro.obs.runtime.TRACER``), installs go
through ``runtime.install()``/``runtime.tracing()``, and open spans
(:meth:`Tracer.open_span`) are closed on every exit — an unclosed span
is a silent hole in the trace that skews every percentile computed from
it.

========  ==============================================================
OBS001    direct ``Tracer()``/``NullTracer()`` construction outside
          ``repro.obs`` — bypasses the runtime slot, so instrumentation
          sites will not see it
OBS002    a span opened with ``open_span`` may not be closed on some
          path — close it in ``finally`` or use it as a context manager
OBS003    assignment to the ``TRACER`` slot outside
          ``repro.obs.runtime`` — use ``install()``/``tracing()``
OBS004    nondeterminism (RNG draws, wall clock) in a sampling decision
          path — sampling must be a pure function of (trace id, seed)
          so every process of a sharded sweep keeps the same traces
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.callgraph import get_callgraph
from repro.lint.cfg import FunctionAnalysis, ResourceSpec, find_resource_leaks
from repro.lint.core import Finding, ModuleInfo, ProjectRule, Rule
from repro.lint.rules_sim import _WALL_CLOCK
from repro.lint.summaries import get_lock_summaries

SPAN_SPEC = ResourceSpec(
    acquire_methods=frozenset({"open_span"}),
    release_methods=frozenset({"close"}),
    noun="span",
    leak_code="OBS002",
    discard_code="OBS002",
)

_TRACER_CLASSES = {
    "repro.obs.trace.Tracer",
    "repro.obs.trace.NullTracer",
    "repro.obs.Tracer",
    "repro.obs.NullTracer",
}


class ObsDirectTracerRule(Rule):
    """OBS001: tracers are installed through the runtime slot, not built
    ad hoc."""

    code = "OBS001"
    summary = "direct tracer construction bypassing the runtime slot"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith("repro.") or mod.package in (
            "obs", "lint",
        ):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = mod.resolve(node.func)
            if origin in _TRACER_CLASSES:
                yield mod.finding(
                    node, self.code,
                    f"direct {origin.rsplit('.', 1)[-1]}() construction "
                    "bypasses the process-wide slot; use "
                    "repro.obs.runtime.install() or tracing()",
                )


class ObsSpanCloseRule(ProjectRule):
    """OBS002: spans opened with ``open_span`` close on every path.

    Interprocedural like LOCK001: a span closed inside a helper (callee
    summary ``releases``) is credited in the caller, and a helper that
    returns a fresh ``open_span`` on every path counts as an open site.
    """

    code = "OBS002"
    summary = "open span not closed on all paths (across calls)"

    @staticmethod
    def _in_scope(mod: ModuleInfo) -> bool:
        return mod.module.startswith("repro.") and mod.package != "lint"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        scope = [m for m in mods if self._in_scope(m)]
        if not scope:
            return
        graph = get_callgraph(mods)
        summaries = get_lock_summaries(graph, SPAN_SPEC)
        returns_open = summaries.returns_acquired_quals()
        graphed_nodes = {id(fn.node) for fn in graph.functions.values()}

        def mentions(node: ast.AST) -> bool:
            return any(
                isinstance(n, ast.Attribute)
                and n.attr in SPAN_SPEC.acquire_methods
                for n in ast.walk(node)
            )

        for mod in scope:
            for fn in graph.functions_in(mod):
                calls_ro = bool(
                    graph.calls_certain.get(fn.qualname, set()) & returns_open
                )
                if not calls_ro and not mentions(fn.node):
                    continue
                analysis = FunctionAnalysis(
                    fn.node, SPAN_SPEC,
                    resolver=summaries.resolver_for(fn.qualname),
                )
                analysis.run()
                yield from self._report(mod, analysis)
            for node in ast.walk(mod.tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and id(node) not in graphed_nodes
                    and mentions(node)
                ):
                    analysis = FunctionAnalysis(node, SPAN_SPEC)
                    analysis.run()
                    yield from self._report(mod, analysis)

    def _report(
        self, mod: ModuleInfo, analysis: FunctionAnalysis
    ) -> Iterator[Finding]:
        for site in analysis.leaks.values():
            yield mod.finding(
                site, self.code,
                "span opened here may not be closed on all paths; "
                "close it in finally or use `with tracer.open_span(...)`",
            )
        for site in analysis.discards:
            yield mod.finding(
                site, self.code,
                "open_span result discarded: the span can never be "
                "closed (use record() for one-shot spans)",
            )
        for call, _token, callee in analysis.mixed_calls.values():
            short = callee.rsplit(".", 1)[-1]
            yield mod.finding(
                call, self.code,
                f"open span passed to {short}(), which closes it on some "
                "paths but not all — close it unconditionally in the "
                "callee or keep closing in the caller",
            )


class ObsSlotAssignRule(Rule):
    """OBS003: only the runtime module writes the TRACER slot."""

    code = "OBS003"
    summary = "TRACER slot assigned outside repro.obs.runtime"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if mod.module in ("repro.obs.runtime",) or mod.package == "lint":
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr == "TRACER"
                ):
                    continue
                origin = mod.resolve(target.value)
                if origin in (
                    "repro.obs.runtime",
                    "repro.obs.runtime.TRACER",
                ) or (origin or "").endswith(".runtime"):
                    yield mod.finding(
                        node, self.code,
                        "assigning the TRACER slot directly skips "
                        "install()/tracing() bookkeeping; never poke "
                        "runtime.TRACER from outside repro.obs.runtime",
                    )


class ObsSamplerDeterminismRule(Rule):
    """OBS004: sampling decisions are seeded hashes, never live draws.

    The whole point of deterministic trace sampling is that the keep /
    drop decision for a trace id is identical in every process: sweep
    shards sample coherently, a resumed run keeps the same traces as a
    fresh one, and the fast-forward path reaches the same decision the
    event-driven path would.  Any RNG draw or wall-clock read inside a
    sampling path silently breaks all three, so this rule mirrors
    SIM001/SIM002 for sampler code — which lives in ``repro.obs``,
    outside the SIM rules' scope.

    Scope: function bodies whose name marks them as a sampling decision
    path (``keeps``, or any name containing ``sample``) in any
    ``repro.*`` module.
    """

    code = "OBS004"
    summary = "nondeterministic sampling decision (RNG or wall clock)"

    def _is_sampler(self, name: str) -> bool:
        return name == "keeps" or "sample" in name

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith("repro.") or mod.package == "lint":
            return
        for fn in ast.walk(mod.tree):
            if not isinstance(
                fn, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) or not self._is_sampler(fn.name):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                origin = mod.resolve(node.func)
                if origin is None:
                    continue
                if origin in _WALL_CLOCK:
                    yield mod.finding(
                        node, self.code,
                        f"{origin}() in sampling path {fn.name}(): the "
                        "keep/drop decision must be a pure seeded hash "
                        "of the trace id, not a clock read",
                    )
                elif origin.split(".")[0] == "random":
                    yield mod.finding(
                        node, self.code,
                        f"{origin}() in sampling path {fn.name}(): an "
                        "RNG draw makes the decision depend on draw "
                        "order — hash (trace ^ seed) instead",
                    )
                elif origin.startswith("numpy.random.") and not (
                    origin == "numpy.random.default_rng"
                    and (node.args or node.keywords)
                ):
                    yield mod.finding(
                        node, self.code,
                        f"{origin}() in sampling path {fn.name}(): "
                        "sampling must not consume RNG state; hash "
                        "(trace ^ seed) instead",
                    )


RULES = (
    ObsDirectTracerRule(),
    ObsSpanCloseRule(),
    ObsSlotAssignRule(),
    ObsSamplerDeterminismRule(),
)

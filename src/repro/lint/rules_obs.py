"""OBS rules: tracing discipline.

The tracing subsystem has exactly one sanctioned wiring: instrumentation
reads the process-wide slot (``repro.obs.runtime.TRACER``), installs go
through ``runtime.install()``/``runtime.tracing()``, and open spans
(:meth:`Tracer.open_span`) are closed on every exit — an unclosed span
is a silent hole in the trace that skews every percentile computed from
it.

========  ==============================================================
OBS001    direct ``Tracer()``/``NullTracer()`` construction outside
          ``repro.obs`` — bypasses the runtime slot, so instrumentation
          sites will not see it
OBS002    a span opened with ``open_span`` may not be closed on some
          path — close it in ``finally`` or use it as a context manager
OBS003    assignment to the ``TRACER`` slot outside
          ``repro.obs.runtime`` — use ``install()``/``tracing()``
OBS004    nondeterminism (RNG draws, wall clock) in a sampling decision
          path — sampling must be a pure function of (trace id, seed)
          so every process of a sharded sweep keeps the same traces
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.cfg import ResourceSpec, find_resource_leaks
from repro.lint.core import Finding, ModuleInfo, Rule
from repro.lint.rules_sim import _WALL_CLOCK

SPAN_SPEC = ResourceSpec(
    acquire_methods=frozenset({"open_span"}),
    release_methods=frozenset({"close"}),
    noun="span",
    leak_code="OBS002",
    discard_code="OBS002",
)

_TRACER_CLASSES = {
    "repro.obs.trace.Tracer",
    "repro.obs.trace.NullTracer",
    "repro.obs.Tracer",
    "repro.obs.NullTracer",
}


class ObsDirectTracerRule(Rule):
    """OBS001: tracers are installed through the runtime slot, not built
    ad hoc."""

    code = "OBS001"
    summary = "direct tracer construction bypassing the runtime slot"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith("repro.") or mod.package in (
            "obs", "lint",
        ):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = mod.resolve(node.func)
            if origin in _TRACER_CLASSES:
                yield mod.finding(
                    node, self.code,
                    f"direct {origin.rsplit('.', 1)[-1]}() construction "
                    "bypasses the process-wide slot; use "
                    "repro.obs.runtime.install() or tracing()",
                )


class ObsSpanCloseRule(Rule):
    """OBS002: spans opened with ``open_span`` close on every path."""

    code = "OBS002"
    summary = "open span not closed on all paths"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith("repro.") or mod.package == "lint":
            return
        for kind, node in find_resource_leaks(mod.tree, SPAN_SPEC):
            if kind == "leak":
                yield mod.finding(
                    node, self.code,
                    "span opened here may not be closed on all paths; "
                    "close it in finally or use `with tracer.open_span(...)`",
                )
            else:
                yield mod.finding(
                    node, self.code,
                    "open_span result discarded: the span can never be "
                    "closed (use record() for one-shot spans)",
                )


class ObsSlotAssignRule(Rule):
    """OBS003: only the runtime module writes the TRACER slot."""

    code = "OBS003"
    summary = "TRACER slot assigned outside repro.obs.runtime"

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if mod.module in ("repro.obs.runtime",) or mod.package == "lint":
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr == "TRACER"
                ):
                    continue
                origin = mod.resolve(target.value)
                if origin in (
                    "repro.obs.runtime",
                    "repro.obs.runtime.TRACER",
                ) or (origin or "").endswith(".runtime"):
                    yield mod.finding(
                        node, self.code,
                        "assigning the TRACER slot directly skips "
                        "install()/tracing() bookkeeping; never poke "
                        "runtime.TRACER from outside repro.obs.runtime",
                    )


class ObsSamplerDeterminismRule(Rule):
    """OBS004: sampling decisions are seeded hashes, never live draws.

    The whole point of deterministic trace sampling is that the keep /
    drop decision for a trace id is identical in every process: sweep
    shards sample coherently, a resumed run keeps the same traces as a
    fresh one, and the fast-forward path reaches the same decision the
    event-driven path would.  Any RNG draw or wall-clock read inside a
    sampling path silently breaks all three, so this rule mirrors
    SIM001/SIM002 for sampler code — which lives in ``repro.obs``,
    outside the SIM rules' scope.

    Scope: function bodies whose name marks them as a sampling decision
    path (``keeps``, or any name containing ``sample``) in any
    ``repro.*`` module.
    """

    code = "OBS004"
    summary = "nondeterministic sampling decision (RNG or wall clock)"

    def _is_sampler(self, name: str) -> bool:
        return name == "keeps" or "sample" in name

    def check(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not mod.module.startswith("repro.") or mod.package == "lint":
            return
        for fn in ast.walk(mod.tree):
            if not isinstance(
                fn, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) or not self._is_sampler(fn.name):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                origin = mod.resolve(node.func)
                if origin is None:
                    continue
                if origin in _WALL_CLOCK:
                    yield mod.finding(
                        node, self.code,
                        f"{origin}() in sampling path {fn.name}(): the "
                        "keep/drop decision must be a pure seeded hash "
                        "of the trace id, not a clock read",
                    )
                elif origin.split(".")[0] == "random":
                    yield mod.finding(
                        node, self.code,
                        f"{origin}() in sampling path {fn.name}(): an "
                        "RNG draw makes the decision depend on draw "
                        "order — hash (trace ^ seed) instead",
                    )
                elif origin.startswith("numpy.random.") and not (
                    origin == "numpy.random.default_rng"
                    and (node.args or node.keywords)
                ):
                    yield mod.finding(
                        node, self.code,
                        f"{origin}() in sampling path {fn.name}(): "
                        "sampling must not consume RNG state; hash "
                        "(trace ^ seed) instead",
                    )


RULES = (
    ObsDirectTracerRule(),
    ObsSpanCloseRule(),
    ObsSlotAssignRule(),
    ObsSamplerDeterminismRule(),
)

"""LINT rules: the analyzer policing its own escape hatches.

========  ==============================================================
LINT001   a ``# lint: ignore[...]`` suppression that no longer
          suppresses any finding — the violation it justified was fixed
          (or never matched), so the marker is a stale license to
          regress; delete it
========  ==============================================================

This rule must be registered *last*: :func:`repro.lint.core.run_rules`
records which suppression lines actually matched a finding
(``ModuleInfo.suppression_hits``) as the earlier rules' findings stream
through, and LINT001 reports the complement.  A LINT001 finding can
itself only be suppressed by an *explicit* ``# lint: ignore[LINT001]``
— a blanket suppression cannot launder its own staleness.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.lint.core import Finding, ModuleInfo, ProjectRule


class UnusedSuppressionRule(ProjectRule):
    """LINT001: every suppression must still be earning its keep."""

    code = "LINT001"
    summary = "stale # lint: ignore suppression (matches no finding)"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        for mod in mods:
            for line in sorted(mod.suppressions):
                if line in mod.suppression_hits:
                    continue
                codes, col = mod.suppressions[line]
                what = (
                    "blanket suppression"
                    if codes is None
                    else f"suppression of {', '.join(sorted(codes))}"
                )
                yield Finding(
                    self.code, mod.path, line, col,
                    f"{what} no longer matches any finding; delete the "
                    "stale marker (or fix the code it was justifying)",
                )


RULES = (UnusedSuppressionRule(),)

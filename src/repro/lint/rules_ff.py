"""FF rules: the fast-forward legality contract, statically.

PR 5–7 replaced the event-driven service loops with closed-form
("fast-forward") pricing: ``Disk`` completions come from one recurring
marker, and ``ExecutionEngine.try_fast_submit`` /
``Node.try_fast_forward`` price conflict-free requests at submit time
with float arithmetic that is term-for-term identical to the slow path.
That equivalence rests on a contract the type system cannot see:

* the **conflict predicates** read a fixed set of state
  (pipeline/NIC/disk parked flags, ``phase_inflight``, mirror
  ``dirty_groups``, the ``_ff_plans`` memo, link ``_free_at`` /
  ``outstanding``), and every *mutation* of that state must happen in
  code that re-checks or invalidates the guard — a write from anywhere
  else silently de-synchronizes the fast path from the event-driven
  truth;
* the **pricing functions** (``try_fast_forward`` and the ``ff_``/
  ``_ff_`` family) must mirror the slow path's float arithmetic
  exactly: an int truncation or an ordering-dependent reduction
  produces values the event-driven path would never compute;
* ``ff_preload`` (arming the completion marker) is only legal downstream
  of an ``ff_ready`` guard check.

========  ==============================================================
FF001     mutation of fast-forward guard state outside the functions
          that own the guard (or helpers reachable only from them)
FF002     int truncation (``//``, ``int()``, ``math.floor``/``ceil``/
          ``trunc``, ``round``, ``divmod``) in a closed-form pricing
          function — pricing is float-only, mirroring the slow path;
          covers the ``ff_``/``_ff_`` families, the ``try_fast_*``
          submit twins, and the cache stage's ``_fast_hit`` /
          ``_fast_fill`` pricing helpers
FF003     ordering-dependent reduction (``sum``/``min``/``max`` over a
          set, iteration over a set) in a pricing function
FF004     ``ff_preload`` called from code that is not downstream of an
          ``ff_ready`` guard check
========  ==============================================================

The ownership table below names allowed mutation sites as
``Class.method`` keys (module-agnostic, so the fixture suite can model
the contract with small stand-in classes).  A helper whose *every*
caller is an allowed site is legal too (``CallGraph.guarded_closure``) —
refactoring a guard owner into private helpers does not trip the rule.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Sequence, Set

from repro.lint.callgraph import CallGraph, FunctionInfo, get_callgraph
from repro.lint.core import Finding, ModuleInfo, ProjectRule

#: Guard state read by the fast-forward conflict predicates, and the
#: ``Class.method`` sites allowed to mutate each attribute (the guard
#: owners: they re-check or invalidate the predicate around the write).
GUARDED: Dict[str, FrozenSet[str]] = {
    # Disk parked-server machinery (PR 5).
    "_ff_parked": frozenset(
        {"Disk.__init__", "Disk.submit", "Disk.ff_preload", "Disk._ff_next"}
    ),
    "_ff_wake_req": frozenset(
        {"Disk.__init__", "Disk.submit", "Disk._ff_step", "Disk._ff_next"}
    ),
    "_ff_items": frozenset({"Disk.__init__", "Disk.submit", "Disk._ff_next"}),
    "_ff_req": frozenset(
        {"Disk.__init__", "Disk.ff_preload", "Disk._ff_step", "Disk._ff_next"}
    ),
    "_ff_info": frozenset(
        {"Disk.__init__", "Disk.ff_preload", "Disk._ff_next"}
    ),
    "_pending": frozenset(
        {
            "Disk.__init__",
            "Disk.submit",
            "Disk._serve",
            "Disk.ff_preload",
            "Disk._ff_step",
            "Disk._ff_next",
        }
    ),
    # Engine-level predicates (PR 6; the memo moved into its bounded
    # accessor in PR 10).
    "_ff_plans": frozenset(
        {
            "ExecutionEngine.__init__",
            "ExecutionEngine.try_fast_submit",
            "ExecutionEngine._ff_resolved",
        }
    ),
    # Cache-stage predicates (PR 10): the fill fast path reads the
    # dirty/destaging/pending-fill state at submit and defers its disk
    # preload, so these writes must stay inside the stage machinery
    # that re-establishes the predicate.
    "_active": frozenset(
        {
            "CacheStage.__init__",
            "CacheStage.run_request",
            "CacheStage._fast_hit",
            "_FFCacheHit._fire",
            "_FFFillRun._fire",
        }
    ),
    "_destaging": frozenset(
        {
            "CacheStage.__init__",
            "CacheStage._spawn_sweep",
            "CacheStage._destage_sweep",
            "CacheStage.drain",
        }
    ),
    "_ff_fill_pending": frozenset(
        {
            "CacheStage.__init__",
            "CacheStage._fast_fill",
            "_FFFillRun._fire",
        }
    ),
    "phase_inflight": frozenset(
        {"ExecutionEngine.__init__", "DistributedArraySystem.submit"}
    ),
    "dirty_groups": frozenset(
        {
            "MirrorState.__init__",
            "ExecutionEngine._exec_orthogonal",
            "ExecutionEngine._flush_one",
        }
    ),
    # Link claims the closed form prices against (PR 6; the eager
    # claim arithmetic lives in the ff_claim_* helpers since PR 10).
    "_free_at": frozenset(
        {
            "BandwidthLink.__init__",
            "BandwidthLink.transfer",
            "Node.try_fast_forward",
            "Node.ff_claim_cpu",
            "Node.ff_claim_scsi",
        }
    ),
    "outstanding": frozenset(
        {
            "BandwidthLink.__init__",
            "BandwidthLink.transfer",
            "BandwidthLink._completed",
        }
    ),
    "congestion_threshold": frozenset({"BandwidthLink.__init__"}),
}

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

_TRUNCATION_CALLS = {
    "int": "int()",
    "round": "round()",
    "divmod": "divmod()",
    "math.floor": "math.floor()",
    "math.ceil": "math.ceil()",
    "math.trunc": "math.trunc()",
}

_REDUCERS = frozenset({"sum", "min", "max"})


def _in_scope(mod: ModuleInfo) -> bool:
    return mod.module.startswith("repro.") and mod.package not in (
        "lint",
        "bench",
        "analysis",
    )


#: Closed-form pricing functions named outside the ``ff_``/``_ff_``
#: convention: the submit-time twins and the cache stage's hit/fill
#: pricing helpers (PR 10).
_PRICING_NAMES = frozenset(
    {"try_fast_forward", "try_fast_submit", "_fast_hit", "_fast_fill"}
)


def _is_pricing(name: str) -> bool:
    return name in _PRICING_NAMES or name.startswith(("ff_", "_ff_"))


def _legal_sets(graph: CallGraph) -> Dict[str, Set[str]]:
    """attr -> set of function qualnames allowed to mutate it (owners by
    site key, plus helpers reachable only from owners)."""
    legal: Dict[str, Set[str]] = {}
    for attr, owners in GUARDED.items():
        seeds = {
            qual
            for qual, fn in graph.functions.items()
            if fn.site_key in owners
        }
        legal[attr] = graph.guarded_closure(seeds)
    return legal


class FFGuardedMutationRule(ProjectRule):
    """FF001: guard state only changes where the guard is owned."""

    code = "FF001"
    summary = "fast-forward guard state mutated outside its owning sites"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        scope = [m for m in mods if _in_scope(m)]
        if not scope:
            return
        graph = get_callgraph(mods)
        legal = _legal_sets(graph)
        node_to_fn = {id(fn.node): fn for fn in graph.functions.values()}
        for mod in scope:
            yield from self._visit(mod, mod.tree, None, legal, node_to_fn)

    def _visit(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        owner: "FunctionInfo | None",
        legal: Dict[str, Set[str]],
        node_to_fn: Dict[int, FunctionInfo],
    ) -> Iterator[Finding]:
        """Attribute every mutation to the innermost *graphed* enclosing
        function (nested defs inherit their method's ownership); mutations
        at module level are never legal."""
        for child in ast.iter_child_nodes(node):
            child_owner = node_to_fn.get(id(child), owner)
            for attr, site in _direct_mutations_of(child):
                if child_owner is None:
                    yield self._finding(mod, site, attr, "module level")
                elif not (
                    child_owner.site_key in GUARDED[attr]
                    or child_owner.qualname in legal[attr]
                ):
                    yield self._finding(mod, site, attr, child_owner.site_key)
            yield from self._visit(mod, child, child_owner, legal, node_to_fn)

    def _finding(
        self, mod: ModuleInfo, node: ast.AST, attr: str, site: str
    ) -> Finding:
        owners = ", ".join(sorted(GUARDED[attr]))
        return mod.finding(
            node, self.code,
            f"{attr!r} is read by the fast-forward conflict predicates; "
            f"mutating it in {site} de-synchronizes the closed-form path "
            f"from the event-driven truth (allowed sites: {owners}, or "
            "helpers called only from them)",
        )


def _direct_mutations_of(node: ast.AST) -> Iterator[tuple]:
    """Guarded mutations at this exact node (no recursion)."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
        if isinstance(node, ast.Assign):
            targets = []
            for t in node.targets:
                targets.extend(
                    t.elts if isinstance(t, (ast.Tuple, ast.List)) else [t]
                )
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        else:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Attribute) and target.attr in GUARDED:
                yield target.attr, node
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATORS
        and isinstance(node.func.value, ast.Attribute)
        and node.func.value.attr in GUARDED
    ):
        yield node.func.value.attr, node


class FFPricingPurityRule(ProjectRule):
    """FF002/FF003: closed-form pricing is float-only and order-free.

    The legality proofs in DESIGN 6.13/6.14 argue the fast path computes
    *the same floats* as the event-driven path.  Truncating to int or
    folding over an unordered container can only produce values the slow
    path never computes; both are flagged inside any pricing function.
    Integer arithmetic that feeds a *subscript* (geometry indexing) is
    exempt — indexing is integral by nature and never a priced quantity.
    """

    code = "FF002"
    summary = "int truncation or order-dependent reduction in pricing code"

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        for mod in mods:
            if not _in_scope(mod):
                continue
            for fn in ast.walk(mod.tree):
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not _is_pricing(fn.name):
                    continue
                yield from self._check_pricing(mod, fn)

    def _check_pricing(
        self, mod: ModuleInfo, fn: ast.AST
    ) -> Iterator[Finding]:
        findings: list = []

        def visit(node: ast.AST, in_slice: bool) -> None:
            if isinstance(node, ast.Subscript):
                visit(node.value, in_slice)
                visit(node.slice, True)
                return
            if not in_slice:
                if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                    node.op, ast.FloorDiv
                ):
                    findings.append(
                        mod.finding(
                            node, "FF002",
                            f"floor division in pricing function "
                            f"{fn.name}(): closed-form pricing must use "
                            "float arithmetic term-for-term identical to "
                            "the event-driven path",
                        )
                    )
                elif isinstance(node, ast.Call):
                    origin = mod.resolve(node.func)
                    label = _TRUNCATION_CALLS.get(origin or "")
                    if label is not None:
                        findings.append(
                            mod.finding(
                                node, "FF002",
                                f"{label} in pricing function {fn.name}(): "
                                "truncation produces values the slow path "
                                "never computes",
                            )
                        )
                    else:
                        findings.extend(self._reduction(mod, fn, node))
                elif isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
                    node.iter, mod
                ):
                    findings.append(
                        mod.finding(
                            node, "FF003",
                            f"iteration over a set in pricing function "
                            f"{fn.name}(): set order is insertion-history "
                            "dependent — price over an ordered sequence",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, in_slice)

        for stmt in fn.body:
            visit(stmt, False)
        yield from findings

    def _reduction(
        self, mod: ModuleInfo, fn: ast.AST, call: ast.Call
    ) -> Iterator[Finding]:
        origin = mod.resolve(call.func)
        if origin not in _REDUCERS or not call.args:
            return
        arg = call.args[0]
        if _is_set_expr(arg, mod) or (
            isinstance(arg, ast.GeneratorExp)
            and arg.generators
            and _is_set_expr(arg.generators[0].iter, mod)
        ):
            yield mod.finding(
                call, "FF003",
                f"{origin}() over a set in pricing function "
                f"{getattr(fn, 'name', '?')}(): float reduction order "
                "follows set iteration order, which the event-driven "
                "path does not share",
            )


def _is_set_expr(node: ast.AST, mod: ModuleInfo) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        return mod.resolve(node.func) in ("set", "frozenset")
    return False


class FFPreloadGuardRule(ProjectRule):
    """FF004: arming the completion marker requires the guard check.

    ``ff_ready_chain`` wraps the ``ff_ready`` check behind the rest of
    the hop-chain predicate, so a reference to either counts as the
    guard."""

    code = "FF004"
    summary = "ff_preload reachable without an ff_ready guard check"

    _GUARD_NAMES = ("ff_ready", "ff_ready_chain")

    def check_project(self, mods: Sequence[ModuleInfo]) -> Iterator[Finding]:
        scope = [m for m in mods if _in_scope(m)]
        if not scope:
            return
        graph = get_callgraph(mods)
        seeds = {
            qual
            for qual, fn in graph.functions.items()
            if any(
                isinstance(n, ast.Attribute) and n.attr in self._GUARD_NAMES
                for n in ast.walk(fn.node)
            )
        }
        legal = graph.guarded_closure(seeds)
        for mod in scope:
            for fn in graph.functions_in(mod):
                if fn.node.name == "ff_preload":
                    continue  # the implementation itself
                for node in ast.walk(fn.node):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "ff_preload"
                        and fn.qualname not in legal
                    ):
                        yield mod.finding(
                            node, self.code,
                            f"{fn.node.name}() arms the fast-forward "
                            "completion marker without checking ff_ready "
                            "(directly or in any caller); preloading an "
                            "unready disk double-schedules its server",
                        )


RULES = (
    FFGuardedMutationRule(),
    FFPricingPurityRule(),
    FFPreloadGuardRule(),
)

"""Intraprocedural release-on-all-paths ("lockset") analysis.

Both the LOCK and OBS families need the same question answered: *a
resource was acquired here — is it provably released on every path out
of the function, including the exception paths?*  This module answers it
with a small abstract interpreter over the statement AST:

* the abstract state is the set of *held tokens* (local names bound by a
  recognized acquire call);
* every statement that can raise (it contains a call, a ``yield``, or an
  ``await``) contributes an *exception edge* carrying the state before
  the statement;
* ``try`` routes exception edges into handlers and through ``finally``;
  loops route ``break``/``continue``; ``return`` and falling off the end
  are normal exits;
* a token *escapes* (ownership transfer — tracking stops) when its name
  is returned, stored, or passed to any call other than a recognized
  release; ``yield token`` alone keeps it held (that is how a simulation
  process *waits* for the grant, not how it gives the token away);
* branch conditions of the form ``tok``/``tok is not None`` prune the
  infeasible arm: a held token is never ``None``.

Any exit reached with a non-empty held set is a leak, reported at the
acquire site.  The analysis is deliberately conservative in the safe
direction for this codebase's idioms — ``try/finally``, ``with``, and
immediate ownership transfer into a handle structure all verify clean.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

State = frozenset  # of held token names


@dataclass(frozen=True)
class ResourceSpec:
    """What counts as acquire/release for one resource kind."""

    #: method names whose call result is a held token
    acquire_methods: frozenset
    #: method names that release a token passed as an argument
    #: (``obj.release(tok)``) or called on the token (``tok.close()``)
    release_methods: frozenset
    #: human noun used in messages ("lock", "span")
    noun: str
    #: finding code for a leak
    leak_code: str
    #: finding code for a discarded acquire result (no token to release)
    discard_code: str


@dataclass
class _BlockOut:
    """Exits of one statement block, grouped by kind."""

    fall: set = field(default_factory=set)
    ret: list = field(default_factory=list)  # (node, state)
    brk: list = field(default_factory=list)
    cont: list = field(default_factory=list)
    raise_: list = field(default_factory=list)

    def absorb_exits(self, other: "_BlockOut") -> None:
        self.ret.extend(other.ret)
        self.brk.extend(other.brk)
        self.cont.extend(other.cont)
        self.raise_.extend(other.raise_)


class FunctionAnalysis:
    """Run the leak analysis over one function body."""

    def __init__(self, func: ast.AST, spec: ResourceSpec):
        self.func = func
        self.spec = spec
        #: token name -> acquire call node (for reporting)
        self.acquire_sites: dict[str, ast.AST] = {}
        self.leaks: dict[int, ast.AST] = {}
        self.discards: list[ast.AST] = []

    # -- entry -------------------------------------------------------------
    def run(self) -> None:
        out = self._exec_block(self.func.body, {State()})
        for _node, state in out.ret + out.raise_:
            self._note_leak(state)
        for state in out.fall:
            self._note_leak(state)

    def _note_leak(self, state: State) -> None:
        for token in state:
            site = self.acquire_sites.get(token)
            if site is not None:
                self.leaks[id(site)] = site

    # -- matchers ----------------------------------------------------------
    def _acquire_call(self, expr: ast.AST) -> ast.Call | None:
        """The acquire call inside ``expr`` (unwrapping yield-from/await)."""
        if isinstance(expr, (ast.YieldFrom, ast.Await)):
            expr = expr.value
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in self.spec.acquire_methods
        ):
            return expr
        return None

    def _released_tokens(self, stmt: ast.stmt, state: State) -> set:
        """Tokens released by ``stmt`` (``obj.release(tok)`` / ``tok.close()``)."""
        released = set()
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self.spec.release_methods
            ):
                continue
            # tok.close() style: the receiver is the token itself.
            if isinstance(func.value, ast.Name) and func.value.id in state:
                released.add(func.value.id)
            # obj.release(tok) style: the token rides as an argument.
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in state:
                    released.add(arg.id)
        return released

    def _escaping_tokens(self, stmt: ast.stmt, state: State) -> set:
        """Tokens whose name is used in a way that transfers ownership."""
        if not state:
            return set()
        released = self._released_tokens(stmt, state)
        kept = set()
        # ``yield tok`` / ``x = yield tok``: waiting on the token, not
        # giving it away.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Yield) and isinstance(node.value, ast.Name):
                kept.add(node.value.id)
        escapes = set()
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in state
                and node.id not in released
                and node.id not in kept
            ):
                escapes.add(node.id)
        return escapes

    @staticmethod
    def _risky(stmt: ast.stmt) -> bool:
        """Can executing ``stmt`` raise (for our purposes)?"""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
                return True
        return False

    # -- interpreter -------------------------------------------------------
    def _exec_block(self, stmts: list, in_states: set) -> _BlockOut:
        out = _BlockOut(fall=set(in_states))
        for stmt in stmts:
            if not out.fall:
                break
            out = self._exec_stmt(stmt, out)
        return out

    def _exec_stmt(self, stmt: ast.stmt, incoming: _BlockOut) -> _BlockOut:
        states = incoming.fall
        nxt = _BlockOut()
        nxt.absorb_exits(incoming)

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested definition does not execute; capturing a token in
            # one is ownership transfer (the closure owns it now).
            for state in states:
                caught = {
                    n.id
                    for n in ast.walk(stmt)
                    if isinstance(n, ast.Name) and n.id in state
                }
                nxt.fall.add(State(state - caught))
            return nxt

        if isinstance(stmt, ast.Return):
            for state in states:
                dropped = state
                if isinstance(stmt.value, ast.Name):
                    dropped = State(state - {stmt.value.id})
                elif stmt.value is not None:
                    dropped = State(
                        state - self._escaping_tokens(stmt, state)
                    )
                nxt.ret.append((stmt, dropped))
            return nxt

        if isinstance(stmt, ast.Raise):
            for state in states:
                nxt.raise_.append((stmt, state))
            return nxt

        if isinstance(stmt, ast.Break):
            for state in states:
                nxt.brk.append((stmt, state))
            return nxt

        if isinstance(stmt, ast.Continue):
            for state in states:
                nxt.cont.append((stmt, state))
            return nxt

        if isinstance(stmt, ast.If):
            then_in, else_in = self._split_condition(stmt.test, states)
            if self._risky(ast.Expr(stmt.test)):
                for state in states:
                    nxt.raise_.append((stmt, state))
            then_out = self._exec_block(stmt.body, then_in) if then_in else _BlockOut()
            else_out = (
                self._exec_block(stmt.orelse, else_in) if else_in else _BlockOut()
            )
            nxt.fall |= then_out.fall | else_out.fall
            if not stmt.orelse:
                nxt.fall |= else_in
            nxt.absorb_exits(then_out)
            nxt.absorb_exits(else_out)
            return nxt

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._exec_loop(stmt, states, nxt)

        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, states, nxt)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, states, nxt)

        # -- simple statement ---------------------------------------------
        acquire = None
        token = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            acquire = self._acquire_call(stmt.value)
            token = stmt.targets[0].id if acquire is not None else None
        elif isinstance(stmt, ast.Expr):
            inner = stmt.value
            if (
                isinstance(inner, (ast.Yield, ast.YieldFrom, ast.Await))
                and inner.value is not None
            ):
                inner = inner.value
            if self._acquire_call(inner) is not None:
                self.discards.append(stmt)

        if self._risky(stmt):
            # Exception edge: an acquire that raises has not acquired,
            # and a statement that releases or hands a token off is
            # credited with the transfer even if it then raises; any
            # *other* token still held rides the edge.
            for state in states:
                pre = State(
                    state
                    - self._released_tokens(stmt, state)
                    - self._escaping_tokens(stmt, state)
                )
                nxt.raise_.append((stmt, pre))

        for state in states:
            new = set(state)
            new -= self._released_tokens(stmt, state)
            new -= self._escaping_tokens(stmt, state)
            # Rebinding a held token loses the only handle to it.
            for target in getattr(stmt, "targets", []):
                if isinstance(target, ast.Name) and target.id in new and (
                    token != target.id
                ):
                    self.leaks[id(self.acquire_sites[target.id])] = (
                        self.acquire_sites[target.id]
                    )
                    new.discard(target.id)
            if acquire is not None and token is not None:
                self.acquire_sites[token] = acquire
                new.add(token)
            nxt.fall.add(State(new))
        return nxt

    # -- compound statements ----------------------------------------------
    def _split_condition(self, test: ast.AST, states: set) -> tuple:
        """Prune infeasible states: a held token is never falsy/None."""

        def token_of(expr: ast.AST) -> str | None:
            return expr.id if isinstance(expr, ast.Name) else None

        truthy = falsy = None  # token proven held in then/else arm
        if isinstance(test, ast.Name):
            truthy = test.id
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            falsy = token_of(test.operand)
        elif isinstance(test, ast.Compare) and len(test.ops) == 1 and isinstance(
            test.comparators[0], ast.Constant
        ) and test.comparators[0].value is None:
            if isinstance(test.ops[0], ast.IsNot):
                truthy = token_of(test.left)
            elif isinstance(test.ops[0], ast.Is):
                falsy = token_of(test.left)

        then_in, else_in = set(states), set(states)
        if truthy is not None:
            # else-arm means the token is None: held states are infeasible.
            else_in = {s for s in states if truthy not in s}
        if falsy is not None:
            then_in = {s for s in states if falsy not in s}
        return then_in, else_in

    def _exec_loop(self, stmt, states: set, nxt: _BlockOut) -> _BlockOut:
        if self._risky(ast.Expr(getattr(stmt, "test", None) or getattr(stmt, "iter"))):
            for state in states:
                nxt.raise_.append((stmt, state))
        seen = set(states)
        body_out = _BlockOut()
        for _ in range(len(getattr(self.func, "body", [])) + 8):
            body_out = self._exec_block(stmt.body, seen)
            grown = seen | body_out.fall | {s for _, s in body_out.cont}
            if grown == seen:
                break
            seen = grown
        nxt.ret.extend(body_out.ret)
        nxt.raise_.extend(body_out.raise_)
        # Normal loop exit: condition false on any iteration boundary,
        # or an explicit break.  (A ``while True`` only exits via break.)
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            nxt.fall |= seen
        nxt.fall |= {s for _, s in body_out.brk}
        if stmt.orelse:
            else_out = self._exec_block(stmt.orelse, set(nxt.fall))
            nxt.fall = else_out.fall
            nxt.absorb_exits(else_out)
        return nxt

    def _exec_with(self, stmt, states: set, nxt: _BlockOut) -> _BlockOut:
        entry_states = set()
        for state in states:
            new = set(state)
            for item in stmt.items:
                # ``with obj.acquire():`` — the context manager owns the
                # resource; nothing to track.
                # ``with tok:`` — the token releases itself on exit.
                ctx = item.context_expr
                if isinstance(ctx, ast.Name) and ctx.id in new:
                    new.discard(ctx.id)
            entry_states.add(State(new))
        header_risky = any(
            self._risky(ast.Expr(item.context_expr)) for item in stmt.items
        )
        if header_risky:
            for state in states:
                nxt.raise_.append((stmt, state))
        body_out = self._exec_block(stmt.body, entry_states)
        nxt.fall |= body_out.fall
        nxt.absorb_exits(body_out)
        return nxt

    def _exec_try(self, stmt: ast.Try, states: set, nxt: _BlockOut) -> _BlockOut:
        body_out = self._exec_block(stmt.body, states)

        def _broad_type(t: ast.AST | None) -> bool:
            if t is None:
                return True
            if isinstance(t, ast.Tuple):
                return any(_broad_type(e) for e in t.elts)
            name = t.attr if isinstance(t, ast.Attribute) else getattr(t, "id", "")
            return name in ("Exception", "BaseException")

        broad = any(_broad_type(h.type) for h in stmt.handlers)
        handler_entry = {s for _, s in body_out.raise_}
        merged = _BlockOut()
        merged.ret.extend(body_out.ret)
        merged.brk.extend(body_out.brk)
        merged.cont.extend(body_out.cont)
        if stmt.handlers:
            for handler in stmt.handlers:
                h_out = self._exec_block(handler.body, set(handler_entry))
                merged.fall |= h_out.fall
                merged.absorb_exits(h_out)
            if not broad:
                # A narrow handler may not catch: the raise can still
                # propagate past this try.
                merged.raise_.extend(body_out.raise_)
        else:
            merged.raise_.extend(body_out.raise_)

        if stmt.orelse:
            else_out = self._exec_block(stmt.orelse, body_out.fall)
            merged.fall |= else_out.fall
            merged.absorb_exits(else_out)
        else:
            merged.fall |= body_out.fall

        if not stmt.finalbody:
            nxt.fall |= merged.fall
            nxt.absorb_exits(merged)
            return nxt

        # Route every exit class through the finally block.
        def through(states_in: set) -> set:
            if not states_in:
                return set()
            f_out = self._exec_block(stmt.finalbody, states_in)
            nxt.ret.extend(f_out.ret)
            nxt.brk.extend(f_out.brk)
            nxt.cont.extend(f_out.cont)
            nxt.raise_.extend(f_out.raise_)
            return f_out.fall

        nxt.fall |= through(merged.fall)
        for node, state in merged.ret:
            for s in through({state}):
                nxt.ret.append((node, s))
        for node, state in merged.brk:
            for s in through({state}):
                nxt.brk.append((node, s))
        for node, state in merged.cont:
            for s in through({state}):
                nxt.cont.append((node, s))
        for node, state in merged.raise_:
            for s in through({state}):
                nxt.raise_.append((node, s))
        return nxt


def find_resource_leaks(
    tree: ast.AST, spec: ResourceSpec
) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(kind, node)`` pairs: ``leak`` at acquire sites that may
    not be released on all paths, ``discard`` at acquires whose handle is
    dropped on the floor."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mentions = any(
                isinstance(n, ast.Attribute)
                and n.attr in spec.acquire_methods
                for n in ast.walk(node)
            )
            if not mentions:
                continue
            analysis = FunctionAnalysis(node, spec)
            analysis.run()
            for site in analysis.leaks.values():
                yield "leak", site
            for site in analysis.discards:
                yield "discard", site

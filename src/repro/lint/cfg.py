"""Intraprocedural release-on-all-paths ("lockset") analysis.

Both the LOCK and OBS families need the same question answered: *a
resource was acquired here — is it provably released on every path out
of the function, including the exception paths?*  This module answers it
with a small abstract interpreter over the statement AST:

* the abstract state is the set of *held tokens* (local names bound by a
  recognized acquire call);
* every statement that can raise (it contains a call, a ``yield``, or an
  ``await``) contributes an *exception edge* carrying the state before
  the statement;
* ``try`` routes exception edges into handlers and through ``finally``;
  loops route ``break``/``continue``; ``return`` and falling off the end
  are normal exits;
* a token *escapes* (ownership transfer — tracking stops) when its name
  is returned, stored, or passed to any call other than a recognized
  release; ``yield token`` alone keeps it held (that is how a simulation
  process *waits* for the grant, not how it gives the token away);
* branch conditions of the form ``tok``/``tok is not None`` prune the
  infeasible arm: a held token is never ``None``.

Any exit reached with a non-empty held set is a leak, reported at the
acquire site.  The analysis is deliberately conservative in the safe
direction for this codebase's idioms — ``try/finally``, ``with``, and
immediate ownership transfer into a handle structure all verify clean.

**Interprocedural extension.**  The same interpreter also runs in two
cross-function modes (driven by :mod:`repro.lint.summaries`):

* *summary mode* — the function's parameters are seeded as held tokens
  (``initial=``) and the exit states classify each parameter's fate:
  ``releases`` (released on every path out), ``keeps`` (still held on
  every exit — the caller must release), ``escapes`` (stored/forwarded
  — ownership left the function), or ``mixed`` (released on some paths
  only — the caller cannot know).  A function that acquires and hands
  the token back on every return is flagged ``returns_acquired``.
* *caller mode* — a ``resolver(call) -> LockSummary | None`` maps call
  sites onto callee summaries: passing a held token to a ``releases``
  callee credits the release, a ``keeps`` callee leaves it held (so a
  later leak is still caught), a ``mixed`` callee is itself reported
  (the LOCK003 class), and a call that ``returns_acquired`` counts as
  an acquire.  Unresolved calls keep the old ownership-transfer
  behavior, so intraprocedural results are unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

State = frozenset  # of held token names


@dataclass(frozen=True)
class ResourceSpec:
    """What counts as acquire/release for one resource kind."""

    #: method names whose call result is a held token
    acquire_methods: frozenset
    #: method names that release a token passed as an argument
    #: (``obj.release(tok)``) or called on the token (``tok.close()``)
    release_methods: frozenset
    #: human noun used in messages ("lock", "span")
    noun: str
    #: finding code for a leak
    leak_code: str
    #: finding code for a discarded acquire result (no token to release)
    discard_code: str


#: Parameter fates a summary can assign (see the module docstring).
FATE_RELEASES = "releases"
FATE_KEEPS = "keeps"
FATE_ESCAPES = "escapes"
FATE_MIXED = "mixed"


@dataclass
class LockSummary:
    """Cross-function behavior of one callee, from the caller's side."""

    qualname: str
    #: positional parameter names (``self``/``cls`` already stripped —
    #: or re-prefixed with the ``<self>`` placeholder by the resolver
    #: for explicit ``ClassName.method(obj, ...)`` call syntax).
    param_order: tuple
    #: parameter name -> one of the FATE_* strings.
    fates: dict
    #: the call's return value is a freshly acquired token on every path.
    returns_acquired: bool


#: Resolves a call site to the callee's summary, or None when the callee
#: is unknown / unresolvable / part of a recursion cycle.
Resolver = Callable[[ast.Call], Optional[LockSummary]]


@dataclass
class _BlockOut:
    """Exits of one statement block, grouped by kind."""

    fall: set = field(default_factory=set)
    ret: list = field(default_factory=list)  # (node, state)
    brk: list = field(default_factory=list)
    cont: list = field(default_factory=list)
    raise_: list = field(default_factory=list)

    def absorb_exits(self, other: "_BlockOut") -> None:
        self.ret.extend(other.ret)
        self.brk.extend(other.brk)
        self.cont.extend(other.cont)
        self.raise_.extend(other.raise_)


class FunctionAnalysis:
    """Run the leak analysis over one function body."""

    def __init__(
        self,
        func: ast.AST,
        spec: ResourceSpec,
        resolver: Resolver | None = None,
        initial: tuple = (),
    ):
        self.func = func
        self.spec = spec
        #: call-site -> callee LockSummary (interprocedural mode only).
        self.resolver = resolver
        #: token names held on entry (summary mode seeds the parameters).
        self.initial = tuple(initial)
        #: token name -> acquire call node (for reporting)
        self.acquire_sites: dict[str, ast.AST] = {}
        self.leaks: dict[int, ast.AST] = {}
        self.discards: list[ast.AST] = []
        #: (id(call), token) -> (call node, token, callee qualname) for
        #: held tokens passed to a callee with a ``mixed`` fate.
        self.mixed_calls: dict[tuple, tuple] = {}
        #: fate bookkeeping for summary mode.
        self.released_ever: set = set()
        self.escaped_ever: set = set()
        #: one bool per (return stmt, state): the value handed back is a
        #: held acquired token (or a direct acquire call).
        self.return_token_flags: list[bool] = []
        self._returns_direct_acquire = False
        self.out: _BlockOut | None = None

    # -- entry -------------------------------------------------------------
    def run(self) -> None:
        self.out = self._exec_block(self.func.body, {State(self.initial)})
        out = self.out
        for _node, state in out.ret + out.raise_:
            self._note_leak(state)
        for state in out.fall:
            self._note_leak(state)

    # -- summary-mode classification ---------------------------------------
    def param_fates(self) -> dict:
        """Fate of every ``initial`` token, from the final exit states.
        Call after :meth:`run`."""
        assert self.out is not None
        out = self.out
        exits = (
            [s for _n, s in out.ret]
            + [s for _n, s in out.raise_]
            + list(out.fall)
        )
        fates: dict = {}
        for name in self.initial:
            held_some = any(name in s for s in exits)
            held_all = bool(exits) and all(name in s for s in exits)
            if name in self.escaped_ever:
                fates[name] = FATE_ESCAPES
            elif held_all and name not in self.released_ever:
                fates[name] = FATE_KEEPS
            elif not held_some and name in self.released_ever:
                fates[name] = FATE_RELEASES
            elif not held_some:
                # Vanished without an explicit release (rebinding, ...).
                fates[name] = FATE_ESCAPES
            else:
                fates[name] = FATE_MIXED
        return fates

    def returns_acquired(self) -> bool:
        """Every path out returns a freshly acquired, still-held token."""
        assert self.out is not None
        if self.leaks or self.discards:
            return False
        if not self.acquire_sites and not self._returns_direct_acquire:
            return False
        if self.out.fall:  # falling off the end returns None
            return False
        return bool(self.return_token_flags) and all(self.return_token_flags)

    def _note_leak(self, state: State) -> None:
        for token in state:
            site = self.acquire_sites.get(token)
            if site is not None:
                self.leaks[id(site)] = site

    # -- matchers ----------------------------------------------------------
    def _acquire_call(self, expr: ast.AST) -> ast.Call | None:
        """The acquire call inside ``expr`` (unwrapping yield-from/await)."""
        if isinstance(expr, (ast.YieldFrom, ast.Await)):
            expr = expr.value
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in self.spec.acquire_methods
        ):
            return expr
        if self.resolver is not None and isinstance(expr, ast.Call):
            summary = self.resolver(expr)
            if summary is not None and summary.returns_acquired:
                return expr
        return None

    def _summary_token_fates(self, call: ast.Call, state: State) -> Iterator[tuple]:
        """``(token, fate, callee)`` for each held token passed to a call
        the resolver maps onto a summary."""
        if self.resolver is None:
            return
        summary = self.resolver(call)
        if summary is None:
            return
        for i, arg in enumerate(call.args):
            if not isinstance(arg, ast.Name) or arg.id not in state:
                continue
            if i >= len(summary.param_order):
                continue  # *args tail: no mapping, keep escape behavior
            fate = summary.fates.get(summary.param_order[i])
            if fate is not None:
                yield arg.id, fate, summary.qualname
        for kw in call.keywords:
            if kw.arg is None or not isinstance(kw.value, ast.Name):
                continue
            if kw.value.id not in state:
                continue
            fate = summary.fates.get(kw.arg)
            if fate is not None:
                yield kw.value.id, fate, summary.qualname

    def _released_tokens(self, stmt: ast.stmt, state: State) -> set:
        """Tokens released by ``stmt`` (``obj.release(tok)`` / ``tok.close()``
        / a held token passed to a callee summarized as ``releases``)."""
        released = set()
        if not state:
            return released
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.spec.release_methods
            ):
                # tok.close() style: the receiver is the token itself.
                if isinstance(func.value, ast.Name) and func.value.id in state:
                    released.add(func.value.id)
                # obj.release(tok) style: the token rides as an argument.
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in state:
                        released.add(arg.id)
            elif self.resolver is not None:
                for tok, fate, _callee in self._summary_token_fates(node, state):
                    if fate == FATE_RELEASES:
                        released.add(tok)
        self.released_ever.update(released)
        return released

    def _escaping_tokens(self, stmt: ast.stmt, state: State) -> set:
        """Tokens whose name is used in a way that transfers ownership."""
        if not state:
            return set()
        released = self._released_tokens(stmt, state)
        kept = set()
        # ``yield tok`` / ``x = yield tok``: waiting on the token, not
        # giving it away.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Yield) and isinstance(node.value, ast.Name):
                kept.add(node.value.id)
        # Node-identity-level exemptions: an argument position that a
        # callee summary proves keeps (or releases) the token does not
        # transfer ownership; any *other* use of the same name in the
        # statement still escapes.
        kept_ids: set = set()
        if self.resolver is not None:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.spec.release_methods
                ):
                    continue
                for tok, fate, callee in self._summary_token_fates(node, state):
                    if fate in (FATE_KEEPS, FATE_RELEASES):
                        for arg in list(node.args) + [
                            kw.value for kw in node.keywords
                        ]:
                            if isinstance(arg, ast.Name) and arg.id == tok:
                                kept_ids.add(id(arg))
                    elif fate == FATE_MIXED:
                        self.mixed_calls[(id(node), tok)] = (node, tok, callee)
        escapes = set()
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in state
                and node.id not in released
                and node.id not in kept
                and id(node) not in kept_ids
            ):
                escapes.add(node.id)
        self.escaped_ever.update(escapes)
        return escapes

    @staticmethod
    def _risky(stmt: ast.stmt) -> bool:
        """Can executing ``stmt`` raise (for our purposes)?"""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)):
                return True
        return False

    # -- interpreter -------------------------------------------------------
    def _exec_block(self, stmts: list, in_states: set) -> _BlockOut:
        out = _BlockOut(fall=set(in_states))
        for stmt in stmts:
            if not out.fall:
                break
            out = self._exec_stmt(stmt, out)
        return out

    def _exec_stmt(self, stmt: ast.stmt, incoming: _BlockOut) -> _BlockOut:
        states = incoming.fall
        nxt = _BlockOut()
        nxt.absorb_exits(incoming)

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested definition does not execute; capturing a token in
            # one is ownership transfer (the closure owns it now).
            for state in states:
                caught = {
                    n.id
                    for n in ast.walk(stmt)
                    if isinstance(n, ast.Name) and n.id in state
                }
                nxt.fall.add(State(state - caught))
            return nxt

        if isinstance(stmt, ast.Return):
            direct_acquire = (
                stmt.value is not None
                and self._acquire_call(stmt.value) is not None
            )
            if direct_acquire:
                self._returns_direct_acquire = True
            for state in states:
                dropped = state
                flag = direct_acquire
                if isinstance(stmt.value, ast.Name):
                    name = stmt.value.id
                    flag = name in state and name in self.acquire_sites
                    dropped = State(state - {name})
                elif stmt.value is not None and not direct_acquire:
                    dropped = State(
                        state - self._escaping_tokens(stmt, state)
                    )
                self.return_token_flags.append(flag)
                nxt.ret.append((stmt, dropped))
            return nxt

        if isinstance(stmt, ast.Raise):
            for state in states:
                nxt.raise_.append((stmt, state))
            return nxt

        if isinstance(stmt, ast.Break):
            for state in states:
                nxt.brk.append((stmt, state))
            return nxt

        if isinstance(stmt, ast.Continue):
            for state in states:
                nxt.cont.append((stmt, state))
            return nxt

        if isinstance(stmt, ast.If):
            then_in, else_in = self._split_condition(stmt.test, states)
            if self._risky(ast.Expr(stmt.test)):
                for state in states:
                    nxt.raise_.append((stmt, state))
            then_out = self._exec_block(stmt.body, then_in) if then_in else _BlockOut()
            else_out = (
                self._exec_block(stmt.orelse, else_in) if else_in else _BlockOut()
            )
            nxt.fall |= then_out.fall | else_out.fall
            if not stmt.orelse:
                nxt.fall |= else_in
            nxt.absorb_exits(then_out)
            nxt.absorb_exits(else_out)
            return nxt

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._exec_loop(stmt, states, nxt)

        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, states, nxt)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, states, nxt)

        # -- simple statement ---------------------------------------------
        acquire = None
        token = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            acquire = self._acquire_call(stmt.value)
            token = stmt.targets[0].id if acquire is not None else None
        elif isinstance(stmt, ast.Expr):
            inner = stmt.value
            if (
                isinstance(inner, (ast.Yield, ast.YieldFrom, ast.Await))
                and inner.value is not None
            ):
                inner = inner.value
            if self._acquire_call(inner) is not None:
                self.discards.append(stmt)

        if self._risky(stmt):
            # Exception edge: an acquire that raises has not acquired,
            # and a statement that releases or hands a token off is
            # credited with the transfer even if it then raises; any
            # *other* token still held rides the edge.
            for state in states:
                pre = State(
                    state
                    - self._released_tokens(stmt, state)
                    - self._escaping_tokens(stmt, state)
                )
                nxt.raise_.append((stmt, pre))

        for state in states:
            new = set(state)
            new -= self._released_tokens(stmt, state)
            new -= self._escaping_tokens(stmt, state)
            # Rebinding a held token loses the only handle to it.  (A
            # seeded parameter token has no acquire site: the caller
            # still holds its own reference, so it is not a local leak.)
            for target in getattr(stmt, "targets", []):
                if isinstance(target, ast.Name) and target.id in new and (
                    token != target.id
                ):
                    site = self.acquire_sites.get(target.id)
                    if site is not None:
                        self.leaks[id(site)] = site
                    new.discard(target.id)
            if acquire is not None and token is not None:
                self.acquire_sites[token] = acquire
                new.add(token)
            nxt.fall.add(State(new))
        return nxt

    # -- compound statements ----------------------------------------------
    def _split_condition(self, test: ast.AST, states: set) -> tuple:
        """Prune infeasible states: a held token is never falsy/None.

        Only *locally acquired* tokens qualify — a seeded parameter
        (summary mode) can be a bool or an optional, so branching on it
        must explore both arms or ``if flag: release(tok)`` would be
        misclassified as releasing unconditionally."""

        def token_of(expr: ast.AST) -> str | None:
            if isinstance(expr, ast.Name) and expr.id in self.acquire_sites:
                return expr.id
            return None

        truthy = falsy = None  # token proven held in then/else arm
        if isinstance(test, ast.Name):
            truthy = token_of(test)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            falsy = token_of(test.operand)
        elif isinstance(test, ast.Compare) and len(test.ops) == 1 and isinstance(
            test.comparators[0], ast.Constant
        ) and test.comparators[0].value is None:
            if isinstance(test.ops[0], ast.IsNot):
                truthy = token_of(test.left)
            elif isinstance(test.ops[0], ast.Is):
                falsy = token_of(test.left)

        then_in, else_in = set(states), set(states)
        if truthy is not None:
            # else-arm means the token is None: held states are infeasible.
            else_in = {s for s in states if truthy not in s}
        if falsy is not None:
            then_in = {s for s in states if falsy not in s}
        return then_in, else_in

    def _exec_loop(
        self,
        stmt: "ast.While | ast.For | ast.AsyncFor",
        states: set,
        nxt: _BlockOut,
    ) -> _BlockOut:
        if self._risky(ast.Expr(getattr(stmt, "test", None) or getattr(stmt, "iter"))):
            for state in states:
                nxt.raise_.append((stmt, state))
        seen = set(states)
        body_out = _BlockOut()
        for _ in range(len(getattr(self.func, "body", [])) + 8):
            body_out = self._exec_block(stmt.body, seen)
            grown = seen | body_out.fall | {s for _, s in body_out.cont}
            if grown == seen:
                break
            seen = grown
        nxt.ret.extend(body_out.ret)
        nxt.raise_.extend(body_out.raise_)
        # Normal loop exit: condition false on any iteration boundary,
        # or an explicit break.  (A ``while True`` only exits via break.)
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            nxt.fall |= seen
        nxt.fall |= {s for _, s in body_out.brk}
        if stmt.orelse:
            else_out = self._exec_block(stmt.orelse, set(nxt.fall))
            nxt.fall = else_out.fall
            nxt.absorb_exits(else_out)
        return nxt

    def _exec_with(
        self,
        stmt: "ast.With | ast.AsyncWith",
        states: set,
        nxt: _BlockOut,
    ) -> _BlockOut:
        entry_states = set()
        for state in states:
            new = set(state)
            for item in stmt.items:
                # ``with obj.acquire():`` — the context manager owns the
                # resource; nothing to track.
                # ``with tok:`` — the token releases itself on exit.
                ctx = item.context_expr
                if isinstance(ctx, ast.Name) and ctx.id in new:
                    new.discard(ctx.id)
            entry_states.add(State(new))
        header_risky = any(
            self._risky(ast.Expr(item.context_expr)) for item in stmt.items
        )
        if header_risky:
            for state in states:
                nxt.raise_.append((stmt, state))
        body_out = self._exec_block(stmt.body, entry_states)
        nxt.fall |= body_out.fall
        nxt.absorb_exits(body_out)
        return nxt

    def _exec_try(self, stmt: ast.Try, states: set, nxt: _BlockOut) -> _BlockOut:
        body_out = self._exec_block(stmt.body, states)

        def _broad_type(t: ast.AST | None) -> bool:
            if t is None:
                return True
            if isinstance(t, ast.Tuple):
                return any(_broad_type(e) for e in t.elts)
            name = t.attr if isinstance(t, ast.Attribute) else getattr(t, "id", "")
            return name in ("Exception", "BaseException")

        broad = any(_broad_type(h.type) for h in stmt.handlers)
        handler_entry = {s for _, s in body_out.raise_}
        merged = _BlockOut()
        merged.ret.extend(body_out.ret)
        merged.brk.extend(body_out.brk)
        merged.cont.extend(body_out.cont)
        if stmt.handlers:
            for handler in stmt.handlers:
                h_out = self._exec_block(handler.body, set(handler_entry))
                merged.fall |= h_out.fall
                merged.absorb_exits(h_out)
            if not broad:
                # A narrow handler may not catch: the raise can still
                # propagate past this try.
                merged.raise_.extend(body_out.raise_)
        else:
            merged.raise_.extend(body_out.raise_)

        if stmt.orelse:
            else_out = self._exec_block(stmt.orelse, body_out.fall)
            merged.fall |= else_out.fall
            merged.absorb_exits(else_out)
        else:
            merged.fall |= body_out.fall

        if not stmt.finalbody:
            nxt.fall |= merged.fall
            nxt.absorb_exits(merged)
            return nxt

        # Route every exit class through the finally block.
        def through(states_in: set) -> set:
            if not states_in:
                return set()
            f_out = self._exec_block(stmt.finalbody, states_in)
            nxt.ret.extend(f_out.ret)
            nxt.brk.extend(f_out.brk)
            nxt.cont.extend(f_out.cont)
            nxt.raise_.extend(f_out.raise_)
            return f_out.fall

        nxt.fall |= through(merged.fall)
        for node, state in merged.ret:
            for s in through({state}):
                nxt.ret.append((node, s))
        for node, state in merged.brk:
            for s in through({state}):
                nxt.brk.append((node, s))
        for node, state in merged.cont:
            for s in through({state}):
                nxt.cont.append((node, s))
        for node, state in merged.raise_:
            for s in through({state}):
                nxt.raise_.append((node, s))
        return nxt


def find_resource_leaks(
    tree: ast.AST, spec: ResourceSpec
) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(kind, node)`` pairs: ``leak`` at acquire sites that may
    not be released on all paths, ``discard`` at acquires whose handle is
    dropped on the floor."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mentions = any(
                isinstance(n, ast.Attribute)
                and n.attr in spec.acquire_methods
                for n in ast.walk(node)
            )
            if not mentions:
                continue
            analysis = FunctionAnalysis(node, spec)
            analysis.run()
            for site in analysis.leaks.values():
                yield "leak", site
            for site in analysis.discards:
                yield "discard", site

"""Failure injection: schedule disk failures/repairs during a workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import DegradedModeError


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled fault action."""

    at: float
    disk: int
    action: str = "fail"  # "fail" | "repair"

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError("negative event time")
        if self.action not in ("fail", "repair"):
            raise ValueError(f"bad action {self.action!r}")


@dataclass
class InjectionLog:
    """What the injector actually did."""

    applied: List[FailureEvent] = field(default_factory=list)
    data_loss_at: Optional[float] = None


class FaultInjector:
    """Applies a failure schedule to a cluster's storage system.

    Usage::

        inj = FaultInjector(cluster, [FailureEvent(0.5, disk=3)])
        inj.start()
        ... run workload ...
        assert inj.log.data_loss_at is None
    """

    def __init__(self, cluster, schedule: List[FailureEvent]):
        for ev in schedule:
            ev.validate()
            if not 0 <= ev.disk < cluster.n_disks:
                raise ValueError(f"disk {ev.disk} outside the array")
        self.cluster = cluster
        self.schedule = sorted(schedule, key=lambda e: e.at)
        self.log = InjectionLog()
        self._proc = None
        # Failures may land while a fast-forwarded request window is in
        # flight, which the closed form would surface at the wrong
        # instant; keep the whole chaos run on the event-driven path.
        storage = cluster.storage
        if schedule and storage is not None and hasattr(storage, "node_ff"):
            storage.node_ff = False

    def start(self) -> None:
        """Arm the injector (idempotent)."""
        if self._proc is None:
            self._proc = self.cluster.env.process(self._run())

    def _run(self):
        env = self.cluster.env
        storage = self.cluster.storage
        for ev in self.schedule:
            delay = ev.at - env.now
            if delay > 0:
                yield float(delay)
            if ev.action == "fail":
                try:
                    storage.fail_disk(ev.disk)
                except DegradedModeError:
                    # Non-redundant back-end: the failure is applied and
                    # the typed report becomes a data-loss timestamp.
                    if self.log.data_loss_at is None:
                        self.log.data_loss_at = env.now
            else:
                storage.repair_disk(ev.disk)
            self.log.applied.append(ev)
            layout = getattr(storage, "layout", None)
            if (
                layout is not None
                and storage.failed_disks
                and not layout.tolerates(storage.failed_disks)
                and self.log.data_loss_at is None
            ):
                self.log.data_loss_at = env.now

    @property
    def failed_now(self) -> set:
        return set(self.cluster.storage.failed_disks)

"""Fault tolerance: injection, coverage enumeration, reliability models."""

from repro.fault.injector import FaultInjector, FailureEvent
from repro.fault.coverage import (
    coverage_profile,
    guaranteed_coverage,
    survivable_fraction,
)
from repro.fault.reliability import (
    mttdl_mirrored_pairs,
    mttdl_raid5,
    mttdl_raidx,
    mttdl_chained,
    availability,
)
from repro.fault.montecarlo import MttdlEstimate, simulate_mttdl

__all__ = [
    "FailureEvent",
    "FaultInjector",
    "MttdlEstimate",
    "simulate_mttdl",
    "availability",
    "coverage_profile",
    "guaranteed_coverage",
    "mttdl_chained",
    "mttdl_mirrored_pairs",
    "mttdl_raid5",
    "mttdl_raidx",
    "survivable_fraction",
]

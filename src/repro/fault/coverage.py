"""Fault-coverage enumeration for RAID layouts.

Quantifies the paper's Table 2 "maximum fault coverage" row and its §6
claim that a 4×3 RAID-x array survives up to 3 failures falling in 3
distinct stripe groups.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, Optional

import numpy as np

from repro.raid.layout import Layout


def guaranteed_coverage(layout: Layout) -> int:
    """Largest f such that *every* f-disk failure set is survivable."""
    for f in range(layout.n_disks + 1):
        if f == 0:
            continue
        if not all(
            layout.tolerates(set(c))
            for c in combinations(range(layout.n_disks), f)
        ):
            return f - 1
    return layout.n_disks  # pragma: no cover - degenerate layouts only


def survivable_fraction(
    layout: Layout,
    f: int,
    samples: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Fraction of f-disk failure patterns the layout survives.

    Exhaustive when the pattern count is small; Monte-Carlo otherwise.
    """
    if f <= 0:
        return 1.0
    D = layout.n_disks
    if f > D:
        return 0.0
    total = comb(D, f)
    if samples is None or total <= samples:
        ok = sum(
            1
            for c in combinations(range(D), f)
            if layout.tolerates(set(c))
        )
        return ok / total
    rng = rng or np.random.default_rng(0)
    ok = 0
    for _ in range(samples):
        failed = set(rng.choice(D, size=f, replace=False).tolist())
        if layout.tolerates(failed):
            ok += 1
    return ok / samples


def coverage_profile(
    layout: Layout, max_f: Optional[int] = None, samples: int = 2000
) -> Dict[int, float]:
    """``{f: survivable fraction}`` for f = 1..max_f."""
    max_f = max_f or layout.n_disks
    return {
        f: survivable_fraction(layout, f, samples=samples)
        for f in range(1, max_f + 1)
    }

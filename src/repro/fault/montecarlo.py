"""Monte-Carlo validation of the analytical MTTDL models.

Simulates independent exponential disk failures (rate 1/MTTF) and
repairs (rate 1/MTTR) against a layout's :meth:`tolerates` predicate,
measuring the time until the failure set first becomes unsurvivable.
Cross-checks ``repro.fault.reliability``'s closed forms — and, because
it drives ``tolerates`` with realistic failure/repair interleavings,
doubles as a semantic test of the coverage predicates themselves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.raid.layout import Layout


@dataclass
class MttdlEstimate:
    """Sampled mean time to data loss with a crude error bar."""

    mean_hours: float
    stderr_hours: float
    runs: int

    def within(self, analytical: float, factor: float = 3.0) -> bool:
        """True if the estimate agrees with ``analytical`` within a
        multiplicative factor (the standard check for MTTDL models)."""
        if analytical <= 0:
            raise ValueError("analytical MTTDL must be positive")
        return analytical / factor <= self.mean_hours <= analytical * factor


def simulate_mttdl(
    layout: Layout,
    mttf_h: float,
    mttr_h: float,
    runs: int = 200,
    rng: Optional[np.random.Generator] = None,
    max_hours: float = 1e10,
) -> MttdlEstimate:
    """Estimate the layout's MTTDL by event-driven simulation.

    Each run races per-disk failure clocks against repair clocks until
    ``layout.tolerates(failed)`` first fails.
    """
    if mttf_h <= 0 or mttr_h <= 0:
        raise ValueError("MTTF and MTTR must be positive")
    if runs < 1:
        raise ValueError("need at least one run")
    rng = rng or np.random.default_rng(0)
    D = layout.n_disks
    samples = []
    for _ in range(runs):
        now = 0.0
        failed: set = set()
        # Event heap: (time, disk, kind).
        heap = [
            (float(rng.exponential(mttf_h)), d, "fail") for d in range(D)
        ]
        heapq.heapify(heap)
        while now < max_hours:
            now, disk, kind = heapq.heappop(heap)
            if kind == "fail":
                failed.add(disk)
                if not layout.tolerates(failed):
                    break
                heapq.heappush(
                    heap, (now + float(rng.exponential(mttr_h)), disk,
                           "repair")
                )
            else:
                failed.discard(disk)
                heapq.heappush(
                    heap, (now + float(rng.exponential(mttf_h)), disk,
                           "fail")
                )
        samples.append(now)
    arr = np.asarray(samples)
    return MttdlEstimate(
        mean_hours=float(arr.mean()),
        stderr_hours=float(arr.std(ddof=1) / np.sqrt(runs))
        if runs > 1
        else float("nan"),
        runs=runs,
    )

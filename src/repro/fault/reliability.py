"""Analytical reliability: mean time to data loss (MTTDL) per layout.

Standard Markov repair models (Patterson/Gibson/Katz style): disks fail
independently at rate λ = 1/MTTF and repair at rate µ = 1/MTTR.  Data is
lost when a second failure hits the vulnerable set before repair
completes.  These formulas back the qualitative reliability comparisons
in the paper's Tables 1 and 2.
"""

from __future__ import annotations


def _check(n_disks: int, mttf_h: float, mttr_h: float) -> None:
    if n_disks < 2:
        raise ValueError("need at least 2 disks")
    if mttf_h <= 0 or mttr_h <= 0:
        raise ValueError("MTTF and MTTR must be positive")
    if mttr_h >= mttf_h:
        raise ValueError("model assumes MTTR << MTTF")


def mttdl_raid5(n_disks: int, mttf_h: float, mttr_h: float) -> float:
    """RAID-5 over ``n_disks``: any second concurrent failure is fatal.

    MTTDL ≈ MTTF² / (D · (D-1) · MTTR).
    """
    _check(n_disks, mttf_h, mttr_h)
    return mttf_h**2 / (n_disks * (n_disks - 1) * mttr_h)


def mttdl_mirrored_pairs(n_disks: int, mttf_h: float, mttr_h: float) -> float:
    """RAID-10: fatal only if a disk's *pair partner* fails during repair.

    MTTDL ≈ MTTF² / (D · MTTR)  (one vulnerable disk per failure).
    """
    _check(n_disks, mttf_h, mttr_h)
    if n_disks % 2:
        raise ValueError("RAID-10 needs an even disk count")
    return mttf_h**2 / (n_disks * 1 * mttr_h)


def mttdl_chained(n_disks: int, mttf_h: float, mttr_h: float) -> float:
    """Chained declustering: the two ring neighbours are vulnerable.

    MTTDL ≈ MTTF² / (D · 2 · MTTR).
    """
    _check(n_disks, mttf_h, mttr_h)
    return mttf_h**2 / (n_disks * 2 * mttr_h)


def mttdl_raidx(
    n_disks: int, mttf_h: float, mttr_h: float, stripe_width: int
) -> float:
    """RAID-x (OSM): after one failure, the other n-1 disks of the same
    disk group are vulnerable (mirroring is confined to the group).

    MTTDL ≈ MTTF² / (D · (n-1) · MTTR) with n the stripe width.
    """
    _check(n_disks, mttf_h, mttr_h)
    if not 2 <= stripe_width <= n_disks or n_disks % stripe_width:
        raise ValueError("stripe width must divide the disk count")
    return mttf_h**2 / (n_disks * (stripe_width - 1) * mttr_h)


def availability(mttf_h: float, mttr_h: float) -> float:
    """Steady-state availability MTTF / (MTTF + MTTR)."""
    if mttf_h <= 0 or mttr_h < 0:
        raise ValueError("bad MTTF/MTTR")
    return mttf_h / (mttf_h + mttr_h)

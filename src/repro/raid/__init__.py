"""RAID layouts: block-placement geometry for five architectures.

Each layout is *pure geometry* — a mapping from logical data blocks to
physical ``(disk, byte offset)`` placements for data and redundancy —
plus fault-coverage predicates.  The per-architecture I/O protocols
(foreground/background mirroring, read-modify-write parity, degraded
reads) are expressed over the geometry as declarative
:mod:`repro.raid.plan` values by the pure planners in
:mod:`repro.raid.planners`, and executed by
:class:`repro.cluster.engine.ExecutionEngine`.
"""

from repro.raid.layout import Layout, Placement
from repro.raid.raid0 import Raid0Layout
from repro.raid.raid5 import Raid5Layout
from repro.raid.raid10 import Raid10Layout
from repro.raid.chained import ChainedDeclusteringLayout
from repro.raid.raidx import RaidxLayout
from repro.raid.geometry import reconfigure, valid_geometries
from repro.raid.mirror_policy import MirrorPolicy
from repro.raid.reconstruct import (
    RebuildResult,
    RebuildStep,
    execute_rebuild,
    plan_rebuild,
)
from repro.raid.migrate import (
    MigrationPlan,
    MigrationResult,
    Move,
    execute_migration,
    migration_plan,
)

LAYOUTS = {
    "raid0": Raid0Layout,
    "raid5": Raid5Layout,
    "raid10": Raid10Layout,
    "chained": ChainedDeclusteringLayout,
    "raidx": RaidxLayout,
}


def make_layout(name: str, **kwargs) -> Layout:
    """Instantiate a layout by architecture name."""
    try:
        cls = LAYOUTS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown layout {name!r}; choose from {sorted(LAYOUTS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "ChainedDeclusteringLayout",
    "LAYOUTS",
    "Layout",
    "MirrorPolicy",
    "Placement",
    "Raid0Layout",
    "Raid10Layout",
    "Raid5Layout",
    "RaidxLayout",
    "make_layout",
    "migration_plan",
    "execute_migration",
    "MigrationPlan",
    "MigrationResult",
    "Move",
    "plan_rebuild",
    "execute_rebuild",
    "RebuildResult",
    "RebuildStep",
    "reconfigure",
    "valid_geometries",
]

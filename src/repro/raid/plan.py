"""Declarative I/O plans: the *what* of a request, separated from the *how*.

A planner (:mod:`repro.raid.planners`) turns one logical request —
``(op, offset, nbytes)`` plus the failed-disk set — into an
:class:`IOPlan`: an ordered DAG of :class:`PieceOp` leaves grouped by
structural nodes that encode each architecture's protocol shape
(parallel mirrored waves, serial write-through waves, per-stripe parity
transactions, orthogonal foreground-data/background-image splits).  The
plan carries placements, lock requirements and foreground/background
tags; it never touches the simulator.

Execution semantics (who filters what) are part of the schema contract:

* Plans are built from *geometry only* — every copy/parity op appears in
  the plan even when its disk is currently failed.  The execution engine
  (:mod:`repro.cluster.engine`) filters against the **live** failed set
  at each spawn point, because disks can fail while a request is waiting
  on a lock or an earlier wave.  This is what makes plans reusable and
  the planner pure.
* ``tolerant`` ops mark-and-continue when the disk dies mid-flight
  (redundancy keeps the block recoverable); non-tolerant ops propagate
  :class:`~repro.errors.DiskFailedError`.
* ``background=True`` tags work the client does not wait for (RAID-x
  image flushes under the background mirror policy).

Everything in this module is a frozen dataclass: plans are immutable,
hashable values that can be compared, cached, and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, List, Optional, Tuple

from repro.raid.layout import Placement

#: Marker for ops that address redundancy rather than a logical block.
NO_BLOCK = -1


def split_into_blocks(
    offset: int, nbytes: int, block_size: int
) -> List[Tuple[int, int, int]]:
    """Split a byte range into (block_index, intra_offset, length) pieces.

    Pieces never cross block boundaries; partial first/last blocks are
    represented by a non-zero ``intra_offset`` / short ``length``.
    (Also exposed as :func:`repro.io.request.split_into_blocks`; the
    planner layer keeps its own copy because ``repro.raid`` sits below
    ``repro.io`` in the layering.)
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if nbytes < 0:
        raise ValueError("negative size")
    out: List[Tuple[int, int, int]] = []
    pos = offset
    end = offset + nbytes
    while pos < end:
        block = pos // block_size
        intra = pos - block * block_size
        take = min(block_size - intra, end - pos)
        out.append((block, intra, take))
        pos += take
    return out


@dataclass(frozen=True)
class Piece:
    """One block-aligned fragment of a logical request."""

    block: int  # logical data block index
    intra: int  # offset within the block
    nbytes: int  # fragment length (<= block_size)
    placement: Placement  # primary data placement

    @property
    def disk(self) -> int:
        return self.placement.disk

    @property
    def disk_offset(self) -> int:
        return self.placement.offset + self.intra


@dataclass(frozen=True)
class PieceOp:
    """One physical disk operation — the leaf of every plan.

    ``kind`` tags the op's role in the protocol (``data`` / ``parity``
    / ``mirror`` / ``reconstruct``); ``block`` is the logical data block
    the op serves, or :data:`NO_BLOCK` for shared redundancy (parity,
    clustered image extents).
    """

    op: str  # "read" | "write"
    disk: int
    offset: int
    nbytes: int
    kind: str = "data"
    block: int = NO_BLOCK
    tolerant: bool = False  # mark-and-continue on mid-flight failure
    priority: int = 0  # disk-scheduler priority class
    background: bool = False  # client does not wait for this op


@dataclass(frozen=True)
class ReadPiece:
    """Foreground read of one piece.

    The *source copy* is deliberately unbound: the engine asks the
    planner for candidates per attempt (the failed set grows on every
    mid-flight failure, and queue-depth balancing is runtime state).
    """

    piece: Piece


@dataclass(frozen=True)
class ReadPlan:
    """All pieces of a logical read, served concurrently."""

    reads: Tuple[ReadPiece, ...]


@dataclass(frozen=True)
class ReconstructRead:
    """Rebuild a lost block from surviving peers (RAID-5 degraded read):
    read the stripe's surviving data + parity, then XOR in memory."""

    reads: Tuple[PieceOp, ...]
    xor_bytes: int


@dataclass(frozen=True)
class CopySet:
    """A block and the disks holding all its copies (data + mirrors) —
    the unit of the mirrored systems' survival checks."""

    block: int
    disks: Tuple[int, ...]


@dataclass(frozen=True)
class MirroredPieceWrite:
    """All copies of one piece, issued in one parallel burst.

    ``skip_failed``: drop copies whose disk is failed at issue time
    (redundant layouts); when false, every op is issued as planned and a
    failed disk surfaces as :class:`~repro.errors.DiskFailedError`
    (RAID-0).  ``require_alive``: raise
    :class:`~repro.errors.DataLossError` at issue time when every copy
    disk is failed (the mirrored systems' fail-fast), evaluated *per
    piece, in plan order* — earlier pieces' writes are already in
    flight when a later piece fails the check, exactly as the pre-plan
    protocol behaved.
    """

    block: int
    ops: Tuple[PieceOp, ...]
    skip_failed: bool = True
    require_alive: bool = True


@dataclass(frozen=True)
class ParallelWrite:
    """Parallel write protocol (RAID-0, chained declustering).

    One burst of every surviving copy of every piece, one join, then an
    optional post-join survival re-check (copies can die mid-write; the
    tolerant ops absorb the error, the check decides if data survived).
    """

    pieces: Tuple[MirroredPieceWrite, ...]
    copies: Tuple[CopySet, ...] = ()
    check_survivors: bool = False


@dataclass(frozen=True)
class SerialWrite:
    """Write-through mirroring (RAID-10): the primary wave commits
    before the mirror wave is issued.  Survival is checked before the
    first wave and re-checked after the last."""

    copies: Tuple[CopySet, ...]
    waves: Tuple[Tuple[PieceOp, ...], ...]


@dataclass(frozen=True)
class FullStripePass:
    """Full-stripe parity write: XOR in memory, no pre-reads."""

    xor_bytes: int
    writes: Tuple[PieceOp, ...]
    parity_write: PieceOp


@dataclass(frozen=True)
class RmwPass:
    """One read-modify-write parity update: read old data + old parity,
    two XOR passes, write new data + new parity.  ``parity_read`` /
    ``parity_write`` cover the union of the modified intra-block ranges
    (parity bytes pair with data bytes positionally)."""

    reads: Tuple[PieceOp, ...]
    parity_read: PieceOp
    xor_bytes: int
    writes: Tuple[PieceOp, ...]
    parity_write: PieceOp


@dataclass(frozen=True)
class StripeWrite:
    """One stripe's share of a RAID-5 write — a lock-protected
    transaction: either a single full-stripe pass or a sequence of
    read-modify-write passes (one per modified block, or one batched
    pass, a plan-construction decision)."""

    stripe: int
    parity_disk: int
    full_stripe: Optional[FullStripePass] = None
    rmw_passes: Tuple[RmwPass, ...] = ()


@dataclass(frozen=True)
class ParityWrite:
    """RAID-5 write protocol: independent per-stripe transactions,
    each run as its own process under its stripe lock."""

    stripes: Tuple[StripeWrite, ...]


@dataclass(frozen=True)
class ImageExtent:
    """One clustered mirror-image run on an image disk (RAID-x):
    fragments of a mirror group coalesced into a single long write."""

    group: int  # mirror-group id (stale-image bookkeeping)
    disk: int
    offset: int
    nbytes: int


@dataclass(frozen=True)
class OrthogonalWrite:
    """RAID-x OSM write: foreground data block writes striped across
    all disks, image fragments coalesced into clustered extents and
    flushed in the background (or foreground, per mirror policy)."""

    foreground: Tuple[PieceOp, ...]
    extents: Tuple[ImageExtent, ...]
    background: bool  # True = deferred image flush (write-behind)


@dataclass(frozen=True)
class IOPlan:
    """A complete, declarative plan for one logical request."""

    arch: str
    op: str  # "read" | "write"
    offset: int
    nbytes: int
    pieces: Tuple[Piece, ...]
    #: Blocks whose lock groups a locking write must hold.
    lock_blocks: Tuple[int, ...] = ()
    #: ``ReadPlan`` or one of the write protocol nodes; ``None`` for
    #: empty requests.
    action: object = None


@dataclass(frozen=True)
class WriteContext:
    """Cache state a planner may consult when shaping a write plan.

    Passed *into* the pure planner by the engine's cache stage when a
    destage is planned: ``absorbed`` names the blocks whose pre-write
    content the buffer cache can supply, so a parity planner may drop
    those blocks' old-data pre-reads from its read-modify-write passes
    (RMW absorption).  The parity read and both XOR passes stay — only
    the redundant old-data disk reads disappear.
    """

    absorbed: AbstractSet[int] = field(default_factory=frozenset)


@dataclass(frozen=True)
class ReadContext:
    """Runtime state a planner may consult when ranking read sources.

    Passed *into* the pure planner by the engine on every attempt: the
    reading client (locality decisions) and the set of mirror groups
    whose image is not yet consistent (write-behind staleness guard).
    """

    client: int
    dirty_groups: AbstractSet[int] = field(default_factory=frozenset)

"""Mirror-update policies for RAID-x.

The paper's OSM updates images "simultaneously at the background"; the
ablation benchmark A1 compares that against a foreground (synchronous)
variant to quantify how much of RAID-x's write advantage comes from
deferral versus from clustering.
"""

from __future__ import annotations

from enum import Enum


class MirrorPolicy(str, Enum):
    """When image writes complete relative to the client's write."""

    #: Paper's OSM: client write returns after data blocks land; images
    #: are flushed by a background daemon at low disk priority.
    BACKGROUND = "background"
    #: Synchronous variant: the write waits for images too (RAID-10-like
    #: latency but keeps OSM's clustered long image writes).
    FOREGROUND = "foreground"

    @classmethod
    def parse(cls, value: object) -> "MirrorPolicy":
        """Accept enum instances or their string values."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown mirror policy {value!r}; "
                f"choose from {[m.value for m in cls]}"
            ) from None

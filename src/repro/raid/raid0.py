"""RAID-0: plain striping, no redundancy.

Included as the bandwidth upper bound the paper's Table 2 compares
against (RAID-x matches its read/write bandwidth while adding fault
tolerance).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.raid.layout import Layout, Placement


class Raid0Layout(Layout):
    """Block ``i`` → disk ``i mod D``, row ``i // D``."""

    name = "raid0"
    redundant = False

    @property
    def data_rows(self) -> int:
        return self.rows

    @property
    def data_blocks(self) -> int:
        return self.rows * self.n_disks

    def data_location(self, block: int) -> Placement:
        self.check_block(block)
        disk = block % self.n_disks
        row = block // self.n_disks
        return Placement(disk, row * self.block_size)

    def stripe_of(self, block: int) -> int:
        self.check_block(block)
        return block // self.stripe_width

    def stripe_blocks(self, stripe: int) -> List[int]:
        start = stripe * self.stripe_width
        return [
            b
            for b in range(start, start + self.stripe_width)
            if b < self.data_blocks
        ]

    def tolerates(self, failed: Iterable[int]) -> bool:
        return not set(failed)

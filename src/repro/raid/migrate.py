"""Data migration between layouts (array reconfiguration).

The paper (§6) reconfigures a 4×3 array into a 6×2 when pipelining
shows less advantage.  :func:`migration_plan` computes the block moves
needed to re-express the same logical data under a new geometry, and
:func:`execute_migration` runs them online on a cluster, reusing the
CDD path (so migration traffic contends realistically with foreground
I/O).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.errors import ConfigurationError
from repro.raid.layout import Layout, Placement


@dataclass(frozen=True)
class Move:
    """Relocate one logical block's data (and, implicitly, its image)."""

    block: int
    src: Placement
    dst: Placement


@dataclass
class MigrationPlan:
    """The moves needed to go from one layout to another."""

    moves: List[Move]
    blocks_checked: int

    @property
    def moved_fraction(self) -> float:
        if self.blocks_checked == 0:
            return 0.0
        return len(self.moves) / self.blocks_checked

    def __len__(self) -> int:
        return len(self.moves)


def migration_plan(
    old: Layout, new: Layout, max_blocks: Optional[int] = None
) -> MigrationPlan:
    """Blocks whose physical placement changes between two layouts.

    Both layouts must cover the same disks and block size; the logical
    address space compared is the smaller of the two.
    """
    if old.n_disks != new.n_disks or old.block_size != new.block_size:
        raise ConfigurationError(
            "layouts must share disk count and block size"
        )
    upper = min(old.data_blocks, new.data_blocks)
    if max_blocks is not None:
        upper = min(upper, max_blocks)
    moves: List[Move] = []
    for b in range(upper):
        src = old.data_location(b)
        dst = new.data_location(b)
        if src != dst:
            moves.append(Move(block=b, src=src, dst=dst))
    return MigrationPlan(moves=moves, blocks_checked=upper)


@dataclass
class MigrationResult:
    """Outcome of an executed migration."""

    moves: int
    bytes_moved: float
    elapsed: float

    @property
    def rate_mb_s(self) -> float:
        if self.elapsed <= 0:
            return float("nan")
        return self.bytes_moved / 1e6 / self.elapsed


def execute_migration(
    cluster: Any,
    plan: MigrationPlan,
    mover_node: int = 0,
    queue_depth: int = 8,
) -> MigrationResult:
    """Run a migration plan through the CDDs (read src, write dst).

    Moves run with bounded concurrency; each is a full-block copy.  The
    caller is responsible for swapping the cluster's layout afterwards
    (``cluster.storage.layout = new_layout`` plus a fresh SIOS).
    """
    env = cluster.env
    bs = cluster.storage.block_size
    cdd = cluster.cdds[mover_node]
    start = env.now
    moved = [0.0]

    def one(move: Move) -> Generator:
        yield cdd.submit("read", move.src.disk, move.src.offset, bs)
        yield cdd.submit("write", move.dst.disk, move.dst.offset, bs)
        moved[0] += bs

    def driver() -> Generator:
        inflight: List = []
        for move in plan.moves:
            inflight.append(env.process(one(move)))
            if len(inflight) >= queue_depth:
                yield inflight.pop(0)
        for ev in inflight:
            yield ev

    env.run(env.process(driver()))
    return MigrationResult(
        moves=len(plan.moves),
        bytes_moved=moved[0],
        elapsed=env.now - start,
    )

"""RAID-10: striped mirroring over disk pairs.

Disks pair up as (0,1), (2,3), …; data stripes across the primaries and
every block is mirrored on its pair partner **in the foreground** — both
copies must land before a write completes, which is why RAID-10 writes
at half of RAID-x's foreground bandwidth (paper's Table 2).

Reads alternate between the two copies for load balance.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import ConfigurationError
from repro.raid.layout import Layout, Placement


class Raid10Layout(Layout):
    """Mirrored pairs, striped; requires an even number of disks."""

    name = "raid10"

    def __init__(
        self,
        n_disks: int,
        block_size: int,
        disk_capacity: int,
        stripe_width: int | None = None,
    ):
        super().__init__(n_disks, block_size, disk_capacity, stripe_width)
        if n_disks % 2:
            raise ConfigurationError("RAID-10 needs an even disk count")
        self.n_pairs = n_disks // 2

    @property
    def data_rows(self) -> int:
        return self.rows

    @property
    def data_blocks(self) -> int:
        return self.rows * self.n_pairs

    # data_location is table-cached by the Layout base class.
    def _placement_rotation(self) -> tuple[int, int]:
        return self.n_pairs, self.block_size

    def _data_location_uncached(self, block: int) -> Placement:
        pair = block % self.n_pairs
        row = block // self.n_pairs
        return Placement(2 * pair, row * self.block_size)

    def redundancy_locations(self, block: int) -> List[Placement]:
        self.check_block(block)
        pair = block % self.n_pairs
        row = block // self.n_pairs
        return [Placement(2 * pair + 1, row * self.block_size)]

    def _redundancy_locations_uncached(self, block: int) -> List[Placement]:
        """Alias for the (already formula-direct) mirror placement."""
        pair = block % self.n_pairs
        row = block // self.n_pairs
        return [Placement(2 * pair + 1, row * self.block_size)]

    def read_sources(self, block: int) -> List[Placement]:
        primary = self.data_location(block)
        mirror = self.redundancy_locations(block)[0]
        # Alternate preferred copy by stripe row to spread read load.
        if (block // self.n_pairs) % 2:
            return [mirror, primary]
        return [primary, mirror]

    def stripe_of(self, block: int) -> int:
        self.check_block(block)
        return block // self.n_pairs

    def stripe_blocks(self, stripe: int) -> List[int]:
        start = stripe * self.n_pairs
        return [
            b
            for b in range(start, start + self.n_pairs)
            if b < self.data_blocks
        ]

    def tolerates(self, failed: Iterable[int]) -> bool:
        failed = set(failed)
        for pair in range(self.n_pairs):
            if 2 * pair in failed and 2 * pair + 1 in failed:
                return False
        return True

    def max_fault_coverage(self) -> int:
        return self.n_pairs

"""n × k geometry helpers and array reconfiguration.

The paper (§6) notes the 4×3 layout "can be reconfigured from a 4×3
array to a 6×2 array, if pipelined access shows less advantage" — the
trade-off between stripe parallelism (n) and pipeline depth (k).  These
helpers enumerate the valid factorizations of a disk count and rebuild a
layout under a new (n, k).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.raid.layout import Layout


def valid_geometries(
    n_disks: int, min_width: int = 3
) -> List[Tuple[int, int]]:
    """All (n, k) with n·k == n_disks and n >= min_width, widest first."""
    out = []
    for n in range(n_disks, min_width - 1, -1):
        if n_disks % n == 0:
            out.append((n, n_disks // n))
    return out


def reconfigure(layout: Layout, n: int, k: int) -> Layout:
    """Rebuild ``layout`` with stripe width n and depth k (same disks).

    This is a *geometry* operation: it returns a new layout object; data
    migration cost is modeled by the checkpoint/rebuild machinery, not
    here.
    """
    if n * k != layout.n_disks:
        raise ConfigurationError(
            f"{n}x{k} does not cover {layout.n_disks} disks"
        )
    return type(layout)(
        n_disks=layout.n_disks,
        block_size=layout.block_size,
        disk_capacity=layout.disk_capacity,
        stripe_width=n,
    )

"""RAID-x: orthogonal striping and mirroring (OSM) — the paper's §2.

Geometry for an ``n × k`` array (n nodes = stripe width, k disks per
node = pipeline depth, D = nk disks total):

* **Data** stripes RAID-0-style across *all* D disks in the order
  D0, D1, …, D(D-1): block ``i`` → disk ``i mod D``, data row ``i // D``
  (top half of every disk), exactly as in the paper's Fig. 3.
* **Mirroring** is confined to each *disk group* of n disks (disks
  ``[cn, (c+1)n)`` — one disk per node, the unit of stripe parallelism).
  Within group ``c``, the group's data blocks in address order get local
  indices ℓ = 0, 1, 2, …; each run of ``n-1`` consecutive indices forms
  a **mirror group** whose images are *clustered* — stored as one long
  (n-1)-block sequential extent — on the single image disk

      image_disk(g) = c·n + ((g+1)·(n-1)) mod n

  in the bottom half of the disk.  Since ``gcd(n-1, n) = 1`` the image
  disk cycles through all n disks of the group (load balance), and the
  congruence ``p ≡ n-1 (mod n)`` is unsatisfiable for in-group positions
  ``p ≤ n-2``, so **no image ever shares a disk with its data block**
  (orthogonality — verified by property tests).

Consequences reproduced from the paper:

* the images of one n-block stripe group land on exactly two disks;
* a full-stripe write issues n parallel foreground block writes plus
  two long background image writes — no read-modify-write ever;
* one disk failure per disk group is survivable (``k`` failures total
  for an n×k array — the paper's "up to 3 failures in 3 stripe groups"
  for the 4×3 configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ConfigurationError
from repro.raid.layout import Layout, Placement


@dataclass(frozen=True)
class MirrorGroup:
    """One clustered image extent: ``n-1`` consecutive blocks of a disk
    group, stored as a single long block on ``image_disk``."""

    group_id: int  # global id: (disk_group, local_group) flattened
    disk_group: int
    image_disk: int
    image_offset: int  # byte offset of the extent start
    blocks: tuple  # logical data blocks, in image order


class RaidxLayout(Layout):
    """Orthogonal striping and mirroring over an n × k disk array."""

    name = "raidx"

    def __init__(
        self,
        n_disks: int,
        block_size: int,
        disk_capacity: int,
        stripe_width: int | None = None,
    ):
        super().__init__(n_disks, block_size, disk_capacity, stripe_width)
        self.n = self.stripe_width
        self.k = n_disks // self.n
        if self.n < 3:
            raise ConfigurationError(
                "RAID-x needs stripe width >= 3 (n-1 >= 2 blocks per "
                "mirror group)"
            )
        # Mirror placement repeats every D(n-1) blocks: the disk/row
        # pattern is identical while image rows advance by n-1 and group
        # ids by n per rotation.  Only complete rotations are table-
        # cacheable — the final (partial) rotation can hold truncated
        # mirror groups and falls back to the formulas.
        self._data_rows = self._fit_data_rows()
        self._mirror_period = self.n_disks * (self.n - 1)
        self._mirror_safe_limit = (
            self.data_blocks // self._mirror_period
        ) * self._mirror_period
        self._mirror_table: tuple | None = None
        self._image_table: tuple | None = None

    # -- capacity ----------------------------------------------------------
    def _mirror_rows_needed(self, data_rows: int) -> int:
        """Image rows a disk must hold when the data region has
        ``data_rows`` rows.

        The image row of local index ℓ is ``(ℓ//(n-1)//n)·(n-1) +
        ℓ mod (n-1)``; the ``p`` term skews up to ``n-2`` rows past the
        rotation base, so the region needs slightly *more* than
        ``data_rows`` rows.  Rows advance uniformly per placement
        rotation, so scanning the final two rotations finds the max.
        """
        n = self.n
        top = data_rows * n
        lo = max(0, top - 2 * self.n_disks * (n - 1))
        need = 0
        for ell in range(lo, top):
            row = (ell // (n - 1) // n) * (n - 1) + ell % (n - 1) + 1
            if row > need:
                need = row
        return need

    def _fit_data_rows(self) -> int:
        """Largest data region whose images still fit below the disk end.

        An even split (``rows // 2``) overcommits: the image-row skew
        (see :meth:`_mirror_rows_needed`) pushes the last few images up
        to ``n-2`` rows past half the disk, which would address past the
        end of the physical disk for tail blocks.
        """
        d = self.rows // 2
        while d > 0 and self._mirror_rows_needed(d) > self.rows - d:
            d -= 1
        return d

    @property
    def data_rows(self) -> int:
        return self._data_rows

    @property
    def data_blocks(self) -> int:
        return self.data_rows * self.n_disks

    @property
    def mirror_base(self) -> int:
        """Byte offset where the clustered-image region starts."""
        return self.data_rows * self.block_size

    # -- data placement ----------------------------------------------------
    # data_location is table-cached by the Layout base class.
    def _placement_rotation(self) -> tuple[int, int]:
        return self.n_disks, self.block_size

    def _data_location_uncached(self, block: int) -> Placement:
        disk = block % self.n_disks
        row = block // self.n_disks
        return Placement(disk, row * self.block_size)

    # -- mirror placement ----------------------------------------------------
    def _group_local_index(self, block: int) -> tuple:
        """(disk_group c, local index ℓ) of a data block within its group."""
        D = self.n_disks
        disk = block % D
        c = disk // self.n
        q = block // D
        r = disk - c * self.n
        return c, q * self.n + r

    def _local_block(self, c: int, ell: int) -> int:
        """Inverse of :meth:`_group_local_index`."""
        q, r = divmod(ell, self.n)
        return q * self.n_disks + c * self.n + r

    def mirror_group_of(self, block: int) -> MirrorGroup:
        """The mirror group (clustered image extent) containing ``block``.

        Table-cached: one :class:`MirrorGroup` per block of the first
        placement rotation, shifted arithmetically for later rotations
        (image rows advance by ``n-1``, group ids by ``n``, member
        blocks by the rotation period).  Blocks of the final partial
        rotation use the formulas directly, since their groups can be
        truncated.
        """
        self.check_block(block)
        if block >= self._mirror_safe_limit:
            return self._mirror_group_uncached(block)
        table = self._mirror_table
        if table is None:
            table = self._build_mirror_table()
        rot, idx = divmod(block, self._mirror_period)
        base = table[idx]
        if rot == 0:
            return base
        shift = rot * self._mirror_period
        return MirrorGroup(
            group_id=base.group_id + rot * self.n,
            disk_group=base.disk_group,
            image_disk=base.image_disk,
            image_offset=base.image_offset
            + rot * (self.n - 1) * self.block_size,
            blocks=tuple(b + shift for b in base.blocks),
        )

    def _build_mirror_table(self) -> tuple:
        self._mirror_table = tuple(
            map(self._mirror_group_uncached, range(self._mirror_period))
        )
        return self._mirror_table

    def _mirror_group_uncached(self, block: int) -> MirrorGroup:
        """Pure OSM mirror-placement formula (no caching)."""
        n = self.n
        c, ell = self._group_local_index(block)
        g, _p = divmod(ell, n - 1)
        image_local = ((g + 1) * (n - 1)) % n
        image_disk = c * n + image_local
        image_row = (g // n) * (n - 1)
        blocks = tuple(
            self._local_block(c, g * (n - 1) + j)
            for j in range(n - 1)
            if g * (n - 1) + j < self._local_blocks_in_group()
        )
        return MirrorGroup(
            group_id=c * self._groups_per_disk_group() + g,
            disk_group=c,
            image_disk=image_disk,
            image_offset=self.mirror_base + image_row * self.block_size,
            blocks=blocks,
        )

    def _local_blocks_in_group(self) -> int:
        return self.data_rows * self.n

    def _groups_per_disk_group(self) -> int:
        n = self.n
        return (self._local_blocks_in_group() + n - 2) // (n - 1)

    def redundancy_locations(self, block: int) -> List[Placement]:
        """Image placement of ``block``.

        Unlike :meth:`mirror_group_of`, the placement shift is exact
        for *every* block — truncation near the end of the address
        space changes a group's membership, never where an individual
        image lands — so the table covers the full address space.
        """
        self.check_block(block)
        table = self._image_table
        if table is None:
            table = self._build_image_table()
        rot, idx = divmod(block, self._mirror_period)
        disk, base = table[idx]
        return [Placement(disk, base + rot * (self.n - 1) * self.block_size)]

    def _build_image_table(self) -> tuple:
        bs = self.block_size
        n = self.n
        entries = []
        for b in range(self._mirror_period):
            c, ell = self._group_local_index(b)
            g, p = divmod(ell, n - 1)
            disk = c * n + ((g + 1) * (n - 1)) % n
            row = (g // n) * (n - 1)
            entries.append((disk, self.mirror_base + (row + p) * bs))
        self._image_table = tuple(entries)
        return self._image_table

    def _redundancy_locations_uncached(self, block: int) -> List[Placement]:
        """Pure image-placement formula (no caching)."""
        mg = self._mirror_group_uncached(block)
        _c, ell = self._group_local_index(block)
        p = ell % (self.n - 1)
        return [
            Placement(mg.image_disk, mg.image_offset + p * self.block_size)
        ]

    # -- stripes -------------------------------------------------------------
    def stripe_of(self, block: int) -> int:
        self.check_block(block)
        return block // self.n

    def stripe_blocks(self, stripe: int) -> List[int]:
        start = stripe * self.n
        return [b for b in range(start, start + self.n) if b < self.data_blocks]

    def stripe_image_disks(self, stripe: int) -> List[int]:
        """The (at most two) disks carrying the stripe group's images."""
        disks = []
        for b in self.stripe_blocks(stripe):
            d = self.mirror_group_of(b).image_disk
            if d not in disks:
                disks.append(d)
        return disks

    # -- fault model -----------------------------------------------------
    def tolerates(self, failed: Iterable[int]) -> bool:
        """Survivable iff no disk group has two failed disks.

        Mirroring is confined to disk groups, and within a group every
        ordered disk pair (data, image) is realized by some mirror group,
        so two failures in one group always lose data while failures in
        distinct groups never conflict.
        """
        failed = set(failed)
        if any(not 0 <= d < self.n_disks for d in failed):
            return False
        per_group: dict[int, int] = {}
        for d in failed:
            c = d // self.n
            per_group[c] = per_group.get(c, 0) + 1
            if per_group[c] > 1:
                return False
        return True

    def max_fault_coverage(self) -> int:
        return self.k

"""RAID-5: rotating parity (left-symmetric).

A stripe holds ``D-1`` data blocks plus one parity block; the parity
disk rotates across stripes.  Small writes pay the classic
read-modify-write penalty — the "small write problem" RAID-x is designed
to eliminate — planned by :class:`repro.raid.planners.Raid5Planner` and
executed by the shared :mod:`repro.cluster.engine`.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.raid.layout import Layout, Placement


class Raid5Layout(Layout):
    """Left-symmetric RAID-5 over all disks."""

    name = "raid5"

    @property
    def data_rows(self) -> int:
        return self.rows

    @property
    def data_blocks(self) -> int:
        return self.rows * (self.n_disks - 1)

    # -- per-stripe geometry ---------------------------------------------
    def parity_disk(self, stripe: int) -> int:
        """The disk carrying the stripe's parity block (rotating)."""
        return (self.n_disks - 1 - stripe) % self.n_disks

    def parity_location(self, stripe: int) -> Placement:
        """Placement of the stripe's parity block."""
        return Placement(self.parity_disk(stripe), stripe * self.block_size)

    # data_location is table-cached by the Layout base class: the
    # left-symmetric disk pattern repeats every D stripes = D(D-1)
    # blocks, with offsets advancing D rows per rotation.
    def _placement_rotation(self) -> tuple[int, int]:
        D = self.n_disks
        return D * (D - 1), D * self.block_size

    def _data_location_uncached(self, block: int) -> Placement:
        width = self.n_disks - 1
        stripe = block // width
        j = block % width
        pdisk = self.parity_disk(stripe)
        # Left-symmetric: data fills disks starting after the parity disk.
        disk = (pdisk + 1 + j) % self.n_disks
        return Placement(disk, stripe * self.block_size)

    def stripe_of(self, block: int) -> int:
        self.check_block(block)
        return block // (self.n_disks - 1)

    def stripe_blocks(self, stripe: int) -> List[int]:
        width = self.n_disks - 1
        start = stripe * width
        return [b for b in range(start, start + width) if b < self.data_blocks]

    def tolerates(self, failed: Iterable[int]) -> bool:
        return len(set(failed)) <= 1

    def max_fault_coverage(self) -> int:
        return 1

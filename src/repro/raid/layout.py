"""Layout base class and placement primitives.

Physical model: an array of ``n_disks`` identical disks, each holding
``rows`` block rows of ``block_size`` bytes.  A layout divides each disk
into a *data region* (rows ``[0, data_rows)``) and, for mirrored
layouts, a *mirror region* (rows ``[data_rows, rows)``); RAID-5 embeds
parity inside stripes instead.

Logical address space: data blocks ``0 .. data_blocks-1``, exposed to
clients as one contiguous virtual disk (the single I/O space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.errors import AddressError, ConfigurationError, LayoutError


@dataclass(frozen=True)
class Placement:
    """A physical location: disk id and byte offset on that disk."""

    disk: int
    offset: int

    def end(self, nbytes: int) -> int:
        return self.offset + nbytes


class Layout:
    """Abstract block-placement geometry.

    Parameters
    ----------
    n_disks:
        Total number of disks in the array (``n × k`` for 2D arrays).
    block_size:
        Striping unit in bytes.
    disk_capacity:
        Usable bytes per disk.
    stripe_width:
        Disks per stripe group (``n``); defaults to ``n_disks``.
    """

    #: Architecture name, overridden by subclasses.
    name = "abstract"
    #: Whether the layout stores redundancy (mirror or parity).
    redundant = True

    def __init__(
        self,
        n_disks: int,
        block_size: int,
        disk_capacity: int,
        stripe_width: int | None = None,
    ):
        if n_disks < 2:
            raise ConfigurationError("an array needs at least 2 disks")
        if block_size <= 0 or disk_capacity < block_size:
            raise ConfigurationError("bad block size / disk capacity")
        self.n_disks = n_disks
        self.block_size = block_size
        self.disk_capacity = disk_capacity
        self.rows = disk_capacity // block_size
        self.stripe_width = stripe_width or n_disks
        if not (2 <= self.stripe_width <= n_disks):
            raise ConfigurationError(
                f"stripe width {self.stripe_width} out of range"
            )
        if n_disks % self.stripe_width:
            raise ConfigurationError(
                "n_disks must be a multiple of the stripe width"
            )
        #: Lazily built data-placement rotation table (see
        #: :meth:`_build_data_table`).
        self._data_table: "Tuple[int, int, tuple] | None" = None

    # -- capacity ----------------------------------------------------------
    @property
    def data_rows(self) -> int:
        """Rows of the per-disk data region (override in subclasses)."""
        raise NotImplementedError

    @property
    def data_blocks(self) -> int:
        """Total addressable logical blocks."""
        raise NotImplementedError

    @property
    def data_capacity(self) -> int:
        """Addressable bytes of the virtual disk."""
        return self.data_blocks * self.block_size

    def check_block(self, block: int) -> None:
        if not 0 <= block < self.data_blocks:
            raise AddressError(
                f"logical block {block} outside [0, {self.data_blocks})"
            )

    # -- geometry ------------------------------------------------------------
    def data_location(self, block: int) -> Placement:
        """Primary placement of a logical data block.

        Layouts are immutable and their placement geometry is periodic:
        the disk pattern repeats every rotation of ``period`` logical
        blocks while per-disk offsets advance by a fixed stride.  A
        subclass that implements :meth:`_placement_rotation` and
        :meth:`_data_location_uncached` therefore gets exact (not
        approximate) table-cached lookups from this base method; other
        subclasses override :meth:`data_location` directly.
        """
        self.check_block(block)
        table = self._data_table
        if table is None:
            table = self._build_data_table()
        period, advance, entries = table
        rot, idx = divmod(block, period)
        disk, base = entries[idx]
        return Placement(disk, base + rot * advance)

    def _placement_rotation(self) -> "Tuple[int, int]":
        """``(blocks per rotation, offset advance per rotation in bytes)``.

        Implemented by subclasses that enable the table-cached
        :meth:`data_location`.
        """
        raise NotImplementedError

    def _data_location_uncached(self, block: int) -> Placement:
        """Pure placement formula: no caching, no bounds check.

        Must be total over ``[0, period)`` even when the array is
        smaller than one rotation.  Kept alongside the table path so
        property tests can check table/formula agreement.
        """
        raise NotImplementedError

    def _build_data_table(self) -> "Tuple[int, int, tuple]":
        period, advance = self._placement_rotation()
        entries = tuple(
            (p.disk, p.offset)
            for p in map(self._data_location_uncached, range(period))
        )
        self._data_table = (period, advance, entries)
        return self._data_table

    def redundancy_locations(self, block: int) -> List[Placement]:
        """Mirror-image placements of ``block`` (empty for RAID-0/RAID-5;
        RAID-5 exposes parity via :meth:`parity_location` because parity
        is shared per stripe, not per block)."""
        return []

    def read_sources(self, block: int) -> List[Placement]:
        """All placements a read of ``block`` may be served from,
        primary first."""
        return [self.data_location(block)] + self.redundancy_locations(block)

    def stripe_of(self, block: int) -> int:
        """Index of the stripe group containing ``block``."""
        raise NotImplementedError

    def stripe_blocks(self, stripe: int) -> List[int]:
        """The logical blocks forming a stripe group."""
        raise NotImplementedError

    def full_stripe(self, blocks: Sequence[int]) -> bool:
        """True if ``blocks`` covers at least one entire stripe group."""
        by_stripe: dict[int, set] = {}
        for b in blocks:
            by_stripe.setdefault(self.stripe_of(b), set()).add(b)
        return any(
            set(self.stripe_blocks(s)) <= members
            for s, members in by_stripe.items()
        )

    # -- fault coverage --------------------------------------------------
    def tolerates(self, failed: Iterable[int]) -> bool:
        """True if no data is lost with the given set of failed disks."""
        raise NotImplementedError

    def max_fault_coverage(self) -> int:
        """Largest f such that *some* f-disk failure pattern is survivable."""
        # Greedy enumeration; subclasses may override with closed forms.
        best = 0
        survivor: Set[int] = set()
        for d in range(self.n_disks):
            if self.tolerates(survivor | {d}):
                survivor.add(d)
                best += 1
        return best

    def surviving_read_sources(
        self, block: int, failed: Set[int]
    ) -> List[Placement]:
        """Read placements for ``block`` excluding failed disks."""
        return [p for p in self.read_sources(block) if p.disk not in failed]

    # -- introspection helpers ---------------------------------------------
    def node_of_disk(self, disk: int) -> int:
        """The cluster node driving ``disk`` (paper's Fig. 3 numbering:
        node j owns disks j, j+n, j+2n, … where n is the stripe width)."""
        return disk % self.stripe_width

    def disk_group(self, disk: int) -> int:
        """The n-disk group (pipeline stage) a disk belongs to."""
        return disk // self.stripe_width

    def placement_map(self, max_blocks: int = 16) -> str:
        """ASCII rendering of the first ``max_blocks`` data/image rows —
        reproduces the style of the paper's Fig. 1 / Fig. 3."""
        n = self.n_disks
        grid: dict[Tuple[int, int], str] = {}
        for b in range(min(max_blocks, self.data_blocks)):
            p = self.data_location(b)
            grid[(p.disk, p.offset // self.block_size)] = f"B{b}"
            for m in self.redundancy_locations(b):
                grid[(m.disk, m.offset // self.block_size)] = f"M{b}"
        occupied = sorted({r for _d, r in grid})
        lines = ["disk: " + "  ".join(f"D{d:<4}" for d in range(n))]
        prev = None
        for r in occupied:
            if prev is not None and r > prev + 1:
                lines.append("  ...")
            cells = [grid.get((d, r), ".") for d in range(n)]
            lines.append(f"row {r:>2}: " + "  ".join(f"{c:<5}" for c in cells))
            prev = r
        return "\n".join(lines)

    def verify_invariants(self, blocks: int = 256) -> None:
        """Check core placement invariants over the first ``blocks`` blocks.

        Raises :class:`LayoutError` on violation.  Used by property tests
        and at array construction time.
        """
        seen: dict = {}
        upper = min(blocks, self.data_blocks)
        for b in range(upper):
            p = self.data_location(b)
            if not 0 <= p.disk < self.n_disks:
                raise LayoutError(f"block {b}: disk {p.disk} out of range")
            if not 0 <= p.offset <= self.disk_capacity - self.block_size:
                raise LayoutError(f"block {b}: offset {p.offset} out of range")
            key = (p.disk, p.offset)
            if key in seen:
                raise LayoutError(
                    f"placement collision: blocks {seen[key]} and {b} "
                    f"both at disk {p.disk} offset {p.offset}"
                )
            seen[key] = ("data", b)
            for m in self.redundancy_locations(b):
                if not 0 <= m.disk < self.n_disks:
                    raise LayoutError(
                        f"block {b}: image disk {m.disk} out of range"
                    )
                if not 0 <= m.offset <= self.disk_capacity - self.block_size:
                    raise LayoutError(
                        f"block {b}: image offset {m.offset} past the "
                        f"disk end"
                    )
                if m.disk == p.disk:
                    raise LayoutError(
                        f"block {b}: image on same disk as data "
                        f"(disk {p.disk}) — orthogonality violated"
                    )
                mkey = (m.disk, m.offset)
                if mkey in seen:
                    raise LayoutError(
                        f"placement collision at disk {m.disk} offset "
                        f"{m.offset}: {seen[mkey]} vs image of {b}"
                    )
                seen[mkey] = ("image", b)

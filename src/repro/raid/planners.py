"""Pure per-architecture planners: request in, :class:`IOPlan` out.

One planner per architecture turns ``(op, offset, nbytes, failed)``
into the declarative plan its protocol requires — RAID-x's clustered
mirror-image extents and RAID-5's read-modify-write vs. full-stripe
choice are *plan-construction decisions* here, not control flow in the
executor.  Planners are side-effect free: no simulator processes, no
hardware, no mutation of anything they are handed.  The division of
labour with :mod:`repro.cluster.engine`:

* the **planner** decides structure from geometry and request shape
  (which copies exist, how parity pairs with data, how image fragments
  coalesce into extents);
* the **engine** decides everything that depends on runtime state —
  filtering ops against the live failed-disk set at each spawn point,
  queue-depth read balancing, lock waits, write-behind absorption.

``plan()`` accepts the failed set so degraded-aware planners *can* use
it, but the stock planners deliberately ignore it for writes: disks can
fail while a request waits on a lock, so failure filtering must happen
at execution time to be correct.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional, Tuple

from repro.errors import AddressError, DataLossError
from repro.raid.layout import Layout, Placement
from repro.raid.mirror_policy import MirrorPolicy
from repro.raid.plan import (
    CopySet,
    ImageExtent,
    IOPlan,
    MirroredPieceWrite,
    OrthogonalWrite,
    ParallelWrite,
    ParityWrite,
    Piece,
    PieceOp,
    ReadContext,
    ReadPiece,
    ReadPlan,
    ReconstructRead,
    RmwPass,
    FullStripePass,
    SerialWrite,
    StripeWrite,
    WriteContext,
    split_into_blocks,
)

FailedSet = AbstractSet[int]


class Planner:
    """Base planner: piece splitting, read plans, source ranking."""

    arch = "abstract"

    def __init__(self, layout: Layout):
        self.layout = layout

    # -- addressing --------------------------------------------------------
    def pieces_for(self, offset: int, nbytes: int) -> List[Piece]:
        """Split a logical byte range into per-disk pieces."""
        capacity = self.layout.data_capacity
        if offset < 0 or nbytes < 0 or offset + nbytes > capacity:
            raise AddressError(
                f"range [{offset}, {offset + nbytes}) outside virtual disk "
                f"of {capacity} bytes"
            )
        return [
            Piece(
                block=block,
                intra=intra,
                nbytes=take,
                placement=self.layout.data_location(block),
            )
            for block, intra, take in split_into_blocks(
                offset, nbytes, self.layout.block_size
            )
        ]

    # -- plan construction -------------------------------------------------
    def plan(
        self,
        op: str,
        offset: int,
        nbytes: int,
        failed: FailedSet = frozenset(),
        wctx: Optional[WriteContext] = None,
    ) -> IOPlan:
        """Build the declarative plan for one logical request.

        ``wctx`` (cache destages only) names the blocks whose pre-write
        content the buffer cache holds; parity planners may absorb
        those blocks' RMW pre-reads.
        """
        pieces = self.pieces_for(offset, nbytes)
        action: object = None
        if pieces:
            if op == "read":
                action = ReadPlan(tuple(ReadPiece(p) for p in pieces))
            else:
                action = self.plan_write(pieces, failed, wctx)
        return IOPlan(
            arch=self.arch,
            op=op,
            offset=offset,
            nbytes=nbytes,
            pieces=tuple(pieces),
            lock_blocks=tuple(p.block for p in pieces),
            action=action,
        )

    def plan_write(
        self,
        pieces: List[Piece],
        failed: FailedSet,
        wctx: Optional[WriteContext] = None,
    ) -> object:
        raise NotImplementedError

    # -- read-source ranking (consulted per attempt by the engine) ---------
    def read_candidates(
        self, piece: Piece, failed: FailedSet, ctx: ReadContext
    ) -> Tuple[Tuple[Placement, ...], bool]:
        """Ordered surviving copies for a read, preferred first.

        Returns ``(candidates, may_balance)``: when ``may_balance`` is
        true the engine's read policy may divert from the preferred copy
        by queue depth; when false the ranking is binding.  An empty
        tuple means no copy survives — reconstruct or fail.
        """
        return (
            tuple(self.layout.surviving_read_sources(piece.block, failed)),
            True,
        )

    def plan_reconstruct(
        self, piece: Piece, failed: FailedSet
    ) -> ReconstructRead:
        """Plan a peer-reconstruction read, or raise
        :class:`~repro.errors.DataLossError` when the layout cannot."""
        raise DataLossError(
            f"block {piece.block}: all copies on failed disks "
            f"{sorted(failed)}"
        )

    # -- helpers -----------------------------------------------------------
    def _data_write(self, p: Piece, tolerant: bool = False) -> PieceOp:
        return PieceOp(
            "write", p.disk, p.disk_offset, p.nbytes,
            kind="data", block=p.block, tolerant=tolerant,
        )


class Raid0Planner(Planner):
    """Striping only: one parallel burst of non-tolerant data writes —
    no redundancy means a mid-write disk failure must surface."""

    arch = "raid0"

    def plan_write(
        self,
        pieces: List[Piece],
        failed: FailedSet,
        wctx: Optional[WriteContext] = None,
    ) -> object:
        return ParallelWrite(
            pieces=tuple(
                MirroredPieceWrite(
                    block=p.block,
                    ops=(self._data_write(p),),
                    skip_failed=False,
                    require_alive=False,
                )
                for p in pieces
            ),
        )


class MirroredPlanner(Planner):
    """Foreground mirroring shared by RAID-10 and chained declustering.

    ``serial`` commits the mirror copy after the primary completes
    (write-through, as the era's simple mirroring drivers did) instead
    of issuing both concurrently.
    """

    serial = False

    def _copy_sets(self, pieces: List[Piece]) -> Tuple[CopySet, ...]:
        lay = self.layout
        return tuple(
            CopySet(
                p.block,
                tuple(
                    c.disk
                    for c in [p.placement] + lay.redundancy_locations(p.block)
                ),
            )
            for p in pieces
        )

    def plan_write(
        self,
        pieces: List[Piece],
        failed: FailedSet,
        wctx: Optional[WriteContext] = None,
    ) -> object:
        lay = self.layout
        copies = self._copy_sets(pieces)
        if self.serial:
            # Primary wave first, mirror wave after it commits.
            waves = (
                tuple(self._data_write(p, tolerant=True) for p in pieces),
                tuple(
                    PieceOp(
                        "write", m.disk, m.offset + p.intra, p.nbytes,
                        kind="mirror", block=p.block, tolerant=True,
                    )
                    for p in pieces
                    for m in lay.redundancy_locations(p.block)
                ),
            )
            return SerialWrite(copies=copies, waves=waves)
        bursts = []
        for p in pieces:
            locs = [p.placement] + lay.redundancy_locations(p.block)
            bursts.append(
                MirroredPieceWrite(
                    block=p.block,
                    ops=tuple(
                        PieceOp(
                            "write", c.disk, c.offset + p.intra, p.nbytes,
                            kind="data" if i == 0 else "mirror",
                            block=p.block, tolerant=True,
                        )
                        for i, c in enumerate(locs)
                    ),
                )
            )
        return ParallelWrite(
            pieces=tuple(bursts), copies=copies, check_survivors=True
        )


class Raid10Planner(MirroredPlanner):
    arch = "raid10"
    serial = True


class ChainedPlanner(MirroredPlanner):
    arch = "chained"


class Raid5Planner(Planner):
    """Rotating parity: full-stripe vs. read-modify-write is decided
    here, per stripe, from the request shape alone."""

    arch = "raid5"

    def __init__(
        self,
        layout: Layout,
        full_stripe_optimization: bool = False,
        batch_rmw: bool = False,
    ):
        super().__init__(layout)
        self.full_stripe_optimization = full_stripe_optimization
        self.batch_rmw = batch_rmw

    def _by_stripe(self, pieces: List[Piece]) -> Dict[int, List[Piece]]:
        out: Dict[int, List[Piece]] = {}
        for p in pieces:
            out.setdefault(self.layout.stripe_of(p.block), []).append(p)
        return out

    def _is_full_stripe(self, stripe: int, spieces: List[Piece]) -> bool:
        want = set(self.layout.stripe_blocks(stripe))
        have = {
            p.block
            for p in spieces
            if p.intra == 0 and p.nbytes == self.layout.block_size
        }
        return want <= have

    def plan_write(
        self,
        pieces: List[Piece],
        failed: FailedSet,
        wctx: Optional[WriteContext] = None,
    ) -> object:
        lay = self.layout
        bs = lay.block_size
        stripes = []
        for stripe, spieces in self._by_stripe(pieces).items():
            ploc = lay.parity_location(stripe)  # type: ignore[attr-defined]
            if self.full_stripe_optimization and self._is_full_stripe(
                stripe, spieces
            ):
                # Full-stripe write: parity computed in memory, no reads.
                stripes.append(
                    StripeWrite(
                        stripe=stripe,
                        parity_disk=ploc.disk,
                        full_stripe=FullStripePass(
                            xor_bytes=len(spieces) * bs,
                            writes=tuple(
                                self._data_write(p) for p in spieces
                            ),
                            parity_write=PieceOp(
                                "write", ploc.disk, ploc.offset, bs,
                                kind="parity",
                            ),
                        ),
                    )
                )
                continue
            # Read-modify-write.  The faithful (default) mode updates
            # parity once per modified block, as the era's block-level
            # software RAID-5 drivers did; batch mode amortizes one
            # parity read/write over the whole request's stripe share.
            groups = (
                [spieces] if self.batch_rmw else [[p] for p in spieces]
            )
            absorbed = wctx.absorbed if wctx is not None else frozenset()
            passes = []
            for group in groups:
                modified = sum(p.nbytes for p in group)
                # Parity I/O covers the union of the modified intra-block
                # ranges (parity bytes pair with data bytes positionally).
                plo = min(p.intra for p in group)
                phi = max(p.intra + p.nbytes for p in group)
                passes.append(
                    RmwPass(
                        # RMW absorption: the buffer cache supplies the
                        # pre-write content of absorbed blocks, so their
                        # old-data pre-reads vanish; the parity read and
                        # both XOR passes are unchanged (the parity
                        # delta still needs computing either way).
                        reads=tuple(
                            PieceOp(
                                "read", p.disk, p.disk_offset, p.nbytes,
                                kind="data", block=p.block,
                            )
                            for p in group
                            if p.block not in absorbed
                        ),
                        parity_read=PieceOp(
                            "read", ploc.disk, ploc.offset + plo, phi - plo,
                            kind="parity",
                        ),
                        xor_bytes=modified,
                        writes=tuple(self._data_write(p) for p in group),
                        parity_write=PieceOp(
                            "write", ploc.disk, ploc.offset + plo, phi - plo,
                            kind="parity",
                        ),
                    )
                )
            stripes.append(
                StripeWrite(
                    stripe=stripe,
                    parity_disk=ploc.disk,
                    rmw_passes=tuple(passes),
                )
            )
        return ParityWrite(tuple(stripes))

    def plan_reconstruct(
        self, piece: Piece, failed: FailedSet
    ) -> ReconstructRead:
        """Rebuild a lost block from the surviving stripe + parity."""
        lay = self.layout
        stripe = lay.stripe_of(piece.block)
        bs = lay.block_size
        reads = []
        for b in lay.stripe_blocks(stripe):
            if b == piece.block:
                continue
            loc = lay.data_location(b)
            if loc.disk in failed:
                raise DataLossError(
                    f"stripe {stripe}: second failure at disk {loc.disk}"
                )
            reads.append(
                PieceOp(
                    "read", loc.disk, loc.offset, bs,
                    kind="reconstruct", block=b,
                )
            )
        ploc = lay.parity_location(stripe)  # type: ignore[attr-defined]
        if ploc.disk in failed:
            raise DataLossError(f"stripe {stripe}: parity disk also failed")
        reads.append(
            PieceOp("read", ploc.disk, ploc.offset, bs, kind="reconstruct")
        )
        # XOR all surviving blocks to regenerate the lost one.
        return ReconstructRead(reads=tuple(reads), xor_bytes=len(reads) * bs)


class RaidxPlanner(Planner):
    """RAID-x OSM: parallel tolerant foreground data writes plus
    clustered image extents tagged foreground or background."""

    arch = "raidx"

    def __init__(
        self,
        layout: Layout,
        mirror_policy: MirrorPolicy | str = MirrorPolicy.BACKGROUND,
        read_local_mirror: bool = False,
    ):
        super().__init__(layout)
        self.mirror_policy = MirrorPolicy.parse(mirror_policy)
        self.read_local_mirror = read_local_mirror

    # -- reads -------------------------------------------------------------
    def _image_clean(
        self, block: int, failed: FailedSet, dirty: AbstractSet[int]
    ) -> bool:
        mg = self.layout.mirror_group_of(block)  # type: ignore[attr-defined]
        return mg.image_disk not in failed and mg.group_id not in dirty

    def read_candidates(
        self, piece: Piece, failed: FailedSet, ctx: ReadContext
    ) -> Tuple[Tuple[Placement, ...], bool]:
        lay = self.layout
        primary = piece.placement
        mirror = lay.redundancy_locations(piece.block)[0]
        clean = self._image_clean(piece.block, failed, ctx.dirty_groups)
        if primary.disk not in failed:
            if self.read_local_mirror and clean:
                # Serve from a *local* image copy when the primary is
                # remote and the image sits on the reading node's disk.
                if (
                    lay.node_of_disk(primary.disk) != ctx.client
                    and lay.node_of_disk(mirror.disk) == ctx.client
                ):
                    return (mirror,), False
            if clean:
                return (primary, mirror), True
            return (primary,), False
        if not clean:
            return (), False  # image missing or not yet consistent
        return (mirror,), False

    # -- writes ------------------------------------------------------------
    def image_extents(self, pieces: List[Piece]) -> List[ImageExtent]:
        """Coalesce image fragments into clustered extents.

        Fragments of one mirror group are contiguous in image space, so
        a full group becomes a single long (n-1)-block extent — the
        paper's "image blocks gathered as a long block written into the
        same disk".
        """
        lay = self.layout
        bs = lay.block_size
        frags: List[Tuple[int, int, int, int]] = []
        for p in pieces:
            mg = lay.mirror_group_of(p.block)  # type: ignore[attr-defined]
            pos = mg.blocks.index(p.block)
            frags.append(
                (
                    mg.group_id,
                    mg.image_disk,
                    mg.image_offset + pos * bs + p.intra,
                    p.nbytes,
                )
            )
        frags.sort(key=lambda f: (f[1], f[2]))
        runs: List[Tuple[int, int, int, int]] = []
        for g, disk, off, n in frags:
            if runs and runs[-1][1] == disk and runs[-1][2] + runs[-1][3] == off:
                pg, pd, po, pn = runs[-1]
                runs[-1] = (pg, pd, po, pn + n)
            else:
                runs.append((g, disk, off, n))
        return [ImageExtent(g, d, o, n) for g, d, o, n in runs]

    def plan_write(
        self,
        pieces: List[Piece],
        failed: FailedSet,
        wctx: Optional[WriteContext] = None,
    ) -> object:
        return OrthogonalWrite(
            foreground=tuple(
                self._data_write(p, tolerant=True) for p in pieces
            ),
            extents=tuple(self.image_extents(pieces)),
            background=self.mirror_policy is MirrorPolicy.BACKGROUND,
        )


PLANNERS = {
    "raid0": Raid0Planner,
    "raid5": Raid5Planner,
    "raid10": Raid10Planner,
    "chained": ChainedPlanner,
    "raidx": RaidxPlanner,
}


def make_planner(name: str, layout: Layout, **opts) -> Planner:
    """Instantiate an architecture's planner over a layout."""
    try:
        cls = PLANNERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown planner {name!r}; choose from {sorted(PLANNERS)}"
        ) from None
    return cls(layout, **opts)


__all__ = [
    "ChainedPlanner",
    "MirroredPlanner",
    "PLANNERS",
    "Planner",
    "Raid0Planner",
    "Raid10Planner",
    "Raid5Planner",
    "RaidxPlanner",
    "make_planner",
]

"""Chained declustering (Hsiao & DeWitt 1990) — the paper's Fig. 1b.

Data stripes across all disks in the top half; disk ``d``'s blocks are
mirrored block-by-block on disk ``(d+1) mod D`` in the bottom half
("skewed mirroring").  Both copies are written in the foreground, so
writes cost two disk ops like RAID-10, but mirror *reads* spread over
all disks rather than pair partners, and a failure's extra load chains
around the ring.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.raid.layout import Layout, Placement


class ChainedDeclusteringLayout(Layout):
    """Striped data, mirror of disk d chained onto disk (d+1) mod D."""

    name = "chained"

    @property
    def data_rows(self) -> int:
        return self.rows // 2

    @property
    def data_blocks(self) -> int:
        return self.data_rows * self.n_disks

    @property
    def mirror_base(self) -> int:
        """Byte offset where the mirror region starts on every disk."""
        return self.data_rows * self.block_size

    def data_location(self, block: int) -> Placement:
        self.check_block(block)
        disk = block % self.n_disks
        row = block // self.n_disks
        return Placement(disk, row * self.block_size)

    def redundancy_locations(self, block: int) -> List[Placement]:
        self.check_block(block)
        disk = (block + 1) % self.n_disks
        row = block // self.n_disks
        return [Placement(disk, self.mirror_base + row * self.block_size)]

    def read_sources(self, block: int) -> List[Placement]:
        # Primary first: the skewed mirror copy lives in the far mirror
        # region, so routine reads stay on the sequential data region and
        # the mirror serves fail-over (and rebalancing after a failure).
        return [self.data_location(block)] + self.redundancy_locations(block)

    def stripe_of(self, block: int) -> int:
        self.check_block(block)
        return block // self.stripe_width

    def stripe_blocks(self, stripe: int) -> List[int]:
        start = stripe * self.stripe_width
        return [
            b
            for b in range(start, start + self.stripe_width)
            if b < self.data_blocks
        ]

    def tolerates(self, failed: Iterable[int]) -> bool:
        failed = set(failed)
        if len(failed) >= self.n_disks:
            return False
        # Data is lost iff two cyclically adjacent disks both fail.
        for d in failed:
            if (d + 1) % self.n_disks in failed:
                return False
        return True

    def max_fault_coverage(self) -> int:
        return self.n_disks // 2

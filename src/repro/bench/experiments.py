"""Canned experiment definitions — one per paper table/figure.

Each ``run_*`` function regenerates the rows/series of its artifact and
returns an :class:`~repro.bench.harness.ExperimentResult` (or a small
dataclass) that the ``benchmarks/`` scripts print and assert on.  The
experiment↔module map lives in DESIGN.md §4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.peak import ARCH_ORDER, FORMULAS, PeakModel, peak_table
from repro.analysis.report import render_series, render_table
from repro.analysis.scalability import improvement_factor
from repro.bench.harness import ExperimentResult, sweep
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.obs.load import collect_load
from repro.units import MB, MS
from repro.workloads.andrew import AndrewBenchmark, AndrewConfig, AndrewResult
from repro.workloads.parallel_io import (
    large_read,
    large_write,
    small_read,
    small_write,
)

#: The four storage subsystems of Figs. 5/6.
FIG_ARCHS = ("nfs", "raid5", "raid10", "raidx")
#: Client counts swept in Fig. 5 (the Trojans cluster had 12 nodes).
FIG5_CLIENTS = (1, 2, 4, 8, 12)
#: Client counts swept in Fig. 6 (up to 32 Andrew clients).
FIG6_CLIENTS = (1, 4, 8, 16, 32)

_WORKLOADS = {
    "large_read": large_read,
    "large_write": large_write,
    "small_read": small_read,
    "small_write": small_write,
}


def run_parallel_io(
    architecture: str,
    clients: int,
    workload: str,
    n: int = 12,
    k: int = 1,
    **kw,
):
    """Build one Fig.-5 measurement point; returns the (unrun) workload."""
    cluster = build_cluster(
        trojans_cluster(n=n, k=k), architecture=architecture
    )
    maker = _WORKLOADS[workload]
    return maker(cluster, clients, **kw)


def _fig5_point(architecture: str, clients: int, workload: str):
    """One Fig.-5 cell (module-level so parallel sweeps can pickle it)."""
    wl = run_parallel_io(architecture, clients, workload)
    r = wl.run()
    return {"mb_s": round(r.aggregate_bandwidth_mb_s, 2)}


def fig5_bandwidth(
    archs: Sequence[str] = FIG_ARCHS,
    client_counts: Sequence[int] = FIG5_CLIENTS,
    workloads: Sequence[str] = tuple(_WORKLOADS),
    workers: Optional[int] = None,
    cache: bool = True,
) -> ExperimentResult:
    """Fig. 5: aggregate bandwidth vs clients for each op × architecture.

    ``workers`` fans the grid points out over a process pool; the rows
    are identical to a serial run (see :func:`repro.bench.harness.sweep`).
    Rows are served from the content-addressed sweep cache when the
    simulator source is unchanged (``cache=False``, ``--no-cache``, or
    ``REPRO_BENCH_CACHE=0`` to disable).
    """
    return sweep(
        "fig5_bandwidth",
        _fig5_point,
        {
            "workload": list(workloads),
            "architecture": list(archs),
            "clients": list(client_counts),
        },
        workers=workers,
        cache=cache,
    )


def render_fig5(result: ExperimentResult) -> str:
    """Print Fig. 5 as four series tables (one per panel)."""
    chunks = []
    for wl in dict.fromkeys(result.column("workload")):
        sub = result.filter(workload=wl)
        series = sub.pivot("architecture", "clients", "mb_s")
        xs = sorted({r["clients"] for r in sub.rows})
        chunks.append(
            render_series(
                "clients",
                xs,
                {a: [series[a].get(x) for x in xs] for a in series},
                title=f"Fig.5 {wl} — aggregate MB/s",
            )
        )
    return "\n\n".join(chunks)


def table3_improvement(
    archs: Sequence[str] = FIG_ARCHS,
    endpoints: Sequence[int] = (1, 12),
) -> ExperimentResult:
    """Table 3: bandwidth at 1 and 12 clients + improvement factor."""
    lo, hi = endpoints
    result = ExperimentResult(
        "table3",
        ["architecture", "operation"],
        [f"bw_{lo}cl", f"bw_{hi}cl", "improvement"],
    )
    for arch in archs:
        for wl in ("large_read", "large_write", "small_write"):
            b_lo = run_parallel_io(arch, lo, wl).run()
            b_hi = run_parallel_io(arch, hi, wl).run()
            lo_bw = b_lo.aggregate_bandwidth_mb_s
            hi_bw = b_hi.aggregate_bandwidth_mb_s
            result.add(
                {"architecture": arch, "operation": wl},
                {
                    f"bw_{lo}cl": round(lo_bw, 2),
                    f"bw_{hi}cl": round(hi_bw, 2),
                    "improvement": round(
                        improvement_factor(lo_bw, hi_bw), 2
                    ),
                },
            )
    return result


def fig6_andrew(
    archs: Sequence[str] = FIG_ARCHS,
    client_counts: Sequence[int] = FIG6_CLIENTS,
    andrew_config: Optional[AndrewConfig] = None,
) -> ExperimentResult:
    """Fig. 6: Andrew benchmark per-phase elapsed times."""
    result = ExperimentResult(
        "fig6_andrew",
        ["architecture", "clients"],
        list(AndrewResult.PHASES) + ["total"],
    )
    for arch in archs:
        for ncl in client_counts:
            cluster = build_cluster(trojans_cluster(), architecture=arch)
            r = AndrewBenchmark(cluster, ncl, config=andrew_config).run()
            metrics = {
                p: round(r.phase_times[p], 3) for p in AndrewResult.PHASES
            }
            metrics["total"] = round(r.total, 3)
            result.add({"architecture": arch, "clients": ncl}, metrics)
    return result


def fig7_checkpoint(
    schemes: Sequence = (
        ("parallel", None),
        ("striped_staggered", 2),
        ("striped_staggered", 3),
        ("striped_staggered", 4),
        ("staggered", None),
    ),
    processes: int = 12,
    state_bytes: int = 8 * MB,
    n: int = 12,
    k: int = 1,
) -> ExperimentResult:
    """Fig. 7: checkpoint schedules — epoch time vs per-process overhead.

    Reproduces the C/S trade-off: parallel minimizes the epoch wall
    clock but stretches every process's own checkpoint write (C);
    staggering shortens C (writes run uncontended) at the price of
    waiting (S).  Also reports recovery times from the local mirror
    (transient) vs striped reads (permanent) on RAID-x.
    """
    from repro.checkpoint import CheckpointConfig, CheckpointRun, recover

    result = ExperimentResult(
        "fig7_checkpoint",
        ["scheme", "groups"],
        [
            "epoch_s",
            "sync_ms",
            "mean_C_s",
            "max_C_s",
            "agg_mb_s",
            "recov_transient_ms",
            "recov_permanent_ms",
        ],
    )
    for scheme, groups in schemes:
        cluster = build_cluster(
            trojans_cluster(n=n, k=k), architecture="raidx"
        )
        cfg = CheckpointConfig(
            processes=processes,
            state_bytes=state_bytes,
            scheme=scheme,
            stagger_groups=groups,
        )
        run = CheckpointRun(cluster, cfg)
        r = run.run()
        cluster.env.run(cluster.env.process(cluster.storage.drain()))
        writes = list(r.per_process_write.values())
        rec_t = recover(run, 1, "transient")
        rec_p = recover(run, 1, "permanent")
        result.add(
            {"scheme": scheme, "groups": groups or 1},
            {
                "epoch_s": round(r.total_time, 3),
                "sync_ms": round(r.sync_overhead / MS, 2),
                "mean_C_s": round(sum(writes) / len(writes), 3),
                "max_C_s": round(max(writes), 3),
                "agg_mb_s": round(r.aggregate_bandwidth_mb_s, 1),
                "recov_transient_ms": round(rec_t.elapsed / MS, 1),
                "recov_permanent_ms": round(rec_p.elapsed / MS, 1),
            },
        )
    return result


def table2_peak(
    n: int = 12,
    B: float = 10.0,
    m: int = 64,
    R: float = 3.2 * MS,
    W: float = 3.2 * MS,
) -> str:
    """Table 2: the closed-form model, values + formulas."""
    model = PeakModel(n=n, B=B, m=m, R=R, W=W)
    table = peak_table(model)
    indicators = list(next(iter(table.values())))
    rows = []
    for ind in indicators:
        row: List = [ind]
        for arch in ARCH_ORDER:
            row.append(f"{FORMULAS[arch][ind]} = {table[arch][ind]:.4g}")
        rows.append(row)
    return render_table(
        ["indicator"] + list(ARCH_ORDER),
        rows,
        title=f"Table 2 (n={n}, B={B} MB/s, m={m} blocks)",
    )


def fig1_layout_maps() -> str:
    """Fig. 1: OSM vs chained declustering placement over 4 disks."""
    from repro.raid import make_layout

    out = []
    for name in ("raidx", "chained"):
        lay = make_layout(
            name, n_disks=4, block_size=1, disk_capacity=8, stripe_width=4
        )
        lay.verify_invariants(lay.data_blocks)
        out.append(f"--- {name} (Fig. 1{'a' if name == 'raidx' else 'b'}) ---")
        out.append(lay.placement_map(12))
    return "\n".join(out)


def fig3_nk_map(n: int = 4, k: int = 3) -> str:
    """Fig. 3: the n×k orthogonal striping and mirroring array."""
    from repro.raid import make_layout

    lay = make_layout(
        "raidx",
        n_disks=n * k,
        block_size=1,
        disk_capacity=8,
        stripe_width=n,
    )
    lay.verify_invariants(lay.data_blocks)
    header = (
        f"Fig. 3: {n}x{k} RAID-x — stripe groups of {n} blocks, "
        f"images clustered per disk group"
    )
    return header + "\n" + lay.placement_map(2 * n * k)


def headline_claims() -> Dict[str, float]:
    """Conclusions' headline ratios, re-measured on the simulator.

    * parallel-read bandwidth of RAID-x vs RAID-5 and vs NFS (12 clients);
    * small-write bandwidth of RAID-x vs RAID-5 (12 clients);
    * Andrew total elapsed: RAID-x vs the RAID-5/RAID-10 mean.
    """
    lr = {
        a: run_parallel_io(a, 12, "large_read").run()
        .aggregate_bandwidth_mb_s
        for a in ("raidx", "raid5", "nfs")
    }
    sw = {
        a: run_parallel_io(a, 12, "small_write").run()
        .aggregate_bandwidth_mb_s
        for a in ("raidx", "raid5")
    }
    andrew = {}
    for a in ("raidx", "raid5", "raid10"):
        cluster = build_cluster(trojans_cluster(), architecture=a)
        andrew[a] = AndrewBenchmark(cluster, 8).run().total
    return {
        "read_vs_raid5": lr["raidx"] / lr["raid5"],
        "read_vs_nfs": lr["raidx"] / lr["nfs"],
        "small_write_vs_raid5": sw["raidx"] / sw["raid5"],
        "andrew_cut_vs_raid10": 1.0 - andrew["raidx"] / andrew["raid10"],
        "andrew_cut_vs_raid5": 1.0 - andrew["raidx"] / andrew["raid5"],
        "raidx_read_mb_s": lr["raidx"],
        "raidx_small_write_mb_s": sw["raidx"],
    }


#: Node counts swept by the scale experiment (clusters well past the
#: paper's 12-node Trojans testbed).
SCALE_NODES = (12, 64, 256)


def _scale_point(
    n_nodes: int,
    n_requests: int,
    seed: int,
    architecture: str = "raidx",
    rate_per_node: float = 8.0,
    op: str = "read",
    scenario: str = "poisson",
):
    """One open-loop scale shard — **simulation-deterministic** metrics.

    Returns only quantities that are a pure function of (point, seed):
    counts, simulated time, event totals, and the latency histogram
    payload.  Wall-clock throughput is measured by the callers that own
    timing (``benchmarks/bench_scale.py``, the scale-smoke test) so CI
    can compare two runs of this function byte for byte.

    The default scenario is the conflict-free regime the node
    fast-forward targets: local-placement reads at low per-node load on
    a healthy array, untraced.
    """
    from repro.workloads.openloop import OpenLoopWorkload

    cluster = build_cluster(
        trojans_cluster(n=n_nodes), architecture=architecture
    )
    wl = OpenLoopWorkload(
        cluster,
        rate_ops_per_s=rate_per_node * n_nodes,
        duration_s=None,
        n_requests=n_requests,
        op=op,
        scenario=scenario,
        placement="local",
        seed=seed,
    )
    r = wl.run()
    h = r.histogram
    return {
        "completed": r.completed,
        "failed": r.failed,
        "events": cluster.env.processed_events,
        "fast_submits": cluster.storage.engine.fast_submits,
        "fast_hits": cluster.storage.engine.fast_hits,
        "fast_fills": cluster.storage.engine.fast_fills,
        "phase_submits": cluster.storage.engine.phase_submits,
        "sim_s": r.duration_s,
        "mean_ms": r.mean_latency() * 1e3,
        "p50_ms": h.percentile(50) * 1e3,
        "p95_ms": h.percentile(95) * 1e3,
        "p99_ms": r.p99_latency() * 1e3,
        "hist": h.to_payload(),
        "load": collect_load(cluster).to_payload(),
    }


def reduce_scale_shards(shards: List[Dict]) -> Dict:
    """Fold per-seed shard rows into one scale-point row.

    Counts and event totals add; the merged histogram re-derives the
    latency quantiles over all shards' samples, and the per-shard load
    registries merge (counters add, histograms fold) so the reduced row
    carries cluster-wide utilization and its per-disk skew.
    Deterministic: shard rows arrive in seed order, so merged float
    totals are byte-identical for any worker count.
    """
    from repro.obs.load import utilization_skew
    from repro.obs.metrics import LogHistogram, MetricsRegistry

    hist = LogHistogram()
    load = MetricsRegistry()
    for s in shards:
        hist.merge(LogHistogram.from_payload(s["hist"]))
        load.merge(MetricsRegistry.from_payload(s["load"]))
    return {
        "completed": sum(s["completed"] for s in shards),
        "failed": sum(s["failed"] for s in shards),
        "events": sum(s["events"] for s in shards),
        "fast_submits": sum(s["fast_submits"] for s in shards),
        "fast_hits": sum(s.get("fast_hits", 0) for s in shards),
        "fast_fills": sum(s.get("fast_fills", 0) for s in shards),
        "phase_submits": sum(s.get("phase_submits", 0) for s in shards),
        "sim_s": sum(s["sim_s"] for s in shards),
        "mean_ms": hist.mean * 1e3,
        "p50_ms": hist.percentile(50) * 1e3,
        "p95_ms": hist.percentile(95) * 1e3,
        "p99_ms": hist.percentile(99) * 1e3,
        "util_skew": utilization_skew(load),
        "hist": hist.to_payload(),
        "load": load.to_payload(),
    }


def run_scale(
    node_counts: Sequence[int] = SCALE_NODES,
    n_requests: int = 1_000_000,
    shards: int = 4,
    workers: Optional[int] = None,
    cache: bool = True,
    base_seed: int = 0,
) -> ExperimentResult:
    """The scale sweep: open-loop latency at 12/64/256 nodes.

    ``n_requests`` is the total per scale point, split evenly over
    ``shards`` independent arrival-seed replicas (seed ``base_seed + i``
    for shard ``i``); ``workers`` fans the shards out over a process
    pool.  Every shard is cached individually, so interrupted or resumed
    sweeps re-simulate only the missing shards — and the reduced rows
    are identical for any worker count.
    """
    per_shard = max(1, n_requests // max(1, shards))
    return sweep(
        "scale_openloop",
        _scale_point,
        {"n_nodes": list(node_counts), "n_requests": [per_shard]},
        workers=workers,
        cache=cache,
        replicas=max(1, shards),
        seed_key="seed",
        base_seed=base_seed,
        reduce=reduce_scale_shards,
    )


def render_scale(result: ExperimentResult) -> str:
    """The scale sweep as a table (histogram/load payloads elided)."""
    headers = [
        "n_nodes", "completed", "failed", "fast_submits", "phase_submits",
        "events", "sim_s", "p50_ms", "p95_ms", "p99_ms", "util_skew",
    ]
    rows = []
    for r in result.rows:
        row = dict(r)
        row["sim_s"] = round(row["sim_s"], 2)
        for k in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            if k in row:
                row[k] = round(row[k], 3)
        if "util_skew" in row:
            row["util_skew"] = round(row["util_skew"], 4)
        rows.append([row.get(h) for h in headers])
    return render_table(
        headers, rows, title="Scale sweep — open-loop local reads"
    )


def scale_report(
    workers: Optional[int] = None,
    shards: int = 4,
    sample_rate: float = 0.05,
    sample_seed: int = 0,
    n_requests: int = 1_000_000,
    node_counts: Sequence[int] = SCALE_NODES,
) -> Dict:
    """Artifact ``report``: the merged-telemetry health summary.

    Three sections, all from data the observability plane already
    collects at scale:

    * per-scale-point latency quantiles from the shard-merged
      log-histograms (exact counts, ±9% bucketed quantiles);
    * per-disk utilization spread and queue-depth high-water from the
      shard-merged load registries — the balance check for RAID-x's
      orthogonal striping (``skew`` is max/mean utilization);
    * span-based bottleneck attribution from a deterministically
      *sampled* trace (rate ``sample_rate``) of one 12-node point —
      demonstrating that a thin coherent sample supports the same
      per-class attribution as a full trace;
    * per-node buffer-cache hit ratios from one cache-enabled
      Zipf-hotspot point — the ratios are derived at report time from
      the shard-mergeable ``load.nodeN.cache.*`` counters.
    """
    from repro.analysis.bottleneck import bottleneck, usage_table
    from repro.cache import CacheConfig
    from repro.obs import runtime as obs_runtime
    from repro.obs.load import (
        CACHE_DIRTY_HW,
        QUEUE_DEPTH_HW,
        cache_hit_ratios,
        disk_utilizations,
        utilization_skew,
    )
    from repro.obs.metrics import MetricsRegistry
    from repro.workloads.openloop import OpenLoopWorkload

    result = run_scale(
        node_counts=node_counts,
        n_requests=n_requests,
        workers=workers,
        shards=shards,
    )
    points = []
    for row in result.rows:
        load = MetricsRegistry.from_payload(row["load"])
        utils = sorted(disk_utilizations(load).values())
        qd = load.histogram(QUEUE_DEPTH_HW)
        points.append(
            {
                "n_nodes": row["n_nodes"],
                "completed": row["completed"],
                "failed": row["failed"],
                "fast_submits": row["fast_submits"],
                "phase_submits": row["phase_submits"],
                "latency_ms": {
                    "mean": row["mean_ms"],
                    "p50": row["p50_ms"],
                    "p95": row["p95_ms"],
                    "p99": row["p99_ms"],
                },
                "disk_util": {
                    "min": utils[0] if utils else None,
                    "mean": sum(utils) / len(utils) if utils else None,
                    "max": utils[-1] if utils else None,
                    "skew": utilization_skew(load),
                },
                "queue_depth_hw": {"max": qd.max, "p95": qd.percentile(95)},
            }
        )
    with obs_runtime.tracing(
        sample_rate=sample_rate, sample_seed=sample_seed
    ) as tracer:
        cluster = build_cluster(trojans_cluster(n=12), architecture="raidx")
        OpenLoopWorkload(
            cluster,
            rate_ops_per_s=96.0,
            duration_s=None,
            n_requests=4000,
            op="read",
            scenario="poisson",
            placement="local",
            seed=0,
        ).run()
        bn = bottleneck(cluster, tracer.spans)
        attribution = {
            "sample_rate": sample_rate,
            "sample_seed": sample_seed,
            "n_spans": len(tracer),
            "usage": usage_table(cluster, tracer.spans),
            "bottleneck": {
                "name": bn.name,
                "mean": round(bn.mean, 3),
                "peak": round(bn.peak, 3),
            },
        }
    cache_cfg = CacheConfig(capacity_blocks=512)
    cluster = build_cluster(
        trojans_cluster(n=12), architecture="raidx", cache=cache_cfg
    )
    OpenLoopWorkload(
        cluster,
        rate_ops_per_s=96.0,
        duration_s=None,
        n_requests=4000,
        op="read",
        scenario="zipf",
        placement="local",
        seed=0,
    ).run()
    cluster.env.run(cluster.env.process(cluster.storage.drain()))
    load = collect_load(cluster)
    stage = cluster.storage.engine.cache
    engine = cluster.storage.engine
    submits = engine.fast_submits + engine.phase_submits
    cache = {
        "capacity_blocks": cache_cfg.capacity_blocks,
        "policy": cache_cfg.policy,
        "hit_ratio_per_node": {
            str(node): round(ratio, 4)
            for node, ratio in sorted(cache_hit_ratios(load).items())
        },
        "dirty_hw": (
            int(load.histogram(CACHE_DIRTY_HW).max) if stage else 0
        ),
        # Fast-submit effectiveness with the cache attached: how many
        # requests the closed form served, split hit vs clean fill.
        "fast_path": {
            "fast_submits": engine.fast_submits,
            "fast_hits": engine.fast_hits,
            "fast_fills": engine.fast_fills,
            "phase_submits": engine.phase_submits,
            "ff_fraction": (
                round(engine.fast_submits / submits, 4) if submits else 0.0
            ),
        },
    }
    return {"points": points, "attribution": attribution, "cache": cache}


def render_report(data: Dict) -> str:
    """The ``report`` artifact as aligned text tables."""
    rows = []
    for p in data["points"]:
        lat, util, qd = p["latency_ms"], p["disk_util"], p["queue_depth_hw"]
        rows.append(
            [
                p["n_nodes"],
                p["completed"],
                p["failed"],
                p["fast_submits"],
                p.get("phase_submits"),
                round(lat["p50"], 3),
                round(lat["p95"], 3),
                round(lat["p99"], 3),
                round(util["mean"], 4) if util["mean"] is not None else None,
                round(util["skew"], 4),
                int(qd["max"]),
            ]
        )
    table = render_table(
        [
            "n_nodes", "completed", "failed", "fast", "phase", "p50_ms",
            "p95_ms", "p99_ms", "disk_util", "util_skew", "qd_hw",
        ],
        rows,
        title="Observability report — shard-merged scale telemetry",
    )
    attr = data["attribution"]
    lines = [
        table,
        "",
        f"Bottleneck attribution (12-node RAID-x point, "
        f"sampled trace @ rate={attr['sample_rate']}, "
        f"seed={attr['sample_seed']}, {attr['n_spans']} spans):",
    ]
    for name, u in attr["usage"].items():
        lines.append(
            f"  {name:16s} mean={u['mean']:6.3f}  peak={u['peak']:6.3f}"
        )
    bn = attr["bottleneck"]
    lines.append(
        f"  -> bottleneck: {bn['name']} (peak {bn['peak']:.3f})"
    )
    cache = data.get("cache")
    if cache:
        lines.append("")
        lines.append(
            f"Buffer cache (12-node RAID-x, Zipf hot-spot reads, "
            f"{cache['capacity_blocks']} blocks/node, "
            f"{cache['policy']}):"
        )
        for node, ratio in cache["hit_ratio_per_node"].items():
            lines.append(f"  node{node:>3s}  hit_ratio={ratio:6.4f}")
        if not cache["hit_ratio_per_node"]:
            lines.append("  (cache disabled — REPRO_CACHE=0)")
        fp = cache.get("fast_path")
        if fp:
            lines.append(
                f"  fast path: {fp['fast_submits']} closed-form "
                f"({fp['fast_hits']} hits + {fp['fast_fills']} fills) "
                f"vs {fp['phase_submits']} phase "
                f"— ff_fraction={fp['ff_fraction']:.4f}"
            )
    return "\n".join(lines)


def trace_demo(
    archs: Sequence[str] = ("raidx", "raid5"),
    clients: int = 4,
    n: int = 4,
) -> str:
    """Write-path trace comparison (artifact ``tr``).

    Runs a barrier-synchronized small-write burst on each architecture
    under one tracer — the architecture name labels the tracks, so a
    RAID-x write path sits next to RAID-5's in the same Perfetto view —
    then drains RAID-x's background image flushes so the deferred
    mirror-flush spans land too.  Renders the per-layer latency
    histograms; with ``python -m repro.bench tr --trace out.json`` the
    recorded spans are also exported as a Chrome/Perfetto trace.
    """
    from repro.obs import runtime as _obs

    tracer = _obs.TRACER
    temporary = not tracer.enabled
    if temporary:
        tracer = _obs.install()
    lines = []
    try:
        for arch in archs:
            tracer.label = arch
            before = len(tracer)
            cluster = build_cluster(
                trojans_cluster(n=n, k=1), architecture=arch, locking=True
            )
            result = _WORKLOADS["small_write"](
                cluster, clients, repeats=4, queue_depth=2
            ).run()
            cluster.env.run(cluster.env.process(cluster.storage.drain()))
            lines.append(
                f"  {arch:8s} {result.aggregate_bandwidth_mb_s:7.2f} MB/s"
                f"   spans={len(tracer) - before}"
            )
    finally:
        tracer.label = ""
        if temporary:
            _obs.reset()
    head = (
        f"Write-path trace: {clients} clients x 4 x 32 KiB writes, "
        f"{n}x1 array, locking on\n" + "\n".join(lines)
    )
    return head + "\n\n" + tracer.metrics.render(
        "Per-layer latency (histograms) and counters"
    )

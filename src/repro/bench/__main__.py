"""Regenerate the paper's artifacts from the command line.

Usage::

    python -m repro.bench            # everything
    python -m repro.bench t2 f5 f7   # selected artifacts
    python -m repro.bench --list

This is the pytest-free path to the same experiments the
``benchmarks/`` suite runs (the suite additionally asserts the shapes).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments as ex


def _fig5(workers=None, **kw):
    return ex.render_fig5(ex.fig5_bandwidth(workers=workers))


def _table3(workers=None, **kw):
    return ex.table3_improvement().render(
        "Table 3 — bandwidth and improvement factors"
    )


def _fig6(workers=None, **kw):
    return ex.fig6_andrew().render("Figure 6 — Andrew benchmark (seconds)")


def _fig7(workers=None, **kw):
    return ex.fig7_checkpoint().render(
        "Figure 7 — checkpoint schedules on RAID-x"
    )


def _headline(workers=None, **kw):
    claims = ex.headline_claims()
    lines = [f"  {k:26s} {v:.3f}" for k, v in claims.items()]
    return "Headline claims (measured):\n" + "\n".join(lines)


def _scale(workers=None, shards=None, requests=None, **kw):
    return ex.render_scale(
        ex.run_scale(
            workers=workers,
            shards=shards or 4,
            n_requests=requests or 1_000_000,
        )
    )


def _report(workers=None, shards=None, requests=None, as_json=False,
            sample_rate=None, sample_seed=0, **kw):
    import json

    data = ex.scale_report(
        workers=workers,
        shards=shards or 4,
        n_requests=requests or 1_000_000,
        sample_rate=0.05 if sample_rate is None else sample_rate,
        sample_seed=sample_seed,
    )
    if as_json:
        return json.dumps(data, indent=2, sort_keys=True)
    return ex.render_report(data)


ARTIFACTS = {
    "t2": (
        "Table 2 (analytical peak performance)",
        lambda workers=None, **kw: ex.table2_peak(),
    ),
    "f1": (
        "Figure 1 (mirroring schemes)",
        lambda workers=None, **kw: ex.fig1_layout_maps(),
    ),
    "f3": (
        "Figure 3 (4x3 array)",
        lambda workers=None, **kw: ex.fig3_nk_map(),
    ),
    "f5": ("Figure 5 (bandwidth vs clients)", _fig5),
    "t3": ("Table 3 (improvement factors)", _table3),
    "f6": ("Figure 6 (Andrew benchmark)", _fig6),
    "f7": ("Figure 7 (checkpointing)", _fig7),
    "c1": ("Conclusions' headline ratios", _headline),
    "tr": (
        "Write-path trace demo (RAID-x vs RAID-5)",
        lambda workers=None, **kw: ex.trace_demo(),
    ),
    "sc": ("Scale sweep (open-loop, 10^6 requests)", _scale),
    "report": (
        "Observability report (merged telemetry + bottleneck)", _report
    ),
}

#: Artifacts excluded from the run-everything default (the report
#: re-reduces the ``sc`` sweep, so running both would be redundant).
_ON_REQUEST = ("report",)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the RAID-x paper's tables and figures "
        "on the simulator.",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar="ID",
        help=f"artifact ids to run (default: all): {', '.join(ARTIFACTS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list artifact ids and exit"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan parameter sweeps out over N worker processes "
        "(results are identical to a serial run; used by f5 and sc)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="split each scale point (sc) into N independent arrival-seed "
        "replicas, cached and pooled individually (default: 4); the "
        "reduced rows are identical for any worker count",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="total requests per scale point for the sc/report "
        "artifacts (default: 1,000,000); reduce for quick looks",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="record request spans while the artifacts run and write a "
        "Chrome trace-event file (open in Perfetto / chrome://tracing); "
        "with no artifact ids, runs the 'tr' trace demo",
    )
    parser.add_argument(
        "--jsonl",
        metavar="OUT.jsonl",
        default=None,
        help="also dump the raw spans as JSON lines (one span per line)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the cluster-wide metrics registry (per-layer latency "
        "histograms and counters) after the artifacts complete",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text tables "
        "(currently honoured by the 'report' artifact)",
    )
    parser.add_argument(
        "--sample-rate",
        type=float,
        default=None,
        metavar="R",
        help="deterministic trace sampling rate in [0, 1] for --trace/"
        "--jsonl/--metrics runs (default 1.0: keep every trace); "
        "sampled-out requests still feed all histograms and counters",
    )
    parser.add_argument(
        "--sample-seed",
        type=int,
        default=0,
        metavar="S",
        help="seed for the per-trace sampling hash (same seed + rate "
        "=> same keep/drop decisions in every process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the content-addressed sweep cache (.bench_cache/) "
        "and re-simulate every row",
    )
    parser.add_argument(
        "--profile",
        metavar="OUT.pstats",
        default=None,
        help="run the selected artifacts under cProfile and write a "
        "pstats file (inspect with: python -m pstats OUT.pstats)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key, (title, _fn) in ARTIFACTS.items():
            print(f"  {key:4s} {title}")
        return 0

    observing = bool(args.trace or args.jsonl or args.metrics)
    default = (
        ["tr"]
        if observing and not args.artifacts
        else [a for a in ARTIFACTS if a not in _ON_REQUEST]
    )
    chosen = args.artifacts or default
    unknown = [a for a in chosen if a not in ARTIFACTS]
    if unknown:
        parser.error(f"unknown artifact ids: {unknown}")

    if args.no_cache:
        from repro.bench import cache as bench_cache

        bench_cache.set_enabled(False)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    tracer = None
    if observing:
        from repro.obs import runtime as obs_runtime

        tracer = obs_runtime.install(
            sample_rate=(
                1.0 if args.sample_rate is None else args.sample_rate
            ),
            sample_seed=args.sample_seed,
        )
    try:
        if profiler is not None:
            profiler.enable()
        for key in chosen:
            title, fn = ARTIFACTS[key]
            bar = "=" * max(24, len(title) + 8)
            print(f"\n{bar}\n    {key.upper()} — {title}\n{bar}")
            t0 = time.perf_counter()
            print(fn(
                workers=args.workers,
                shards=args.shards,
                requests=args.requests,
                as_json=args.json,
                sample_rate=args.sample_rate,
                sample_seed=args.sample_seed,
            ))
            print(f"[{key}: regenerated in {time.perf_counter() - t0:.1f}s]")
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(f"\n[profile: pstats -> {args.profile}]")
        if tracer is not None:
            from repro.obs import runtime as obs_runtime
            from repro.obs.export import write_chrome_trace, write_jsonl

            obs_runtime.reset()
            if args.trace:
                write_chrome_trace(tracer.spans, args.trace)
                print(f"\n[trace: {len(tracer)} spans -> {args.trace}]")
            if args.jsonl:
                n = write_jsonl(tracer.spans, args.jsonl)
                print(f"[spans: {n} -> {args.jsonl}]")
            if args.metrics:
                print()
                print(tracer.metrics.render("Cluster-wide metrics"))
    return 0


if __name__ == "__main__":
    sys.exit(main())

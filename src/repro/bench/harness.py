"""Generic experiment runner: parameter sweeps with tabular results."""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.report import render_table


@dataclass
class ExperimentResult:
    """Rows of (params, metrics) from one sweep."""

    name: str
    param_names: List[str]
    metric_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, params: Dict[str, Any], metrics: Dict[str, Any]) -> None:
        overlap = set(params) & set(metrics)
        if overlap:
            raise ValueError(f"param/metric name clash: {sorted(overlap)}")
        self.rows.append({**params, **metrics})

    def column(self, name: str) -> List[Any]:
        return [r[name] for r in self.rows]

    def filter(self, **match) -> "ExperimentResult":
        """Rows matching all the given param values."""
        out = ExperimentResult(
            self.name, self.param_names, self.metric_names
        )
        out.rows = [
            r
            for r in self.rows
            if all(r.get(k) == v for k, v in match.items())
        ]
        return out

    def pivot(self, row_key: str, col_key: str, value: str) -> Dict:
        """{row_value: {col_value: metric}} for quick series extraction."""
        out: Dict[Any, Dict[Any, Any]] = {}
        for r in self.rows:
            out.setdefault(r[row_key], {})[r[col_key]] = r[value]
        return out

    def render(self, title: str = "") -> str:
        headers = self.param_names + self.metric_names
        rows = [[r.get(h) for h in headers] for r in self.rows]
        return render_table(headers, rows, title=title or self.name)


def _call_point(fn: Callable[..., Dict[str, Any]], point: Dict[str, Any]):
    """Top-level trampoline so worker processes can unpickle the call."""
    return fn(**point)


def sweep(
    name: str,
    fn: Callable[..., Dict[str, Any]],
    grid: Dict[str, Sequence[Any]],
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run ``fn(**point)`` over the cartesian product of ``grid``.

    ``fn`` returns a metrics dict; metric names are taken from the first
    point's result, and every later point must return exactly the same
    keys — a mismatch raises instead of leaving silent ``None`` cells in
    the rendered table.

    With ``workers`` > 1 the points run concurrently in a process pool
    (each simulation point is independent; the sim itself is serial).
    Rows are always appended in grid order, so the result — including
    every metric value — is identical to a serial run.  ``fn`` must be
    picklable (a module-level function) in that case.
    """
    names = list(grid)
    points = [
        dict(zip(names, values))
        for values in itertools.product(*(grid[k] for k in names))
    ]
    if not points:
        raise ValueError("empty parameter grid")

    result: ExperimentResult | None = None

    def consume(metrics_iter) -> None:
        nonlocal result
        for point, metrics in zip(points, metrics_iter):
            if result is None:
                result = ExperimentResult(name, names, list(metrics))
            elif set(metrics) != set(result.metric_names):
                raise ValueError(
                    f"sweep {name!r}: point {point} returned metric keys "
                    f"{sorted(metrics)}, expected "
                    f"{sorted(result.metric_names)}"
                )
            result.add(point, metrics)

    if workers is not None and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            consume(pool.map(_call_point, itertools.repeat(fn), points))
    else:
        consume(fn(**point) for point in points)
    return result

"""Generic experiment runner: parameter sweeps with tabular results."""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.report import render_table
from repro.bench.cache import SweepCache, resolve as _resolve_cache

#: Chunks handed to each pool worker per map: a handful per worker
#: balances IPC batching against tail imbalance from uneven points.
_CHUNKS_PER_WORKER = 4


@dataclass
class ExperimentResult:
    """Rows of (params, metrics) from one sweep."""

    name: str
    param_names: List[str]
    metric_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, params: Dict[str, Any], metrics: Dict[str, Any]) -> None:
        overlap = set(params) & set(metrics)
        if overlap:
            raise ValueError(f"param/metric name clash: {sorted(overlap)}")
        self.rows.append({**params, **metrics})

    def column(self, name: str) -> List[Any]:
        return [r[name] for r in self.rows]

    def filter(self, **match) -> "ExperimentResult":
        """Rows matching all the given param values."""
        out = ExperimentResult(
            self.name, self.param_names, self.metric_names
        )
        out.rows = [
            r
            for r in self.rows
            if all(r.get(k) == v for k, v in match.items())
        ]
        return out

    def pivot(self, row_key: str, col_key: str, value: str) -> Dict:
        """{row_value: {col_value: metric}} for quick series extraction."""
        out: Dict[Any, Dict[Any, Any]] = {}
        for r in self.rows:
            out.setdefault(r[row_key], {})[r[col_key]] = r[value]
        return out

    def render(self, title: str = "") -> str:
        headers = self.param_names + self.metric_names
        rows = [[r.get(h) for h in headers] for r in self.rows]
        return render_table(headers, rows, title=title or self.name)


def _call_point(fn: Callable[..., Dict[str, Any]], point: Dict[str, Any]):
    """Top-level trampoline so worker processes can unpickle the call."""
    return fn(**point)


def plan_shards(
    points: List[Dict[str, Any]],
    replicas: int,
    seed_key: str,
    base_seed: int,
) -> List[Dict[str, Any]]:
    """Expand grid points into per-replica shard points.

    Each grid point (an independent cluster instance) becomes
    ``replicas`` shards differing only in ``seed_key`` — independent
    arrival-seed streams whose results are reduced back into one row.
    Shard order is grid-major, replica-minor, so shard ``i`` of point
    ``p`` is always ``p * replicas + i`` regardless of worker count.
    """
    return [
        {**p, seed_key: base_seed + r}
        for p in points
        for r in range(replicas)
    ]


def _run_points(
    name: str,
    fn: Callable[..., Dict[str, Any]],
    points: List[Dict[str, Any]],
    workers: Optional[int],
    sc: Optional[SweepCache],
) -> List[Dict[str, Any]]:
    """Compute metrics for each point, in order, via cache then pool."""
    rows: Dict[int, Dict[str, Any]] = {}
    keys: List[str] = []
    if sc is not None:
        keys = [sc.key(name, fn, p) for p in points]
        for i, k in enumerate(keys):
            hit = sc.get(k)
            if hit is not None:
                rows[i] = hit
    misses = [i for i in range(len(points)) if i not in rows]

    if misses:
        miss_points = [points[i] for i in misses]
        if workers is not None and workers > 1:
            chunksize = -(-len(miss_points) // (workers * _CHUNKS_PER_WORKER))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                computed = list(
                    pool.map(
                        _call_point,
                        itertools.repeat(fn),
                        miss_points,
                        chunksize=max(1, chunksize),
                    )
                )
        else:
            computed = [fn(**p) for p in miss_points]
        for i, metrics in zip(misses, computed):
            rows[i] = metrics
            if sc is not None:
                sc.put(keys[i], name, points[i], metrics)
    return [rows[i] for i in range(len(points))]


def sweep(
    name: str,
    fn: Callable[..., Dict[str, Any]],
    grid: Dict[str, Sequence[Any]],
    workers: Optional[int] = None,
    cache: Union[None, bool, SweepCache] = None,
    replicas: int = 1,
    seed_key: str = "seed",
    base_seed: int = 0,
    reduce: Optional[
        Callable[[List[Dict[str, Any]]], Dict[str, Any]]
    ] = None,
) -> ExperimentResult:
    """Run ``fn(**point)`` over the cartesian product of ``grid``.

    ``fn`` returns a metrics dict; metric names are taken from the first
    point's result, and every later point must return exactly the same
    keys — a mismatch raises instead of leaving silent ``None`` cells in
    the rendered table.

    With ``workers`` > 1 the points run concurrently in a process pool
    (each simulation point is independent; the sim itself is serial),
    submitted in chunks to amortize IPC overhead.  Rows are always
    appended in grid order, so the result — including every metric
    value — is identical to a serial run.  ``fn`` must be picklable (a
    module-level function) in that case.

    ``replicas`` > 1 shards every grid point into that many independent
    runs differing only in ``fn``'s ``seed_key`` argument (seeds
    ``base_seed .. base_seed+replicas-1``, see :func:`plan_shards`);
    ``reduce`` folds the per-shard metric dicts (in seed order) back
    into the point's single row.  Shards are cached and pooled
    individually, so a resumed sweep re-simulates only missing shards
    and a replica count bump only the new seeds.

    ``cache=True`` (or a :class:`~repro.bench.cache.SweepCache`) skips
    any point whose row is already stored under a matching
    (point, experiment, source-fingerprint) key and simulates only the
    misses; see :mod:`repro.bench.cache`.  Default: no caching.
    """
    names = list(grid)
    points = [
        dict(zip(names, values))
        for values in itertools.product(*(grid[k] for k in names))
    ]
    if not points:
        raise ValueError("empty parameter grid")
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if replicas > 1:
        if reduce is None:
            raise ValueError("replicas > 1 needs a reduce function")
        if any(seed_key in p for p in points):
            raise ValueError(
                f"grid already contains the seed key {seed_key!r}"
            )

    sc = _resolve_cache(cache)
    shard_points = (
        plan_shards(points, replicas, seed_key, base_seed)
        if replicas > 1
        else points
    )
    shard_rows = _run_points(name, fn, shard_points, workers, sc)
    if replicas > 1:
        row_list = [
            reduce(shard_rows[i * replicas: (i + 1) * replicas])
            for i in range(len(points))
        ]
    else:
        row_list = shard_rows

    result: ExperimentResult | None = None
    for point, metrics in zip(points, row_list):
        if result is None:
            result = ExperimentResult(name, names, list(metrics))
        elif set(metrics) != set(result.metric_names):
            raise ValueError(
                f"sweep {name!r}: point {point} returned metric keys "
                f"{sorted(metrics)}, expected "
                f"{sorted(result.metric_names)}"
            )
        result.add(point, metrics)
    return result

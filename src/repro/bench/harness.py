"""Generic experiment runner: parameter sweeps with tabular results."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.analysis.report import render_table


@dataclass
class ExperimentResult:
    """Rows of (params, metrics) from one sweep."""

    name: str
    param_names: List[str]
    metric_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, params: Dict[str, Any], metrics: Dict[str, Any]) -> None:
        overlap = set(params) & set(metrics)
        if overlap:
            raise ValueError(f"param/metric name clash: {sorted(overlap)}")
        self.rows.append({**params, **metrics})

    def column(self, name: str) -> List[Any]:
        return [r[name] for r in self.rows]

    def filter(self, **match) -> "ExperimentResult":
        """Rows matching all the given param values."""
        out = ExperimentResult(
            self.name, self.param_names, self.metric_names
        )
        out.rows = [
            r
            for r in self.rows
            if all(r.get(k) == v for k, v in match.items())
        ]
        return out

    def pivot(self, row_key: str, col_key: str, value: str) -> Dict:
        """{row_value: {col_value: metric}} for quick series extraction."""
        out: Dict[Any, Dict[Any, Any]] = {}
        for r in self.rows:
            out.setdefault(r[row_key], {})[r[col_key]] = r[value]
        return out

    def render(self, title: str = "") -> str:
        headers = self.param_names + self.metric_names
        rows = [[r.get(h) for h in headers] for r in self.rows]
        return render_table(headers, rows, title=title or self.name)


def sweep(
    name: str,
    fn: Callable[..., Dict[str, Any]],
    grid: Dict[str, Sequence[Any]],
) -> ExperimentResult:
    """Run ``fn(**point)`` over the cartesian product of ``grid``.

    ``fn`` returns a metrics dict; metric names are taken from the first
    point's result.
    """
    names = list(grid)
    result: ExperimentResult | None = None
    for values in itertools.product(*(grid[k] for k in names)):
        point = dict(zip(names, values))
        metrics = fn(**point)
        if result is None:
            result = ExperimentResult(name, names, list(metrics))
        result.add(point, metrics)
    if result is None:
        raise ValueError("empty parameter grid")
    return result

"""Content-addressed cache for sweep result rows.

A cache entry's key is the SHA-256 of a canonical JSON document
describing everything the row depends on:

* the canonical config point (the sweep's kwargs for that row),
* the experiment name and the point function's qualified name,
* a fingerprint of the simulator source (every ``*.py`` under
  ``src/repro``, path and contents).

Because the simulator is deterministic (CI pins this), a row is a pure
function of that key: re-running an unchanged figure script does zero
simulations, and editing any source file invalidates every entry at
once — stale results cannot survive a code change.  Entries live as
small JSON files under ``.bench_cache/`` (gitignored); a corrupted or
truncated file is treated as a miss and overwritten.

The cache is opt-in per :func:`repro.bench.harness.sweep` call
(``cache=True`` or a :class:`SweepCache` instance).  ``REPRO_BENCH_CACHE=0``
or ``--no-cache`` on ``python -m repro.bench`` disables the default-on
call sites (explicitly passed instances are honoured regardless).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Optional

#: Default cache directory, relative to the working directory (override
#: with ``REPRO_BENCH_CACHE_DIR``).
DEFAULT_DIR = ".bench_cache"

#: Set by ``--no-cache`` (see repro.bench.__main__): turns ``cache=True``
#: call sites into no-cache runs without threading a flag everywhere.
_cli_disabled = False

_fingerprints: Dict[str, str] = {}


def set_enabled(flag: bool) -> None:
    """Process-wide switch for default-on (``cache=True``) call sites."""
    global _cli_disabled
    _cli_disabled = not flag


def default_enabled() -> bool:
    """Whether ``cache=True`` call sites should actually cache."""
    if _cli_disabled:
        return False
    return os.environ.get("REPRO_BENCH_CACHE", "1").lower() not in (
        "0",
        "off",
        "no",
        "false",
    )


def code_fingerprint(root: Optional[Path] = None) -> str:
    """SHA-256 over every ``*.py`` under the simulator source tree.

    Hashes relative paths and file contents in sorted order, so any
    edit — including adding or deleting a module — changes the digest.
    Memoized per root: a sweep of hundreds of points hashes the tree
    once.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root)
    key = str(root)
    cached = _fingerprints.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    fp = _fingerprints[key] = digest.hexdigest()
    return fp


class SweepCache:
    """Content-addressed store of sweep rows under ``root``.

    ``hits``/``misses``/``stores`` count lookups for tests and for the
    zero-simulation acceptance check.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        fingerprint: Optional[str] = None,
    ):
        if root is None:
            root = Path(os.environ.get("REPRO_BENCH_CACHE_DIR", DEFAULT_DIR))
        self.root = Path(root)
        self.fingerprint = (
            code_fingerprint() if fingerprint is None else fingerprint
        )
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(
        self,
        experiment: str,
        fn: Callable[..., Dict[str, Any]],
        point: Dict[str, Any],
    ) -> str:
        """Cache key for one row: config point + experiment + code."""
        doc = json.dumps(
            {
                "experiment": experiment,
                "fn": f"{getattr(fn, '__module__', '?')}."
                f"{getattr(fn, '__qualname__', '?')}",
                "point": point,
                "src": self.fingerprint,
            },
            sort_keys=True,
            default=repr,  # non-JSON param values hash by repr
        )
        return hashlib.sha256(doc.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Stored metrics for ``key``, or None (missing/corrupted)."""
        try:
            raw = self._path(key).read_text()
            doc = json.loads(raw)
            metrics = doc["metrics"]
            if not isinstance(metrics, dict):
                raise TypeError("metrics is not a dict")
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, truncated, or hand-mangled entry: recompute (the
            # store() after the miss overwrites the bad file).
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def put(
        self,
        key: str,
        experiment: str,
        point: Dict[str, Any],
        metrics: Dict[str, Any],
    ) -> None:
        """Store one row; silently skips non-JSON-roundtrippable metrics.

        Only metrics that survive a JSON roundtrip unchanged are cached
        (floats and ints roundtrip exactly; a tuple would come back as a
        list), so a later hit returns byte-identical rows.
        """
        try:
            payload = json.dumps(
                {"experiment": experiment, "point": point, "metrics": metrics},
                sort_keys=True,
                default=None,
            )
            if json.loads(payload)["metrics"] != metrics:
                return
        except (TypeError, ValueError):
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a concurrent reader never sees a torn file.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(payload)
        os.replace(tmp, path)
        self.stores += 1


def resolve(cache: Any) -> Optional[SweepCache]:
    """Normalize a sweep's ``cache`` argument to a SweepCache or None.

    ``None``/``False`` → no caching; ``True`` → a default-rooted cache,
    unless disabled process-wide; an instance is used as-is.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache() if default_enabled() else None
    return cache

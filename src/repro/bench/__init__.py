"""Benchmark harness: canned experiments for every table and figure."""

from repro.bench.harness import ExperimentResult, sweep
from repro.bench import experiments

__all__ = ["ExperimentResult", "experiments", "sweep"]

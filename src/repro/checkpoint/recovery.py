"""Rollback recovery from striped checkpoints.

Two failure classes, per the paper's §6:

* **transient** — the node restarts with its disks intact.  On RAID-x
  with local-image placement, the process state is read back from the
  *local* mirror images: long sequential extents, no network at all.
* **permanent** — the node's disk is lost.  The state is re-read through
  the striped data blocks (degraded mode if the failed disk held any).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CheckpointError
from repro.raid.raidx import RaidxLayout


@dataclass
class RecoveryResult:
    """Timing of one process's state recovery."""

    kind: str
    process: int
    nbytes: int
    elapsed: float
    used_local_mirror: bool

    @property
    def bandwidth_mb_s(self) -> float:
        if self.elapsed <= 0:
            return float("nan")
        return self.nbytes / 1e6 / self.elapsed


def recover(run, process: int, kind: str = "transient") -> RecoveryResult:
    """Recover one process's checkpoint; returns the timing result.

    ``run`` is a completed :class:`~repro.checkpoint.coordinated.CheckpointRun`.
    """
    if kind not in ("transient", "permanent"):
        raise CheckpointError(f"unknown failure kind {kind!r}")
    cluster = run.cluster
    env = cluster.env
    storage = cluster.storage
    layout = getattr(storage, "layout", None)
    node = run.node_of_process(process)
    blocks = run.region_blocks(process)
    bs = storage.block_size
    nbytes = run.config.state_bytes

    use_local = (
        kind == "transient"
        and run.config.local_images
        and isinstance(layout, RaidxLayout)
    )
    start = env.now

    def read_local_images():
        # Gather the image extents (mirror groups are contiguous runs on
        # the local disk) and read each with one long local request.
        extents = {}
        for b in blocks:
            mg = layout.mirror_group_of(b)
            pos = mg.blocks.index(b)
            key = (mg.image_disk, mg.image_offset)
            lo, hi = extents.get(key, (pos, pos + 1))
            extents[key] = (min(lo, pos), max(hi, pos + 1))
        cdd = cluster.cdds[node]
        events = []
        for (disk, base), (lo, hi) in sorted(extents.items()):
            if disk % cluster.n_nodes != node:
                raise CheckpointError(
                    "local-image recovery requires local placement"
                )
            events.append(
                cdd.submit("read", disk, base + lo * bs, (hi - lo) * bs)
            )
        if events:
            yield env.all_of(events)

    def read_striped():
        inflight: List = []
        remaining = nbytes
        for b in blocks:
            take = min(bs, remaining)
            remaining -= take
            inflight.append(storage.submit(node, "read", b * bs, take))
            if len(inflight) >= 8:
                yield inflight.pop(0)
            if remaining <= 0:
                break
        for ev in inflight:
            yield ev

    body = read_local_images if use_local else read_striped
    env.run(env.process(body()))
    return RecoveryResult(
        kind=kind,
        process=process,
        nbytes=nbytes,
        elapsed=env.now - start,
        used_local_mirror=use_local,
    )

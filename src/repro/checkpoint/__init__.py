"""Striped and staggered checkpointing on the distributed array (§6).

Coordinated checkpointing of P processes with three write schedules:

* ``parallel``          — everyone writes at once (contention);
* ``staggered``         — one process at a time (Vaidya), no contention
  but P serial steps;
* ``striped_staggered`` — the paper's scheme: processes are partitioned
  into stripe groups that take turns, each group striping its writes in
  parallel — the sweet spot between striped parallelism and staggering
  depth.

On RAID-x, checkpoint regions can be *placed* so every process's image
blocks land on its own local disk (``local_image_region``), enabling
transient-failure recovery from the local mirror without any network.
"""

from repro.checkpoint.placement import (
    local_image_region,
    region_blocks_for_disk_group,
)
from repro.checkpoint.coordinated import (
    CheckpointConfig,
    CheckpointResult,
    CheckpointRun,
    SCHEMES,
)
from repro.checkpoint.recovery import RecoveryResult, recover
from repro.checkpoint.interval import (
    IntervalPlan,
    optimal_interval,
    overhead_fraction,
    plan_interval,
)

__all__ = [
    "CheckpointConfig",
    "CheckpointResult",
    "CheckpointRun",
    "IntervalPlan",
    "RecoveryResult",
    "SCHEMES",
    "local_image_region",
    "optimal_interval",
    "overhead_fraction",
    "plan_interval",
    "recover",
    "region_blocks_for_disk_group",
]

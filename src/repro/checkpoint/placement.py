"""Checkpoint-region placement on a RAID-x layout.

Two placement services:

* :func:`region_blocks_for_disk_group` — logical blocks whose data lands
  on one n-disk group (the unit of stripe parallelism / pipelining in
  the paper's Fig. 3), for disk-group-targeted staggering;
* :func:`local_image_region` — logical blocks whose *images* all land on
  a chosen node's disk, realizing the paper's "each striped checkpointing
  file has its mirrored image in its local disk".
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.raid.raidx import RaidxLayout


def region_blocks_for_disk_group(
    layout: RaidxLayout, disk_group: int, n_blocks: int, start_row: int = 0
) -> List[int]:
    """The first ``n_blocks`` logical blocks striping over one disk group.

    Blocks are returned in address order; they are contiguous *within
    the group's* address slice (runs of n blocks every D blocks).
    """
    n, D = layout.n, layout.n_disks
    if not 0 <= disk_group < layout.k:
        raise ConfigurationError(
            f"disk group {disk_group} out of range for k={layout.k}"
        )
    out: List[int] = []
    row = start_row
    while len(out) < n_blocks:
        base = row * D + disk_group * n
        for j in range(n):
            if len(out) >= n_blocks:
                break
            b = base + j
            if b >= layout.data_blocks:
                raise ConfigurationError("region exceeds the data capacity")
            out.append(b)
        row += 1
    return out


def _image_residue_for_node(layout: RaidxLayout, node: int) -> int:
    """The mirror-group residue g mod n whose image disk sits on ``node``.

    Image disk of group g (within a disk group) is ``((g+1)(n-1)) mod n``;
    since gcd(n-1, n) = 1 there is exactly one residue class per node.
    """
    n = layout.n
    for g_mod in range(n):
        if ((g_mod + 1) * (n - 1)) % n == node % n:
            return g_mod
    raise AssertionError("unreachable: residues cover all nodes")


def local_image_region(
    layout: RaidxLayout,
    node: int,
    n_blocks: int,
    disk_group: int = 0,
) -> List[int]:
    """Blocks whose mirror images all land on ``node``'s disk in
    ``disk_group`` — the OSM local-mirror checkpoint placement.

    The region consists of whole mirror groups (n-1 blocks each) from the
    single residue class of mirror groups whose image disk is local to
    the node.  Note the *data* blocks still stripe across the group's n
    disks, so the striped-write bandwidth is preserved.
    """
    n = layout.n
    if not 0 <= node < n:
        raise ConfigurationError(f"node {node} out of range for n={n}")
    residue = _image_residue_for_node(layout, node)
    out: List[int] = []
    g = residue
    per_group = n - 1
    while len(out) < n_blocks:
        # Mirror group g of this disk group covers local indices
        # [g*(n-1), (g+1)*(n-1)).
        for j in range(per_group):
            if len(out) >= n_blocks:
                break
            ell = g * per_group + j
            b = layout._local_block(disk_group, ell)
            if b >= layout.data_blocks:
                raise ConfigurationError("region exceeds the data capacity")
            out.append(b)
        g += n  # next group of the same residue class
    # Validate the local-image invariant (cheap, and worth the guarantee).
    for b in out:
        mg = layout.mirror_group_of(b)
        if mg.image_disk % n != node % n:
            raise AssertionError(
                f"placement bug: block {b} images on disk {mg.image_disk}"
            )
    return out

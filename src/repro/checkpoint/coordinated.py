"""Coordinated checkpointing with three write schedules (paper's Fig. 7).

Protocol per checkpoint epoch:

1. *Synchronize*: every process sends a marker to the coordinator and
   waits for the commit broadcast (2 small messages per process — the
   "S" overhead in Fig. 7);
2. *Write*: each process writes its state to the array under the chosen
   schedule (the "C" overhead);
3. *Commit*: a final marker exchange.

The result separates sync overhead from checkpoint-write overhead so the
C/S breakdown of Fig. 7 can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.message import ACK_BYTES, MessageKind
from repro.errors import ConfigurationError
from repro.obs import runtime as _obs
from repro.obs.trace import CKPT_SYNC, CKPT_WRITE
from repro.raid.raidx import RaidxLayout
from repro.sim.sync import Barrier
from repro.units import MB

SCHEMES = ("parallel", "staggered", "striped_staggered")


@dataclass(frozen=True)
class CheckpointConfig:
    """One checkpoint epoch's shape."""

    processes: int = 12
    state_bytes: int = 4 * MB
    scheme: str = "striped_staggered"
    #: Stagger groups for striped_staggered (e.g. 3 for the 4×3 array);
    #: None derives it from the array's pipeline depth k.
    stagger_groups: Optional[int] = None
    #: Place each process's region so images land on its local disk
    #: (RAID-x only; ignored elsewhere).
    local_images: bool = True

    def validate(self) -> None:
        if self.processes < 1:
            raise ConfigurationError("need at least one process")
        if self.state_bytes <= 0:
            raise ConfigurationError("state must be non-empty")
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; choose from {SCHEMES}"
            )


@dataclass
class CheckpointResult:
    """Timing breakdown of one checkpoint epoch."""

    scheme: str
    processes: int
    state_bytes: int
    total_time: float
    sync_overhead: float
    write_time: float
    per_process_write: Dict[int, float] = field(default_factory=dict)

    @property
    def aggregate_bandwidth_mb_s(self) -> float:
        if self.write_time <= 0:
            return float("nan")
        return self.processes * self.state_bytes / 1e6 / self.write_time

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.scheme}: total={self.total_time:.3f}s "
            f"(sync={self.sync_overhead * 1e3:.2f}ms, "
            f"write={self.write_time:.3f}s, "
            f"{self.aggregate_bandwidth_mb_s:.1f} MB/s)"
        )


class CheckpointRun:
    """Execute one coordinated checkpoint epoch on a cluster."""

    def __init__(self, cluster, config: Optional[CheckpointConfig] = None,
                 coordinator: int = 0):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or CheckpointConfig()
        self.config.validate()
        self.coordinator = coordinator
        self._write_start: Dict[int, float] = {}
        self._write_end: Dict[int, float] = {}

    # -- placement -----------------------------------------------------
    def node_of_process(self, p: int) -> int:
        return p % self.cluster.n_nodes

    def region_blocks(self, p: int) -> List[int]:
        """The logical blocks process ``p`` checkpoints into."""
        storage = self.cluster.storage
        layout = getattr(storage, "layout", None)
        bs = storage.block_size
        n_blocks = -(-self.config.state_bytes // bs)
        if (
            self.config.local_images
            and isinstance(layout, RaidxLayout)
        ):
            from repro.checkpoint.placement import local_image_region

            node = self.node_of_process(p)
            group = (p // layout.n) % layout.k
            # Distinct processes of the same node use disjoint residue
            # groups further down the region (offset by process index).
            blocks = local_image_region(
                layout, node, n_blocks * (p // self.cluster.n_nodes + 1),
                disk_group=group,
            )
            return blocks[-n_blocks:]
        # Generic contiguous placement, one span per process.
        span = self.config.state_bytes + 63 * bs
        first = p * (span // bs + 1)
        return list(range(first, first + n_blocks))

    # -- protocol phases -----------------------------------------------------
    def _sync(self, p: int, trace=None):
        """Marker to the coordinator + wait for the commit broadcast."""
        node = self.node_of_process(p)
        tr = self.cluster.transport
        tracer = _obs.TRACER
        t0 = self.env.now
        if node != self.coordinator:
            yield from tr.message(
                MessageKind.CKPT_MARKER, node, self.coordinator, ACK_BYTES,
                trace=trace,
            )
            yield from tr.message(
                MessageKind.CKPT_MARKER, self.coordinator, node, ACK_BYTES,
                trace=trace,
            )
        if tracer.enabled:
            tracer.record(
                CKPT_SYNC, f"node{node}.ckpt", t0, self.env.now,
                trace=trace, process=p,
            )

    def _write_state(self, p: int, trace=None):
        """Stripe the process state over its region blocks."""
        storage = self.cluster.storage
        node = self.node_of_process(p)
        bs = storage.block_size
        remaining = self.config.state_bytes
        self._write_start[p] = self.env.now
        inflight: List = []
        for b in self.region_blocks(p):
            take = min(bs, remaining)
            remaining -= take
            inflight.append(storage.submit(node, "write", b * bs, take))
            if len(inflight) >= 8:
                yield inflight.pop(0)
            if remaining <= 0:
                break
        for ev in inflight:
            yield ev
        self._write_end[p] = self.env.now
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.record(
                CKPT_WRITE, f"node{node}.ckpt", self._write_start[p],
                self.env.now, trace=trace, process=p,
                nbytes=self.config.state_bytes, scheme=self.config.scheme,
            )

    # -- schedules -----------------------------------------------------
    def _stagger_group_of(self, p: int, n_groups: int) -> int:
        per = -(-self.config.processes // n_groups)
        return p // per

    def _process_body(self, p: int, barrier: Barrier, gates: List):
        tracer = _obs.TRACER
        trace = tracer.new_trace() if tracer.enabled else None
        yield from self._sync(p, trace)
        yield barrier.wait()  # sync phase complete for everyone
        scheme = self.config.scheme
        if scheme == "parallel":
            yield from self._write_state(p, trace)
        elif scheme == "staggered":
            yield gates[p]  # opened when process p-1 finishes
            yield from self._write_state(p, trace)
            if p + 1 < len(gates):
                gates[p + 1].succeed()
        else:  # striped_staggered
            g = self._stagger_group_of(p, len(gates))
            yield gates[g][0]
            yield from self._write_state(p, trace)
            gates[g][1].count_down()

    def run(self) -> CheckpointResult:
        cfg = self.config
        env = self.env
        start = env.now
        barrier = Barrier(env, cfg.processes)

        # Build the gating structure per scheme.
        if cfg.scheme == "staggered":
            gates: List = [env.event() for _ in range(cfg.processes)]
            gates[0].succeed()
        elif cfg.scheme == "striped_staggered":
            n_groups = cfg.stagger_groups or self._default_groups()
            from repro.sim.sync import CountdownLatch

            per = -(-cfg.processes // n_groups)
            gates = []
            for g in range(n_groups):
                members = min(per, cfg.processes - g * per)
                members = max(members, 1)
                gates.append(
                    (env.event(), CountdownLatch(env, members))
                )
            gates[0][0].succeed()
            # Chain: group g+1 opens when group g's latch fires.
            for g in range(len(gates) - 1):
                nxt = gates[g + 1][0]
                gates[g][1].wait().callbacks.append(
                    lambda _ev, nxt=nxt: nxt.succeed()
                )
        else:
            gates = []

        procs = [
            env.process(self._process_body(p, barrier, gates))
            for p in range(cfg.processes)
        ]
        env.run(env.all_of(procs))
        write_window = max(self._write_end.values()) - min(
            self._write_start.values()
        )
        sync_overhead = min(self._write_start.values()) - start
        return CheckpointResult(
            scheme=cfg.scheme,
            processes=cfg.processes,
            state_bytes=cfg.state_bytes,
            total_time=env.now - start,
            sync_overhead=sync_overhead,
            write_time=write_window,
            per_process_write={
                p: self._write_end[p] - self._write_start[p]
                for p in range(cfg.processes)
            },
        )

    def _default_groups(self) -> int:
        layout = getattr(self.cluster.storage, "layout", None)
        if isinstance(layout, RaidxLayout):
            return max(1, layout.k) if layout.k > 1 else min(
                3, self.config.processes
            )
        return min(3, self.config.processes)

"""Checkpoint-interval analysis (Young's first-order model).

Given the measured checkpoint cost C (which this library produces per
schedule — see Fig. 7) and the system's MTBF, Young's approximation
gives the overhead-minimizing checkpoint interval::

    T_opt ≈ sqrt(2 · C · MTBF)

and the resulting expected overhead fraction.  This ties the paper's
striped-checkpointing machinery (§6) to the classic question "how often
should the application checkpoint?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def optimal_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """Young's interval: sqrt(2 · C · MTBF)."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ValueError("cost and MTBF must be positive")
    if checkpoint_cost_s >= mtbf_s:
        raise ValueError("model assumes C << MTBF")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def overhead_fraction(
    checkpoint_cost_s: float, interval_s: float, mtbf_s: float,
    recovery_cost_s: float = 0.0,
) -> float:
    """Expected fraction of time lost to checkpointing + rework.

    First-order model: per interval, pay C; on failure (probability
    interval/MTBF) lose on average half an interval plus the recovery
    read.
    """
    if min(checkpoint_cost_s, interval_s, mtbf_s) <= 0:
        raise ValueError("all durations must be positive")
    ckpt = checkpoint_cost_s / interval_s
    rework = (interval_s / 2.0 + recovery_cost_s) / mtbf_s
    return ckpt + rework


@dataclass(frozen=True)
class IntervalPlan:
    """A checkpoint cadence recommendation."""

    checkpoint_cost_s: float
    mtbf_s: float
    recovery_cost_s: float
    interval_s: float
    overhead: float


def plan_interval(
    checkpoint_cost_s: float,
    mtbf_s: float,
    recovery_cost_s: float = 0.0,
) -> IntervalPlan:
    """Compute Young's interval and its expected overhead."""
    t = optimal_interval(checkpoint_cost_s, mtbf_s)
    return IntervalPlan(
        checkpoint_cost_s=checkpoint_cost_s,
        mtbf_s=mtbf_s,
        recovery_cost_s=recovery_cost_s,
        interval_s=t,
        overhead=overhead_fraction(
            checkpoint_cost_s, t, mtbf_s, recovery_cost_s
        ),
    )

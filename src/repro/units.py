"""Unit helpers and constants.

Conventions (matching the paper's reporting):

* time is in **seconds**;
* sizes are in **bytes**; ``KB``/``MB``/``GB`` are decimal (1e3/1e6/1e9)
  because the paper reports MB/s in decimal megabytes;
* ``KiB``/``MiB`` are available where power-of-two block math is needed.
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

US = 1e-6
MS = 1e-3

#: Fast Ethernet wire speed: 100 Mbit/s in bytes per second.
FAST_ETHERNET_BPS = 100e6 / 8


def mb_per_s(bytes_per_second: float) -> float:
    """Convert B/s to MB/s (decimal)."""
    return bytes_per_second / MB


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (decimal units)."""
    for unit, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= factor:
            return f"{n / factor:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MS:
        return f"{seconds / MS:.3f} ms"
    return f"{seconds / US:.1f} us"

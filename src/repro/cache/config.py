"""Cache configuration and the ``REPRO_CACHE`` kill switch.

A system caches only when handed an explicit :class:`CacheConfig` —
the default is *no cache layer at all*, which is what keeps the golden
equivalence captures byte-identical.  ``REPRO_CACHE=0`` (or ``off`` /
``no`` / ``false``) forces the cache off even when one is configured:
the CI cache-equivalence job runs cache-configured suites under that
flag and diffs float-hex rows against the committed goldens.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Write admission modes: ``writeback`` dirties blocks in memory and
#: destages later; ``writethrough`` commits to disk first and caches
#: the clean copy.
MODES = ("writeback", "writethrough")
#: Eviction policies (see :mod:`repro.cache.policy`).
POLICIES = ("lru", "arc")
#: Destage trigger/selection policies (see :mod:`repro.cache.destage`).
DESTAGE_POLICIES = ("threshold", "idle", "mirror")

#: Environment kill switch; read at system construction time.
ENV_FLAG = "REPRO_CACHE"
_OFF_VALUES = frozenset({"0", "off", "no", "false"})


def cache_enabled() -> bool:
    """False when ``REPRO_CACHE`` disables caching process-wide."""
    return os.environ.get(ENV_FLAG, "1").strip().lower() not in _OFF_VALUES


@dataclass(frozen=True)
class CacheConfig:
    """Per-system buffer-cache configuration (immutable).

    ``dirty_fraction`` sets the threshold-destage trigger as a fraction
    of capacity; ``destage_batch`` bounds how many blocks one sweep may
    destage.  ``track_blocks`` keeps exact per-block destaged/lost sets
    on the cache — test instrumentation for the exactly-once property,
    off by default so steady-state memory stays O(capacity).
    """

    capacity_blocks: int = 1024
    mode: str = "writeback"
    policy: str = "lru"
    destage: str = "threshold"
    dirty_fraction: float = 0.5
    destage_batch: int = 64
    track_blocks: bool = False

    def __post_init__(self) -> None:
        if self.capacity_blocks <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown cache mode {self.mode!r}; choose from {MODES}"
            )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown cache policy {self.policy!r}; "
                f"choose from {POLICIES}"
            )
        if self.destage not in DESTAGE_POLICIES:
            raise ConfigurationError(
                f"unknown destage policy {self.destage!r}; "
                f"choose from {DESTAGE_POLICIES}"
            )
        if not 0.0 < self.dirty_fraction <= 1.0:
            raise ConfigurationError("dirty_fraction must be in (0, 1]")
        if self.destage_batch <= 0:
            raise ConfigurationError("destage_batch must be positive")

    @property
    def writeback(self) -> bool:
        return self.mode == "writeback"

    @property
    def threshold_blocks(self) -> int:
        """Dirty-block count that arms the threshold destage trigger."""
        return max(1, int(self.dirty_fraction * self.capacity_blocks))

"""Pluggable eviction policies: recency (LRU) and adaptive (ARC).

A policy tracks only *residency order* — which resident block to evict
next.  The cache core (:mod:`repro.cache.core`) owns block state and
never evicts a dirty or destaging block: it walks :meth:`victims` in
policy order and takes the first clean candidate, so a policy's
ordering is advisory over the clean population.

Determinism: both policies are plain ordered dicts driven only by the
access sequence — no randomness, no clocks — so a cache-on run is as
replayable as the simulator underneath it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator


class EvictionPolicy:
    """Interface: residency bookkeeping + victim ordering."""

    name = "abstract"

    def __init__(self, capacity_blocks: int):
        if capacity_blocks <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_blocks = capacity_blocks

    def on_hit(self, block: int) -> None:
        """A resident block was referenced."""
        raise NotImplementedError

    def on_insert(self, block: int) -> None:
        """A block became resident (fill or first write)."""
        raise NotImplementedError

    def on_evict(self, block: int) -> None:
        """The cache chose this block as the eviction victim."""
        raise NotImplementedError

    def on_remove(self, block: int) -> None:
        """A block left the cache for a non-eviction reason
        (invalidation, destage loss) — no ghost history is kept."""
        raise NotImplementedError

    def victims(self) -> Iterator[int]:
        """Resident blocks in preferred-eviction order."""
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Classic least-recently-used ordering."""

    name = "lru"

    def __init__(self, capacity_blocks: int):
        super().__init__(capacity_blocks)
        self._lru: "OrderedDict[int, bool]" = OrderedDict()

    def on_hit(self, block: int) -> None:
        self._lru.move_to_end(block)

    def on_insert(self, block: int) -> None:
        self._lru[block] = True

    def on_evict(self, block: int) -> None:
        self._lru.pop(block, None)

    on_remove = on_evict

    def victims(self) -> Iterator[int]:
        return iter(list(self._lru))


class ARCPolicy(EvictionPolicy):
    """Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

    Two resident lists — ``t1`` (seen once) and ``t2`` (seen twice or
    more) — plus ghost histories ``b1``/``b2`` of recently evicted
    blocks.  A ghost hit adapts the target size ``p`` of ``t1``: hits
    in ``b1`` grow it (recency is winning), hits in ``b2`` shrink it
    (frequency is winning).  One-shot scans flow through ``t1`` without
    displacing the ``t2`` working set — the scan resistance LRU lacks.
    """

    name = "arc"

    def __init__(self, capacity_blocks: int):
        super().__init__(capacity_blocks)
        self.p = 0  # target size of t1, adapted on ghost hits
        self._t1: "OrderedDict[int, bool]" = OrderedDict()
        self._t2: "OrderedDict[int, bool]" = OrderedDict()
        self._b1: "OrderedDict[int, bool]" = OrderedDict()
        self._b2: "OrderedDict[int, bool]" = OrderedDict()

    def on_hit(self, block: int) -> None:
        if block in self._t1:
            del self._t1[block]
            self._t2[block] = True
        elif block in self._t2:
            self._t2.move_to_end(block)

    def on_insert(self, block: int) -> None:
        c = self.capacity_blocks
        if block in self._b1:
            delta = max(1, len(self._b2) // max(1, len(self._b1)))
            self.p = min(c, self.p + delta)
            del self._b1[block]
            self._t2[block] = True
        elif block in self._b2:
            delta = max(1, len(self._b1) // max(1, len(self._b2)))
            self.p = max(0, self.p - delta)
            del self._b2[block]
            self._t2[block] = True
        else:
            self._t1[block] = True
        self._trim_ghosts()

    def on_evict(self, block: int) -> None:
        if self._t1.pop(block, None) is not None:
            self._b1[block] = True
        elif self._t2.pop(block, None) is not None:
            self._b2[block] = True
        self._trim_ghosts()

    def on_remove(self, block: int) -> None:
        self._t1.pop(block, None)
        self._t2.pop(block, None)

    def victims(self) -> Iterator[int]:
        # Prefer t1 while it exceeds its adaptive target (or t2 is
        # empty); fall through to the other list so the cache core can
        # always find a clean candidate if one exists.
        prefer_t1 = bool(self._t1) and (
            len(self._t1) > self.p or not self._t2
        )
        first, second = (
            (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        )
        ordered = list(first) + list(second)
        return iter(ordered)

    def _trim_ghosts(self) -> None:
        c = self.capacity_blocks
        while len(self._t1) + len(self._b1) > c and self._b1:
            self._b1.popitem(last=False)
        while (
            len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
            > 2 * c
            and self._b2
        ):
            self._b2.popitem(last=False)


_POLICY_CLASSES = {"lru": LRUPolicy, "arc": ARCPolicy}


def make_policy(name: str, capacity_blocks: int) -> EvictionPolicy:
    """Instantiate an eviction policy by name."""
    try:
        cls = _POLICY_CLASSES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; "
            f"choose from {sorted(_POLICY_CLASSES)}"
        ) from None
    return cls(capacity_blocks)

"""Write-invalidate coherence: the per-block holder directory.

Subsumed from the old ``repro.cluster.cache`` shim with its protocol
preserved: reads note the caching node, a write invalidates the block
on every *other* holder (the caller charges one control message per
touched peer), and the writer becomes the sole holder only if it
caches the block itself.  A simplification of the replicated
lock-group table's knowledge: the simulation keeps one authoritative
directory instead of n replicas.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.cache.core import BlockCache


class CacheDirectory:
    """Tracks which nodes cache which blocks, to target invalidations."""

    def __init__(self, caches: List[BlockCache]):
        self.caches = caches
        self._where: Dict[int, Set[int]] = {}

    def note_cached(self, node: int, block: int) -> None:
        self.caches[node].insert(block)
        self._where.setdefault(block, set()).add(node)

    def note_resident(self, node: int, block: int) -> None:
        """Record holdership without touching cache state — used by the
        write path after :meth:`BlockCache.admit_write` already moved
        the block to dirty (``note_cached`` would be a spurious recency
        refresh on a block the admission just touched)."""
        self._where.setdefault(block, set()).add(node)

    def lookup(self, node: int, block: int) -> bool:
        return self.caches[node].lookup(block)

    def invalidate_peers(self, writer: int, block: int) -> List[int]:
        """Invalidate ``block`` on all peers of ``writer``; returns the
        list of nodes that actually held it (for message charging)."""
        holders = self._where.get(block, set())
        touched = []
        for node in sorted(holders):
            if node == writer:
                continue
            if self.caches[node].invalidate(block):
                touched.append(node)
        self._where[block] = {writer} if writer in holders else set()
        return touched

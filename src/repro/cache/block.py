"""Per-block cache state and the cache's counter block.

The state machine (enforced by :class:`repro.cache.core.BlockCache`)::

    absent --fill/read-miss--> CLEAN --write--> DIRTY
    absent --full-block write--------------------^
    DIRTY --begin_destage--> DESTAGING --complete--> CLEAN
    DESTAGING --write (re-dirty)--> ... --complete--> DIRTY
    DESTAGING --destage lost--> absent   (reported lost exactly once)
    CLEAN --evict/invalidate--> absent
    DIRTY/DESTAGING --peer invalidate--> absent (superseded by writer)

Only CLEAN blocks are eviction candidates; DIRTY and DESTAGING blocks
are pinned until their data reaches disk (or is reported lost).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Set

from repro.errors import ReproError


class BlockState(enum.Enum):
    """Lifecycle of one resident cache block."""

    CLEAN = "clean"
    DIRTY = "dirty"
    DESTAGING = "destaging"


class CacheStateError(ReproError):
    """An illegal block-state transition was attempted."""


@dataclass
class CacheStats:
    """Cumulative counters for one node's cache (merge-safe: all are
    monotone counts or high-water marks, never ratios)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    fills: int = 0
    #: Writes absorbed in place (block already dirty or destaging).
    write_absorbed: int = 0
    #: Blocks whose destage write completed.
    destaged: int = 0
    #: Destage sweeps that completed a batch.
    destage_batches: int = 0
    #: Dirty blocks whose destage failed unrecoverably.
    lost: int = 0
    #: High-water mark of the dirty+destaging population.
    dirty_hw: int = 0
    #: Exact per-block outcome sets, kept only under ``track_blocks``
    #: (the destage-vs-fault exactly-once property reads these).
    destaged_blocks: Set[int] = field(default_factory=set)
    lost_blocks: Set[int] = field(default_factory=set)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

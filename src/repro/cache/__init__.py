"""repro.cache — the buffer-cache layer of the I/O path.

A fixed-capacity block cache per node, sitting between the execution
engine's request admission and plan execution (DESIGN §6.17):

* pluggable eviction (:mod:`repro.cache.policy`: LRU and ARC);
* a per-block clean/dirty/destaging state machine
  (:mod:`repro.cache.block`, :mod:`repro.cache.core`);
* write-back vs write-through modes (:mod:`repro.cache.config`);
* read-modify-write absorption — the cache remembers which dirty
  blocks it can supply *pre-write* content for, so partial-stripe
  destages skip the RAID-5 old-data pre-reads;
* destage planning (:mod:`repro.cache.destage`): threshold, idle, and
  mirror-coalescing policies that fold dirty blocks into long
  contiguous runs (one orthogonal RAID-x image write per mirror group);
* the write-invalidate consistency protocol of the paper's §4,
  subsumed from the old ``repro.cluster.cache`` shim
  (:mod:`repro.cache.coherence`).

This package is *pure bookkeeping*: no simulator imports, no process
generators, no hardware — the cluster-layer
:class:`~repro.cluster.cache_stage.CacheStage` owns all timing.  The
CACHE lint family (:mod:`repro.lint.rules_cache`) enforces both
directions of that boundary.  Caching is opt-in per system and the
``REPRO_CACHE`` environment kill switch forces it off, which keeps
cache-off runs byte-identical to the golden captures.
"""

from repro.cache.block import BlockState, CacheStats
from repro.cache.config import CacheConfig, cache_enabled
from repro.cache.coherence import CacheDirectory
from repro.cache.core import BlockCache, WriteAdmission
from repro.cache.destage import (
    DestagePolicy,
    DestageRun,
    IdleDestage,
    MirrorCoalescingDestage,
    ThresholdDestage,
    coalesce_runs,
    make_destage_policy,
)
from repro.cache.policy import (
    ARCPolicy,
    EvictionPolicy,
    LRUPolicy,
    make_policy,
)

__all__ = [
    "ARCPolicy",
    "BlockCache",
    "BlockState",
    "CacheConfig",
    "CacheDirectory",
    "CacheStats",
    "DestagePolicy",
    "DestageRun",
    "EvictionPolicy",
    "IdleDestage",
    "LRUPolicy",
    "MirrorCoalescingDestage",
    "ThresholdDestage",
    "WriteAdmission",
    "cache_enabled",
    "coalesce_runs",
    "make_destage_policy",
    "make_policy",
]

"""Destage planning: when to write dirty blocks back, and in what runs.

A destage policy answers two pure questions — *should* this cache
destage now (:meth:`DestagePolicy.should_destage`) and *what* should
one sweep write (:meth:`DestagePolicy.select`).  Selection always
returns :class:`DestageRun` values: maximal contiguous logical-block
runs, so each run destages as one engine write (one plan), which is
what lets the RAID-5 planner batch parity work and the RAID-x planner
coalesce a whole mirror group's images into a single orthogonal
extent.

Three policies:

* **threshold** — destage when the dirty population crosses a fixed
  fraction of capacity; select the oldest runs up to the batch bound.
* **idle** — destage opportunistically whenever the foreground is
  idle, with the threshold as a capacity-pressure backstop.
* **mirror** — the RAID-x-aware policy: order dirty blocks by mirror
  group and cut runs on group boundaries, so every run's queued image
  writes fold into one orthogonal write before the engine sees them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cache.config import CacheConfig
from repro.cache.core import BlockCache


@dataclass(frozen=True)
class DestageRun:
    """One contiguous run of dirty blocks, destaged as a single write."""

    start_block: int
    blocks: Tuple[int, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


def coalesce_runs(
    blocks: Sequence[int],
    max_blocks: int,
    boundary: Optional[Callable[[int], int]] = None,
) -> List[DestageRun]:
    """Fold sorted blocks into contiguous runs of at most ``max_blocks``.

    ``boundary`` maps a block to a group id; runs never cross a group
    boundary (the mirror-coalescing cut).  Input order is preserved —
    callers sort by whatever key defines adjacency for them.
    """
    if max_blocks <= 0:
        raise ValueError("max_blocks must be positive")
    runs: List[List[int]] = []
    for b in blocks:
        if (
            runs
            and b == runs[-1][-1] + 1
            and len(runs[-1]) < max_blocks
            and (boundary is None or boundary(b) == boundary(runs[-1][-1]))
        ):
            runs[-1].append(b)
        else:
            runs.append([b])
    return [DestageRun(r[0], tuple(r)) for r in runs]


class DestagePolicy:
    """Base: threshold trigger + batch-bounded contiguous selection."""

    name = "abstract"

    def __init__(self, threshold_blocks: int, batch_blocks: int):
        if threshold_blocks <= 0 or batch_blocks <= 0:
            raise ValueError("destage thresholds must be positive")
        self.threshold_blocks = threshold_blocks
        self.batch_blocks = batch_blocks

    def should_destage(self, cache: BlockCache, idle: bool) -> bool:
        raise NotImplementedError

    def ff_would_destage(self, cache: BlockCache, extra_dirty: int) -> bool:
        """Pure preview for the fast path: would admitting
        ``extra_dirty`` newly-dirtied blocks reach the destage
        threshold?  Deliberately checks only the capacity-pressure
        trigger: a threshold-crossing write is kept on the event-driven
        path (conservative — the fast path never puts the cache under
        destage pressure), while the idle-opportunistic trigger needs
        no preview because the fast path replays ``should_destage`` at
        the exact completion pop the phase path would (DESIGN §6.18)."""
        return cache.dirty_count + extra_dirty >= self.threshold_blocks

    def select(self, cache: BlockCache) -> List[DestageRun]:
        """Up to ``batch_blocks`` dirty blocks, folded into runs."""
        dirty = cache.dirty_blocks()[: self.batch_blocks]
        return coalesce_runs(dirty, self.batch_blocks)


class ThresholdDestage(DestagePolicy):
    """Destage only under dirty-population pressure."""

    name = "threshold"

    def should_destage(self, cache: BlockCache, idle: bool) -> bool:
        return cache.dirty_count >= self.threshold_blocks


class IdleDestage(ThresholdDestage):
    """Destage whenever the foreground is idle (threshold backstop)."""

    name = "idle"

    def should_destage(self, cache: BlockCache, idle: bool) -> bool:
        if idle and cache.dirty_count > 0:
            return True
        return super().should_destage(cache, idle)


class MirrorCoalescingDestage(ThresholdDestage):
    """Group dirty blocks by mirror group before cutting runs.

    ``group_of`` maps a logical block to its redundancy-group id (the
    RAID-x mirror group; other layouts fall back to the stripe).  One
    run never spans two groups, so the RAID-x planner turns each run's
    image fragments into exactly one clustered orthogonal write —
    folding every queued image write of that group into a single disk
    operation.
    """

    name = "mirror"

    def __init__(
        self,
        threshold_blocks: int,
        batch_blocks: int,
        group_of: Callable[[int], int],
    ):
        super().__init__(threshold_blocks, batch_blocks)
        self.group_of = group_of

    def select(self, cache: BlockCache) -> List[DestageRun]:
        group_of = self.group_of
        ordered = sorted(cache.dirty_blocks(), key=lambda b: (group_of(b), b))
        return coalesce_runs(
            ordered[: self.batch_blocks], self.batch_blocks,
            boundary=group_of,
        )


def make_destage_policy(
    config: CacheConfig, group_of: Optional[Callable[[int], int]] = None
) -> DestagePolicy:
    """Build the configured destage policy for one cache."""
    threshold = config.threshold_blocks
    batch = config.destage_batch
    if config.destage == "threshold":
        return ThresholdDestage(threshold, batch)
    if config.destage == "idle":
        return IdleDestage(threshold, batch)
    if group_of is None:
        raise ValueError(
            "mirror-coalescing destage needs a group_of(block) mapping"
        )
    return MirrorCoalescingDestage(threshold, batch, group_of)

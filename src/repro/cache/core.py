"""The per-node block cache: residency, dirty state, RMW absorption.

:class:`BlockCache` unifies the old read-only LRU cache (whose
``lookup``/``insert``/``invalidate``/``hit_rate`` API the fs layer and
the NFS server cache still use, unchanged) with the write-back
machinery the engine's cache stage needs: a clean/dirty/destaging
state machine, write absorption, destage bookkeeping, and the
``old_known`` set that powers read-modify-write absorption — the cache
can supply a block's *pre-write* content whenever the block was
resident (clean or freshly filled) at the moment it was dirtied, so
the RAID-5 destage planner may drop that block's old-data pre-read.

Eviction never touches a dirty or destaging block.  When every
resident block is pinned dirty the cache overcommits rather than
deadlock — the destage threshold (a fraction of capacity) keeps that
excursion short-lived and the ``dirty_hw`` high-water mark records it.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Union

from repro.cache.block import BlockState, CacheStateError, CacheStats
from repro.cache.policy import EvictionPolicy, make_policy


class WriteAdmission(enum.Enum):
    """Outcome of admitting one write to the cache (write-back mode)."""

    #: Block was already dirty or destaging: rewrite absorbed in place.
    ABSORBED = "absorbed"
    #: Block is now dirty (was clean-resident, or a full overwrite).
    DIRTIED = "dirtied"
    #: Partial write of a non-resident block: the caller must fill the
    #: block from storage first (read-modify-write at the cache level).
    NEEDS_FILL = "needs_fill"


class BlockCache:
    """One node's fixed-capacity block cache."""

    def __init__(
        self,
        node_id: int,
        capacity_blocks: int = 2048,
        policy: Union[str, EvictionPolicy] = "lru",
        track_blocks: bool = False,
    ):
        if capacity_blocks <= 0:
            raise ValueError("cache capacity must be positive")
        self.node_id = node_id
        self.capacity_blocks = capacity_blocks
        self.policy: EvictionPolicy = (
            make_policy(policy, capacity_blocks)
            if isinstance(policy, str)
            else policy
        )
        self.track_blocks = track_blocks
        self.stats = CacheStats()
        self._state: Dict[int, BlockState] = {}
        #: Blocks whose pre-write (on-disk) content the cache can still
        #: supply — the RMW-absorption set.
        self._old_known: Set[int] = set()
        #: Destaging blocks re-dirtied by a write racing the destage.
        self._redirty: Set[int] = set()
        self._dirty_count = 0

    # -- introspection -----------------------------------------------------
    def __contains__(self, block: int) -> bool:
        return block in self._state

    def __len__(self) -> int:
        return len(self._state)

    def state_of(self, block: int) -> Optional[BlockState]:
        return self._state.get(block)

    @property
    def dirty_count(self) -> int:
        """Blocks pinned by unwritten data (dirty + destaging)."""
        return self._dirty_count

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def invalidations(self) -> int:
        return self.stats.invalidations

    def hit_rate(self) -> float:
        return self.stats.hit_rate()

    def old_known(self, block: int) -> bool:
        """True when the cache can supply the block's pre-write content."""
        return block in self._old_known

    def dirty_blocks(self) -> List[int]:
        """Sorted blocks awaiting destage (excludes in-flight ones)."""
        return sorted(
            b for b, s in self._state.items() if s is BlockState.DIRTY
        )

    # -- read path ---------------------------------------------------------
    def lookup(self, block: int) -> bool:
        """True on hit (and refreshes recency)."""
        if block in self._state:
            self.policy.on_hit(block)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, block: int) -> None:
        """Cache a clean copy (read fill), evicting as needed.

        Idempotent on resident blocks: refreshes recency and never
        downgrades a dirty block to clean.
        """
        if block in self._state:
            self.policy.on_hit(block)
            return
        self._admit(block, BlockState.CLEAN)
        self.stats.fills += 1

    # ``fill`` is the cache-stage name for a read-miss / RMW fill.
    fill = insert

    # -- write path --------------------------------------------------------
    def admit_write(self, block: int, full_block: bool) -> WriteAdmission:
        """Admit one write in write-back mode (see :class:`WriteAdmission`).

        ``full_block`` marks a write covering the whole block: it needs
        no fill, but its pre-write content stays unknown (no RMW
        absorption) unless the block was already resident.
        """
        state = self._state.get(block)
        if state is BlockState.DIRTY:
            self.policy.on_hit(block)
            self.stats.write_absorbed += 1
            return WriteAdmission.ABSORBED
        if state is BlockState.DESTAGING:
            # The in-flight destage carries stale content; remember to
            # re-dirty at completion.  The old content is gone either
            # way, so RMW absorption is off for the next destage.
            self._redirty.add(block)
            self._old_known.discard(block)
            self.stats.write_absorbed += 1
            return WriteAdmission.ABSORBED
        if state is BlockState.CLEAN:
            # Clean resident copy == on-disk content: the cache knows
            # the pre-write bytes, so a partial-stripe destage may skip
            # this block's old-data pre-read.
            self._state[block] = BlockState.DIRTY
            self._old_known.add(block)
            self.policy.on_hit(block)
            self._note_dirty(+1)
            return WriteAdmission.DIRTIED
        if not full_block:
            return WriteAdmission.NEEDS_FILL
        self._admit(block, BlockState.DIRTY)
        self._note_dirty(+1)
        return WriteAdmission.DIRTIED

    def ff_write_verdict(self, block: int, full_block: bool) -> WriteAdmission:
        """Pure preview of :meth:`admit_write` — the same decision table,
        mutating nothing.  The fast path's legality predicate classifies
        every piece of a write *before* committing to the closed form
        (one ``NEEDS_FILL`` forces the event-driven path), then replays
        :meth:`admit_write` for real at submit (DESIGN §6.18)."""
        state = self._state.get(block)
        if state is BlockState.DIRTY or state is BlockState.DESTAGING:
            return WriteAdmission.ABSORBED
        if state is BlockState.CLEAN or full_block:
            return WriteAdmission.DIRTIED
        return WriteAdmission.NEEDS_FILL

    # -- destage lifecycle -------------------------------------------------
    def begin_destage(self, blocks: List[int]) -> None:
        for b in blocks:
            if self._state.get(b) is not BlockState.DIRTY:
                raise CacheStateError(
                    f"block {b}: begin_destage on state "
                    f"{self._state.get(b)}"
                )
            self._state[b] = BlockState.DESTAGING

    def complete_destage(self, blocks: List[int]) -> None:
        """The destage write committed: blocks turn clean (or stay
        dirty if a racing write re-dirtied them mid-flight).  Blocks
        invalidated by a peer while in flight are simply gone."""
        for b in blocks:
            if self._state.get(b) is not BlockState.DESTAGING:
                continue  # superseded by a peer's write-invalidate
            if b in self._redirty:
                self._redirty.discard(b)
                self._state[b] = BlockState.DIRTY
                continue
            self._state[b] = BlockState.CLEAN
            self._old_known.discard(b)
            self._note_dirty(-1)
            self.stats.destaged += 1
            if self.track_blocks:
                self.stats.destaged_blocks.add(b)

    def destage_lost(self, blocks: List[int]) -> None:
        """The destage write failed unrecoverably: each block's dirty
        content is reported lost exactly once (a re-dirtied block is
        *not* lost — its newer content is still pending)."""
        for b in blocks:
            if self._state.get(b) is not BlockState.DESTAGING:
                continue
            if b in self._redirty:
                self._redirty.discard(b)
                self._state[b] = BlockState.DIRTY
                continue
            del self._state[b]
            self._old_known.discard(b)
            self.policy.on_remove(b)
            self._note_dirty(-1)
            self.stats.lost += 1
            if self.track_blocks:
                self.stats.lost_blocks.add(b)

    # -- invalidation ------------------------------------------------------
    def invalidate(self, block: int) -> bool:
        """Drop a block (returns True if it was cached).  Dirty or
        destaging copies are superseded by the invalidating writer —
        write-invalidate means the latest writer owns the block."""
        state = self._state.pop(block, None)
        if state is None:
            return False
        if state is not BlockState.CLEAN:
            self._note_dirty(-1)
        self._old_known.discard(block)
        self._redirty.discard(block)
        self.policy.on_remove(block)
        self.stats.invalidations += 1
        return True

    # -- internals ---------------------------------------------------------
    def _admit(self, block: int, state: BlockState) -> None:
        while len(self._state) >= self.capacity_blocks:
            victim = self._clean_victim()
            if victim is None:
                break  # everything pinned dirty: overcommit briefly
            del self._state[victim]
            self._old_known.discard(victim)
            self.policy.on_evict(victim)
            self.stats.evictions += 1
        self._state[block] = state
        self.policy.on_insert(block)

    def _clean_victim(self) -> Optional[int]:
        for candidate in self.policy.victims():
            if self._state.get(candidate) is BlockState.CLEAN:
                return candidate
        return None

    def _note_dirty(self, delta: int) -> None:
        self._dirty_count += delta
        if self._dirty_count > self.stats.dirty_hw:
            self.stats.dirty_hw = self._dirty_count

"""Cluster assembly: environment + hardware + CDDs + storage system."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.cdd import CooperativeDiskDriver
from repro.cluster.consistency import DistributedLockManager
from repro.cluster.transport import Transport
from repro.config import ClusterConfig, trojans_cluster
from repro.errors import ConfigurationError
from repro.hardware.disk import Disk
from repro.hardware.network import Network
from repro.hardware.node import Node
from repro.sim.core import Environment
from repro.sim.rand import RandomStreams


class Cluster:
    """A fully assembled simulated cluster.

    Owns the simulation environment, the n nodes (each with k disks),
    the switched fabric, the transport, the CDDs, and one storage system
    (set by :func:`build_cluster`).
    """

    def __init__(
        self,
        config: ClusterConfig,
        env: Optional[Environment] = None,
        scheduler_policy: Optional[str] = None,
        locking: bool = False,
        cdd_mode: str = "inline",
        cdd_service_slots: int = 8,
    ):
        config.validate()
        self.config = config
        self.env = env or Environment()
        self.rand = RandomStreams(config.seed)
        geo = config.geometry
        self.network = Network(self.env, geo.n, config.network)
        # Node j drives disks j, j+n, j+2n, ... (paper's Fig. 3).
        self.nodes: List[Node] = [
            Node(
                self.env,
                config,
                node_id=j,
                disk_ids=[j + g * geo.n for g in range(geo.k)],
                scheduler_policy=scheduler_policy,
            )
            for j in range(geo.n)
        ]
        # Attach each node's NIC: the node fast-forward predicate needs
        # a local view of in-flight network traffic.
        for node, nic in zip(self.nodes, self.network.nics):
            node.nic = nic
        self.transport = Transport(self.env, self.network, self.nodes, config)
        self.lock_manager = (
            DistributedLockManager(self.env, self.transport, geo.n)
            if locking
            else None
        )
        if cdd_mode not in ("inline", "server"):
            raise ConfigurationError(
                f"unknown cdd_mode {cdd_mode!r}; use 'inline' or 'server'"
            )
        self.cdd_mode = cdd_mode
        self.manager_servers = None
        if cdd_mode == "server":
            from repro.cluster.manager import StorageManagerServer

            self.manager_servers = [
                StorageManagerServer(node, service_slots=cdd_service_slots)
                for node in self.nodes
            ]
        self.cdds: List[CooperativeDiskDriver] = [
            CooperativeDiskDriver(
                node,
                self.nodes,
                self.transport,
                self.lock_manager,
                manager_servers=self.manager_servers,
            )
            for node in self.nodes
        ]
        self._disk_index: Dict[int, Disk] = {}
        for node in self.nodes:
            for disk in node.disks:
                self._disk_index[disk.disk_id] = disk
        self.storage = None  # set by build_cluster

    # -- convenience -------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_disks(self) -> int:
        return len(self._disk_index)

    @property
    def now(self) -> float:
        return self.env.now

    def disk(self, disk_id: int) -> Disk:
        """Any disk of the array by its global id."""
        return self._disk_index[disk_id]

    def all_disks(self) -> List[Disk]:
        return [self._disk_index[d] for d in sorted(self._disk_index)]

    def run(self, until=None):
        """Advance the simulation (delegates to the environment)."""
        return self.env.run(until)

    # -- fleet statistics -----------------------------------------------------
    def disk_utilization(self) -> float:
        """Mean busy fraction across all disks."""
        disks = self.all_disks()
        if not disks:
            return 0.0
        return sum(d.utilization() for d in disks) / len(disks)

    def stats(self) -> dict:
        """A snapshot of cluster-wide counters for reports."""
        return {
            "time": self.env.now,
            "disk_utilization": self.disk_utilization(),
            "network_utilization": self.network.aggregate_utilization(),
            "messages": self.transport.stats.summary(),
        }


def build_cluster(
    config: Optional[ClusterConfig] = None,
    architecture: str = "raidx",
    env: Optional[Environment] = None,
    scheduler_policy: Optional[str] = None,
    locking: bool = False,
    cdd_mode: str = "inline",
    cdd_service_slots: int = 8,
    **system_kwargs,
) -> Cluster:
    """Assemble a cluster and attach the requested storage architecture.

    Parameters
    ----------
    config:
        Hardware/geometry configuration; defaults to the 12-node Trojans
        preset.
    architecture:
        One of ``raid0 | raid5 | raid10 | chained | raidx | nfs``.
    scheduler_policy:
        Per-disk queue discipline (``fifo | sstf | look``).
    locking:
        Enable the CDD lock-group protocol on writes.
    cdd_mode:
        ``"inline"`` (default) executes remote manager work inline —
        timing-equivalent to an unbounded server; ``"server"`` runs an
        explicit storage-manager process per node with
        ``cdd_service_slots`` concurrent service slots (server-side
        queueing becomes visible).
    system_kwargs:
        Extra arguments for the storage system (e.g. ``mirror_policy``
        for RAID-x, ``transfer_size`` for NFS).
    """
    from repro.cluster.systems import ARCHITECTURES, NfsSystem

    config = config or trojans_cluster()
    try:
        system_cls = ARCHITECTURES[architecture.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown architecture {architecture!r}; "
            f"choose from {sorted(ARCHITECTURES)}"
        ) from None
    cluster = Cluster(
        config,
        env=env,
        scheduler_policy=scheduler_policy,
        locking=locking,
        cdd_mode=cdd_mode,
        cdd_service_slots=cdd_service_slots,
    )
    if issubclass(system_cls, NfsSystem):
        cluster.storage = system_cls(cluster, **system_kwargs)
    else:
        cluster.storage = system_cls(cluster, locking=locking, **system_kwargs)
    return cluster

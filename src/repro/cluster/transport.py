"""Transport: message delivery with endpoint protocol-CPU charging.

A message from node A to node B costs, in order:

1. protocol CPU at A (per-message + per-KB, charged to A's CPU queue),
2. the fabric path (A's NIC TX → switch → B's NIC RX),
3. protocol CPU at B.

Loopback messages skip the fabric and charge a single memcpy instead —
the CDD's kernel-level "no cross-space system calls" fast path.
"""

from __future__ import annotations

from typing import List

from repro.cluster.message import Message, MessageKind, MessageStats
from repro.config import ClusterConfig
from repro.hardware.network import Network
from repro.hardware.node import Node
from repro.io.context import PieceContext
from repro.obs import runtime as _obs
from repro.obs.trace import CPU_PROTO
from repro.sim.core import Environment


class Transport:
    """Message-passing substrate shared by all CDDs of a cluster."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        nodes: List[Node],
        config: ClusterConfig,
    ):
        self.env = env
        self.network = network
        self.nodes = nodes
        self.config = config
        self.stats = MessageStats()

    def message(self, kind: MessageKind, src: int, dst: int, nbytes: int,
                trace=None, ctx: PieceContext | None = None):
        """Process generator: deliver one message end to end.

        ``ctx`` carries the issuing plan op's execution context; the
        trace id is resolved from it when no explicit ``trace`` is
        given, so spans recorded on either endpoint tag themselves with
        the originating logical request.
        """
        if trace is None and ctx is not None:
            trace = ctx.trace
        msg = Message(kind=kind, src=src, dst=dst, nbytes=nbytes)
        self.stats.record(msg)
        net = self.config.network
        tracer = _obs.TRACER
        if src == dst:
            # Kernel-internal hand-off: one memory copy, no protocol stack.
            t0 = self.env.now
            yield self.nodes[src].cpu.memcpy(nbytes)
            if tracer.enabled:
                tracer.record(
                    CPU_PROTO, f"node{src}.cpu", t0, self.env.now,
                    trace=trace, msg=kind.name, loopback=True,
                )
            return
        cost = net.message_cpu_cost(nbytes)
        t0 = self.env.now
        yield self.nodes[src].cpu.busy(cost)
        if tracer.enabled:
            tracer.record(
                CPU_PROTO, f"node{src}.cpu", t0, self.env.now,
                trace=trace, msg=kind.name,
            )
        yield from self.network.send(src, dst, nbytes, trace=trace)
        t1 = self.env.now
        yield self.nodes[dst].cpu.busy(cost)
        if tracer.enabled:
            tracer.record(
                CPU_PROTO, f"node{dst}.cpu", t1, self.env.now,
                trace=trace, msg=kind.name,
            )

    def send(self, kind: MessageKind, src: int, dst: int, nbytes: int,
             trace=None, ctx: PieceContext | None = None):
        """Run :meth:`message` as a background process; returns its event."""
        return self.env.process(
            self.message(kind, src, dst, nbytes, trace, ctx)
        )

"""Explicit storage-manager servers (the CDD's manager module as a
first-class process).

By default the simulation executes a remote request's manager work
inline in the requesting process against the owner node's shared
resources — timing-equivalent to a fully concurrent server and cheap to
simulate.  This module provides the *explicit* alternative: each node
runs a dispatcher process over an inbox, serving requests with a
bounded number of service slots (kernel worker threads).  With
``service_slots`` small, server-side queueing becomes visible — the
knob the inline model cannot express.

Enable via ``build_cluster(..., cdd_mode="server")`` (optionally
``cdd_service_slots=N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.resources import Resource, Store


@dataclass
class ManagerRequest:
    """One queued block operation at a storage manager."""

    op: str
    disk: int
    offset: int
    nbytes: int
    priority: int
    client: int
    done: Event = field(repr=False, default=None)  # type: ignore[assignment]
    enqueued_at: float = 0.0
    trace: Optional[int] = None


class StorageManagerServer:
    """A node's storage-manager: inbox + bounded worker pool."""

    def __init__(self, node, service_slots: int = 8):
        if service_slots < 1:
            raise ValueError("need at least one service slot")
        self.node = node
        self.env: Environment = node.env
        self.service_slots = service_slots
        self.inbox: Store = Store(self.env)
        self._slots = Resource(self.env, capacity=service_slots)
        self.served = 0
        self.max_queue_seen = 0
        self.total_wait = 0.0
        self._dispatcher = self.env.process(self._dispatch())

    # -- client-facing ---------------------------------------------------
    def submit(
        self, op: str, disk: int, offset: int, nbytes: int,
        priority: int = 0, client: int = -1, trace: Optional[int] = None,
    ) -> Event:
        """Queue a request; the returned event triggers when served."""
        req = ManagerRequest(
            op=op,
            disk=disk,
            offset=offset,
            nbytes=nbytes,
            priority=priority,
            client=client,
            done=self.env.event(),
            enqueued_at=self.env.now,
            trace=trace,
        )
        self.inbox.put(req)
        self.max_queue_seen = max(self.max_queue_seen, len(self.inbox))
        return req.done

    @property
    def queue_length(self) -> int:
        return len(self.inbox)

    def mean_wait(self) -> float:
        return self.total_wait / self.served if self.served else 0.0

    # -- server side -----------------------------------------------------
    def _dispatch(self):
        while True:
            req = yield self.inbox.get()
            # Claim a service slot, then serve concurrently.
            slot = self._slots.request()
            yield slot
            self.env.process(self._serve(req, slot))

    def _serve(self, req: ManagerRequest, slot):
        try:
            self.total_wait += self.env.now - req.enqueued_at
            yield self.node.cpu.driver_entry(kernel_level=True)
            yield from self.node.disk_io(
                req.disk, req.op, req.offset, req.nbytes, req.priority,
                trace=req.trace,
            )
            self.served += 1
            req.done.succeed()
        except Exception as exc:  # disk failures propagate to the client
            req.done.fail(exc)
        finally:
            self._slots.release(slot)

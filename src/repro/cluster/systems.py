"""Storage systems: thin planner-binding shims over the shared engine.

Each architecture binds a pure planner (:mod:`repro.raid.planners`) —
which turns logical requests into declarative
:class:`~repro.raid.plan.IOPlan` values — to the one shared
:class:`~repro.cluster.engine.ExecutionEngine` that runs plans through
the CDDs.  The per-architecture write protocols of the paper's Table 2
(RAID-0 parallel stripes, RAID-10 write-through mirror waves, chained
declustering, RAID-5 read-modify-write vs. full-stripe parity, RAID-x
orthogonal data + background clustered mirror images) are therefore
plan-construction decisions — see the planner classes for the details.
NFS, the central-server baseline, keeps its own RPC loop here.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.cache import CacheConfig, cache_enabled
from repro.cluster.cache_stage import CacheStage
from repro.cluster.engine import ExecutionEngine
from repro.cluster.message import HEADER_BYTES, MessageKind
from repro.cluster.sios import SingleIOSpace
from repro.errors import ConfigurationError, DegradedModeError
from repro.obs import runtime as _obs
from repro.obs.trace import REQUEST
from repro.raid import make_layout
from repro.raid.layout import Layout
from repro.raid.mirror_policy import MirrorPolicy
from repro.raid.planners import (
    ChainedPlanner,
    Planner,
    Raid0Planner,
    Raid10Planner,
    Raid5Planner,
    RaidxPlanner,
)
from repro.sim.events import Event
from repro.units import KiB


def _node_ff_default() -> bool:
    """The node fast-forward module default, read lazily so test
    monkeypatching of ``repro.hardware.node.NODE_FAST_FORWARD`` is
    honoured at system construction time."""
    from repro.hardware import node as _node_mod

    return _node_mod.NODE_FAST_FORWARD


class StorageSystem:
    """Common interface of all storage back-ends."""

    name = "abstract"
    #: Whether the back-end stores redundancy (see :meth:`fail_disk`).
    redundant = True

    def __init__(self, cluster):
        self.cluster = cluster
        self.env = cluster.env
        self.failed_disks: Set[int] = set()
        # Logical bytes moved, split by op, for bandwidth accounting.
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    @property
    def capacity(self) -> int:
        raise NotImplementedError

    @property
    def block_size(self) -> int:
        raise NotImplementedError

    def io(self, client: int, op: str, offset: int, nbytes: int):
        """Process generator: execute one logical request end to end."""
        raise NotImplementedError

    def submit(self, client: int, op: str, offset: int, nbytes: int) -> Event:
        """Run :meth:`io` as a process; returns its completion event."""
        return self.env.process(self.io(client, op, offset, nbytes))

    def read(self, client: int, offset: int, nbytes: int) -> Event:
        return self.submit(client, "read", offset, nbytes)

    def write(self, client: int, offset: int, nbytes: int) -> Event:
        return self.submit(client, "write", offset, nbytes)

    def drain(self):
        """Process generator: wait for background work (no-op by default)."""
        return
        yield  # pragma: no cover

    def fail_disk(self, disk: int) -> None:
        """Fail a disk and remember it.  Non-redundant back-ends still
        mark the disk (subsequent I/O behaves consistently) but raise a
        typed :class:`DegradedModeError` — the failure is immediately
        unrecoverable."""
        self.failed_disks.add(disk)
        self.cluster.disk(disk).fail()
        if not self.redundant:
            raise DegradedModeError(self.name, disk)

    def repair_disk(self, disk: int) -> None:
        self.failed_disks.discard(disk)
        self.cluster.disk(disk).repair()


class DistributedArraySystem(StorageSystem):
    """Shared shim for the serverless (CDD-based) architectures: owns
    the layout/planner binding and configuration validation; all request
    execution lives in the :class:`ExecutionEngine`.

    ``read_policy`` selects among a block's surviving copies:
    ``"static"`` follows the layout's preference order (the paper's
    behaviour); ``"shortest_queue"`` picks the shallowest disk queue —
    the §7 load balancing, quantified by benchmark A5.
    """

    layout_name = "raid0"

    #: shortest_queue hysteresis: divert from the preferred copy only
    #: when the alternative's queue is this much shallower (a diverted
    #: read usually breaks the other disk's sequential run).
    read_balance_margin = 2

    def __init__(
        self,
        cluster,
        locking: bool = False,
        read_policy: str = "static",
        cache: CacheConfig | None = None,
    ):
        """``cache`` opts this system into the buffer-cache layer
        (DESIGN §6.17).  The default — no cache — leaves the request
        path byte-identical to the pre-cache engine, and the
        ``REPRO_CACHE`` kill switch forces that even when a config is
        passed (the CI cache-equivalence job runs under it)."""
        super().__init__(cluster)
        cfg = cluster.config
        self.layout: Layout = make_layout(
            self.layout_name,
            n_disks=cfg.geometry.total_disks,
            block_size=cfg.geometry.block_size,
            disk_capacity=cfg.disk.capacity_bytes,
            stripe_width=cfg.geometry.n,
        )
        self.layout.verify_invariants()
        self.sios = SingleIOSpace(self.layout)
        self.locking = locking
        if read_policy not in ("static", "shortest_queue"):
            raise ConfigurationError(f"unknown read policy {read_policy!r}")
        self.read_policy = read_policy
        self.planner: Planner = self._make_planner()
        self.engine = ExecutionEngine(self)
        self.cache_config = (
            cache if (cache is not None and cache_enabled()) else None
        )
        if self.cache_config is not None:
            self.engine.cache = CacheStage(self.engine, self.cache_config)
        #: Node-level fast-forward kill-switch.  Read from the module
        #: flag at construction (so A/B runs flip ``REPRO_NODE_FF``
        #: before building); cleared permanently by the first disk
        #: failure or by a fault injector, whose mid-window failures the
        #: closed form cannot reproduce exactly (DESIGN §6.14).
        self.node_ff = _node_ff_default()

    def _make_planner(self) -> Planner:
        raise NotImplementedError

    @property
    def redundant(self) -> bool:  # type: ignore[override]
        return self.layout.redundant

    @property
    def capacity(self) -> int:
        return self.sios.capacity

    @property
    def block_size(self) -> int:
        return self.sios.block_size

    def io(self, client: int, op: str, offset: int, nbytes: int):
        return self.engine.run(client, op, offset, nbytes)

    def submit(self, client: int, op: str, offset: int, nbytes: int) -> Event:
        """Fast-forward a conflict-free request, else run the full path."""
        if self.node_ff:
            engine = self.engine
            done = engine.try_fast_submit(client, op, offset, nbytes)
            if done is not None:
                return done
            engine.phase_submits += 1
            proc = self.env.process(engine.run(client, op, offset, nbytes))
            engine.phase_inflight[client] += 1
            proc.callbacks.append(engine._phase_release[client])
            return proc
        self.engine.phase_submits += 1
        return self.env.process(self.io(client, op, offset, nbytes))

    def fail_disk(self, disk: int) -> None:
        # A failure landing inside a fast-forward window would surface
        # at the closed-form completion time instead of at dispatch;
        # keep every later request on the exact event-driven path.
        self.node_ff = False
        super().fail_disk(disk)

    def drain(self):
        return self.engine.drain()

    @property
    def pending_background_flushes(self) -> int:
        return self.engine.pending_background_flushes

    def _read_source(self, client, piece):  # None = reconstruct
        return self.engine.read_source(client, piece)


class Raid0System(DistributedArraySystem):
    """Striping only — the bandwidth ceiling, zero fault tolerance."""

    name = "raid0"
    layout_name = "raid0"

    def _make_planner(self) -> Planner:
        return Raid0Planner(self.layout)


class Raid10System(DistributedArraySystem):
    """Striped mirroring over disk pairs, write-through mirror commit."""

    name = "raid10"
    layout_name = "raid10"

    def _make_planner(self) -> Planner:
        return Raid10Planner(self.layout)


class ChainedSystem(DistributedArraySystem):
    """Chained declustering: mirror of disk d lives on disk d+1."""

    name = "chained"
    layout_name = "chained"

    def _make_planner(self) -> Planner:
        return ChainedPlanner(self.layout)


class Raid5System(DistributedArraySystem):
    """Rotating parity with the small-write read-modify-write penalty."""

    name = "raid5"
    layout_name = "raid5"

    def __init__(
        self,
        cluster,
        locking: bool = False,
        full_stripe_optimization: bool = False,
        batch_rmw: bool = False,
        cache: CacheConfig | None = None,
    ):
        """``full_stripe_optimization`` computes parity for aligned
        full-stripe writes without pre-reads; ``batch_rmw`` amortizes
        one parity read/write over a request's blocks in a stripe.
        Both default off: the paper's measured software RAID-5 was
        per-block read-modify-write bound (Table 3); benchmark A4
        quantifies what each knob recovers."""
        self.full_stripe_optimization = full_stripe_optimization
        self.batch_rmw = batch_rmw
        super().__init__(cluster, locking, cache=cache)

    def _make_planner(self) -> Planner:
        return Raid5Planner(
            self.layout,
            full_stripe_optimization=self.full_stripe_optimization,
            batch_rmw=self.batch_rmw,
        )


class RaidxSystem(DistributedArraySystem):
    """RAID-x: orthogonal striping with background clustered mirroring."""

    name = "raidx"
    layout_name = "raidx"

    def __init__(self, cluster, locking: bool = False,
                 mirror_policy: MirrorPolicy | str = MirrorPolicy.BACKGROUND,
                 read_local_mirror: bool = False,
                 read_policy: str = "static",
                 cache: CacheConfig | None = None):
        self.mirror_policy = MirrorPolicy.parse(mirror_policy)
        self.read_local_mirror = read_local_mirror
        super().__init__(cluster, locking, read_policy=read_policy,
                         cache=cache)

    def _make_planner(self) -> Planner:
        return RaidxPlanner(
            self.layout,
            mirror_policy=self.mirror_policy,
            read_local_mirror=self.read_local_mirror,
        )

    #: Write-behind mirror state lives on the engine's MirrorState;
    #: these names stay readable on the system object for callers.
    _MIRROR_ATTRS = frozenset({
        "_pending_flushes", "_dirty_groups", "_queued_extents",
        "background_bytes", "coalesced_extents", "absorbed_rewrites",
        "vulnerability_windows",
    })

    def __getattr__(self, name: str):
        if name in RaidxSystem._MIRROR_ATTRS:
            return getattr(self.engine.mirror, name.lstrip("_"))
        raise AttributeError(name)

    def vulnerability_stats(self) -> dict:
        """Mean/max/p95 of the image-flush exposure windows (seconds)."""
        return self.engine.vulnerability_stats()


class NfsSystem(StorageSystem):
    """Central-server baseline: the server (node 0 by default) stripes
    its export RAID-0 style over its local disks; transfers move in
    rsize/wsize chunks (8 KiB, the NFSv2-over-UDP default of the
    paper's era), each a full RPC with user-level processing at both
    ends."""

    name = "nfs"
    redundant = False

    def __init__(
        self, cluster, server: int = 0, transfer_size: int = 8 * KiB,
        server_cache_mb: int = 128, stable_writes: bool = True,
    ):
        """``server_cache_mb`` models the server's buffer cache (0 =
        fully cold server); writes are stable per NFSv2 semantics.
        ``stable_writes=False`` models NFSv3 asynchronous writes
        (chunks pipeline like reads, commit deferred)."""
        super().__init__(cluster)
        if transfer_size <= 0:
            raise ConfigurationError("transfer size must be positive")
        self.server = server
        self.transfer_size = transfer_size
        self.stable_writes = stable_writes
        cfg = cluster.config
        self._server_disks = list(cluster.nodes[server].disk_ids)
        self._block_size = cfg.geometry.block_size
        self._rows = cfg.disk.capacity_bytes // self._block_size
        from repro.cache import BlockCache

        cache_blocks = (server_cache_mb * 1_000_000) // self._block_size
        self._cache = (
            BlockCache(server, capacity_blocks=cache_blocks)
            if cache_blocks > 0
            else None
        )

    @property
    def capacity(self) -> int:
        return self._rows * self._block_size * len(self._server_disks)

    @property
    def block_size(self) -> int:
        return self._block_size

    def _server_location(self, block: int) -> Tuple[int, int]:
        """(global disk id, byte offset) of an export block — RAID-0
        striping across the server's local disks."""
        width = len(self._server_disks)
        disk = self._server_disks[block % width]
        return disk, (block // width) * self._block_size

    def io(self, client: int, op: str, offset: int, nbytes: int):
        if offset < 0 or nbytes < 0 or offset + nbytes > self.capacity:
            raise ConfigurationError("request outside the NFS export")
        tracer = _obs.TRACER
        trace = tracer.new_trace() if tracer.enabled else None
        t0 = self.env.now
        pos = offset
        end = offset + nbytes
        if op == "write" and self.stable_writes:
            # NFSv2 stable writes: each chunk commits synchronously
            # before the next is issued — no client-side write-behind.
            while pos < end:
                take = min(self.transfer_size, end - pos)
                yield from self._rpc(client, op, pos, take, trace)
                pos += take
        else:
            chunks = []
            while pos < end:
                take = min(self.transfer_size, end - pos)
                chunks.append(
                    self.env.process(self._rpc(client, op, pos, take, trace))
                )
                pos += take
            if chunks:
                yield self.env.all_of(chunks)
        if op == "read":
            self.bytes_read += nbytes
        else:
            self.bytes_written += nbytes
        if tracer.enabled:
            tracer.record(
                REQUEST, f"node{client}.request", t0, self.env.now,
                trace=trace, op=op, offset=offset, nbytes=nbytes,
                arch=self.name,
            )

    def _rpc(self, client: int, op: str, offset: int, nbytes: int,
             trace=None):
        transport = self.cluster.transport
        server_node = self.cluster.nodes[self.server]
        client_node = self.cluster.nodes[client]
        # Client-side user-level RPC processing.
        yield client_node.cpu.driver_entry(kernel_level=False)
        req_size = HEADER_BYTES + (nbytes if op == "write" else 0)
        yield from transport.message(
            MessageKind.RPC_REQ, client, self.server, req_size, trace=trace
        )
        # Server-side user-level processing + local disk I/O.
        yield server_node.cpu.driver_entry(kernel_level=False)
        from repro.io.request import split_into_blocks

        for block, intra, take in split_into_blocks(
            offset, nbytes, self.block_size
        ):
            if op == "read" and self._cache is not None:
                if self._cache.lookup(block):
                    # Buffer-cache hit: a memory copy instead of disk I/O.
                    yield server_node.cpu.memcpy(take)
                    continue
            disk, disk_off = self._server_location(block)
            yield from server_node.disk_io(
                disk, op, disk_off + intra, take, trace=trace
            )
            if self._cache is not None:
                self._cache.insert(block)
        reply_size = HEADER_BYTES + (nbytes if op == "read" else 0)
        yield from transport.message(
            MessageKind.RPC_REPLY, self.server, client, reply_size,
            trace=trace,
        )


ARCHITECTURES = {
    "raid0": Raid0System,
    "raid5": Raid5System,
    "raid10": Raid10System,
    "chained": ChainedSystem,
    "raidx": RaidxSystem,
    "nfs": NfsSystem,
}

"""Storage-system protocols: how each architecture executes reads/writes.

Each system turns a logical request on the single I/O space into block
operations through the CDDs (or, for NFS, through RPCs to the central
server), reproducing the per-architecture costs of the paper's Table 2:

================  =========================================================
Architecture      Write protocol
================  =========================================================
RAID-0            n parallel foreground block writes (no redundancy)
RAID-10           data + pair-mirror both foreground (2 ops per block)
Chained decl.     data + chained mirror both foreground (2 ops per block)
RAID-5            full stripe: XOR parity in memory, n parallel writes;
                  partial: read-modify-write (old data + old parity reads,
                  2 XOR passes, data + parity writes) per stripe
RAID-x (OSM)      n parallel foreground data writes; images *clustered*
                  into long extents and flushed in the background
NFS               every rsize/wsize chunk is a user-level RPC to the
                  central server node
================  =========================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.cdd import CooperativeDiskDriver
from repro.cluster.message import (
    HEADER_BYTES,
    MessageKind,
)
from repro.cluster.sios import Piece, SingleIOSpace
from repro.errors import ConfigurationError, DataLossError
from repro.obs import runtime as _obs
from repro.obs.trace import LOCK_WAIT, MIRROR_FLUSH, REQUEST
from repro.raid import make_layout
from repro.raid.layout import Layout, Placement
from repro.raid.mirror_policy import MirrorPolicy
from repro.raid.raid5 import Raid5Layout
from repro.raid.raidx import RaidxLayout
from repro.sim.events import Event
from repro.sim.sync import Mutex
from repro.units import KiB


class StorageSystem:
    """Common interface of all storage back-ends."""

    name = "abstract"

    def __init__(self, cluster):
        self.cluster = cluster
        self.env = cluster.env
        self.failed_disks: Set[int] = set()
        #: Logical bytes moved, split by op (for bandwidth accounting).
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    # -- capacity / addressing ------------------------------------------
    @property
    def capacity(self) -> int:
        raise NotImplementedError

    @property
    def block_size(self) -> int:
        raise NotImplementedError

    # -- I/O ---------------------------------------------------------------
    def io(self, client: int, op: str, offset: int, nbytes: int):
        """Process generator: execute one logical request end to end."""
        raise NotImplementedError

    def submit(self, client: int, op: str, offset: int, nbytes: int) -> Event:
        """Run :meth:`io` as a process; returns its completion event."""
        return self.env.process(self.io(client, op, offset, nbytes))

    def read(self, client: int, offset: int, nbytes: int) -> Event:
        return self.submit(client, "read", offset, nbytes)

    def write(self, client: int, offset: int, nbytes: int) -> Event:
        return self.submit(client, "write", offset, nbytes)

    def drain(self):
        """Process generator: wait for background work (no-op by default)."""
        return
        yield  # pragma: no cover

    # -- fault handling ----------------------------------------------------
    def fail_disk(self, disk: int) -> None:
        """Fail a disk at the hardware level and remember it."""
        self.failed_disks.add(disk)
        self.cluster.disk(disk).fail()

    def repair_disk(self, disk: int) -> None:
        self.failed_disks.discard(disk)
        self.cluster.disk(disk).repair()


class DistributedArraySystem(StorageSystem):
    """Shared machinery for the serverless (CDD-based) architectures.

    ``read_policy`` selects among a block's surviving copies:
    ``"static"`` follows the layout's preference order (the paper's
    behaviour); ``"shortest_queue"`` picks the copy whose disk currently
    has the shallowest queue — the I/O load balancing the paper lists as
    next-phase work (§7).  Benchmark A5 quantifies it.
    """

    layout_name = "raid0"

    def __init__(
        self,
        cluster,
        locking: bool = False,
        read_policy: str = "static",
    ):
        super().__init__(cluster)
        cfg = cluster.config
        self.layout: Layout = make_layout(
            self.layout_name,
            n_disks=cfg.geometry.total_disks,
            block_size=cfg.geometry.block_size,
            disk_capacity=cfg.disk.capacity_bytes,
            stripe_width=cfg.geometry.n,
        )
        self.layout.verify_invariants()
        self.sios = SingleIOSpace(self.layout)
        self.locking = locking
        if read_policy not in ("static", "shortest_queue"):
            raise ConfigurationError(
                f"unknown read policy {read_policy!r}"
            )
        self.read_policy = read_policy

    #: shortest_queue hysteresis: divert from the preferred copy only
    #: when the alternative's disk queue is this much shallower — a
    #: diverted read usually breaks the alternative disk's sequential
    #: run (RAID-x images live in the far mirror half), so small queue
    #: differences are not worth the seek.
    read_balance_margin = 2

    def _balance(self, sources: List[Placement]) -> Optional[Placement]:
        """Apply the read policy to an ordered list of surviving copies."""
        if not sources:
            return None
        if self.read_policy == "static" or len(sources) == 1:
            return sources[0]
        preferred = sources[0]
        depth0 = self.cluster.disk(preferred.disk).queue_depth
        best, best_depth = preferred, depth0
        for alt in sources[1:]:
            d = self.cluster.disk(alt.disk).queue_depth
            if d < best_depth:
                best, best_depth = alt, d
        if best is preferred:
            return preferred
        return best if depth0 - best_depth >= self.read_balance_margin \
            else preferred

    @property
    def capacity(self) -> int:
        return self.sios.capacity

    @property
    def block_size(self) -> int:
        return self.sios.block_size

    def cdd(self, node: int) -> CooperativeDiskDriver:
        return self.cluster.cdds[node]

    # -- top-level request path ---------------------------------------------
    def io(self, client: int, op: str, offset: int, nbytes: int):
        pieces = self.sios.pieces(offset, nbytes)
        if not pieces:
            return
        tracer = _obs.TRACER
        trace = tracer.new_trace() if tracer.enabled else None
        t0 = self.env.now
        handle = None
        if self.locking and op == "write":
            handle = yield from self.cdd(client).acquire_write_locks(
                [p.block for p in pieces], trace=trace
            )
        try:
            if op == "read":
                yield from self._read(client, pieces, trace)
                self.bytes_read += nbytes
            else:
                yield from self._write(client, pieces, trace)
                self.bytes_written += nbytes
        finally:
            if handle is not None:
                yield from self.cdd(client).release_write_locks(
                    handle, trace=trace
                )
            if tracer.enabled:
                tracer.record(
                    REQUEST, f"node{client}.request", t0, self.env.now,
                    trace=trace, op=op, offset=offset, nbytes=nbytes,
                    arch=self.name,
                )

    # -- reads ----------------------------------------------------------------
    def _read_source(self, client: int, piece: Piece) -> Optional[Placement]:
        """Pick the placement to serve a read piece (None = reconstruct)."""
        sources = self.layout.surviving_read_sources(
            piece.block, self.failed_disks
        )
        return self._balance(sources)

    def _read(self, client: int, pieces: List[Piece], trace=None):
        events = [
            self.env.process(self._read_piece(client, piece, trace))
            for piece in pieces
        ]
        if events:
            yield self.env.all_of(events)

    def _read_piece(self, client: int, piece: Piece, trace=None):
        """Read one piece, retrying on mid-flight disk failures.

        A request queued on a disk that fails before service returns EIO;
        real drivers then mark the disk bad and re-issue against a
        surviving copy — which is what the retry loop does (the failed
        set grows on every iteration, so it terminates)."""
        from repro.errors import DiskFailedError

        while True:
            src = self._read_source(client, piece)
            if src is None:
                yield from self._reconstruct_read(client, piece, trace)
                return
            try:
                yield from self.cdd(client).block_io(
                    "read", src.disk, src.offset + piece.intra, piece.nbytes,
                    trace=trace,
                )
                return
            except DiskFailedError as e:
                self.failed_disks.add(e.disk_id)

    def _reconstruct_read(self, client: int, piece: Piece, trace=None):
        """Fallback when no copy survives (overridden by RAID-5)."""
        raise DataLossError(
            f"block {piece.block}: all copies on failed disks "
            f"{sorted(self.failed_disks)}"
        )
        yield  # pragma: no cover

    # -- writes ----------------------------------------------------------------
    def _write(self, client: int, pieces: List[Piece], trace=None):
        raise NotImplementedError
        yield  # pragma: no cover

    def _write_piece_to(
        self, client: int, placement: Placement, piece: Piece, trace=None
    ) -> Event:
        """Write one piece at a given placement (helper)."""
        return self.cdd(client).submit(
            "write", placement.disk, placement.offset + piece.intra,
            piece.nbytes, trace=trace,
        )

    def _write_piece_tolerant(
        self, client: int, placement: Placement, piece: Piece, trace=None
    ) -> Event:
        """Like :meth:`_write_piece_to`, but a disk dying under the write
        marks it failed instead of crashing — redundancy (the mirror copy
        or image) keeps the block recoverable."""
        from repro.errors import DiskFailedError

        def body():
            try:
                yield from self.cdd(client).block_io(
                    "write",
                    placement.disk,
                    placement.offset + piece.intra,
                    piece.nbytes,
                    trace=trace,
                )
            except DiskFailedError as e:
                self.failed_disks.add(e.disk_id)

        return self.env.process(body())


class Raid0System(DistributedArraySystem):
    """Striping only — the bandwidth ceiling, zero fault tolerance."""

    name = "raid0"
    layout_name = "raid0"

    def _write(self, client: int, pieces: List[Piece], trace=None):
        events = [
            self._write_piece_to(client, p.placement, p, trace)
            for p in pieces
        ]
        yield self.env.all_of(events)


class _MirroredSystem(DistributedArraySystem):
    """Foreground mirroring shared by RAID-10 and chained declustering.

    ``serial_mirror`` commits the mirror copy after the primary completes
    (write-through, as the era's simple mirroring drivers did) instead of
    issuing both concurrently.  RAID-x's advantage over these systems is
    precisely that its image update is deferred entirely.
    """

    serial_mirror = False

    def _write(self, client: int, pieces: List[Piece], trace=None):
        if self.serial_mirror:
            yield from self._write_serial(client, pieces, trace)
            return
        events = []
        for p in pieces:
            copies = [p.placement] + self.layout.redundancy_locations(p.block)
            alive = [c for c in copies if c.disk not in self.failed_disks]
            if not alive:
                raise DataLossError(
                    f"block {p.block}: every copy on a failed disk"
                )
            for c in alive:
                events.append(
                    self._write_piece_tolerant(client, c, p, trace)
                )
        yield self.env.all_of(events)
        self._check_copies_survive(pieces)

    def _check_copies_survive(self, pieces: List[Piece]) -> None:
        for p in pieces:
            copies = [p.placement] + self.layout.redundancy_locations(p.block)
            if all(c.disk in self.failed_disks for c in copies):
                raise DataLossError(
                    f"block {p.block}: every copy on a failed disk"
                )

    def _write_serial(self, client: int, pieces: List[Piece], trace=None):
        for p in pieces:
            copies = [p.placement] + self.layout.redundancy_locations(p.block)
            if all(c.disk in self.failed_disks for c in copies):
                raise DataLossError(
                    f"block {p.block}: every copy on a failed disk"
                )
        # Primary wave first, mirror wave after it commits.
        for copies in (
            [(p, p.placement) for p in pieces],
            [
                (p, m)
                for p in pieces
                for m in self.layout.redundancy_locations(p.block)
            ],
        ):
            events = []
            for p, c in copies:
                if c.disk in self.failed_disks:
                    continue
                events.append(
                    self._write_piece_tolerant(client, c, p, trace)
                )
            if events:
                yield self.env.all_of(events)
        self._check_copies_survive(pieces)


class Raid10System(_MirroredSystem):
    """Striped mirroring over disk pairs; write-through mirror commit
    (matching the measured write latencies the paper reports, which
    trail RAID-x by ~2× on small writes)."""

    name = "raid10"
    layout_name = "raid10"
    serial_mirror = True


class ChainedSystem(_MirroredSystem):
    """Chained declustering: mirror of disk d lives on disk d+1."""

    name = "chained"
    layout_name = "chained"


class Raid5System(DistributedArraySystem):
    """Rotating parity with the small-write read-modify-write penalty."""

    name = "raid5"
    layout_name = "raid5"

    def __init__(
        self,
        cluster,
        locking: bool = False,
        full_stripe_optimization: bool = False,
        batch_rmw: bool = False,
    ):
        """RAID-5 write-path fidelity knobs.

        ``full_stripe_optimization`` gathers aligned full-stripe writes
        and computes parity without pre-reads (TickerTAIP-style).
        ``batch_rmw`` amortizes one parity read/write over all the blocks
        a request modifies in a stripe.  Both are **off by default**
        because the paper's measured software RAID-5 (Linux 2.2 era) was
        per-block read-modify-write bound even for large writes — its
        large-write bandwidth trailed RAID-x by 5-10× (Table 3).
        Benchmark A4 quantifies what each optimization recovers."""
        super().__init__(cluster, locking)
        self.full_stripe_optimization = full_stripe_optimization
        self.batch_rmw = batch_rmw
        self._stripe_locks: Dict[int, Mutex] = {}

    def _stripe_lock(self, stripe: int) -> Mutex:
        m = self._stripe_locks.get(stripe)
        if m is None:
            m = Mutex(self.env)
            self._stripe_locks[stripe] = m
        return m

    # -- reads (degraded path) ---------------------------------------------
    def _reconstruct_read(self, client: int, piece: Piece, trace=None):
        """Rebuild a lost block from the surviving stripe + parity."""
        layout: Raid5Layout = self.layout  # type: ignore[assignment]
        stripe = layout.stripe_of(piece.block)
        reads = []
        for b in layout.stripe_blocks(stripe):
            if b == piece.block:
                continue
            loc = layout.data_location(b)
            if loc.disk in self.failed_disks:
                raise DataLossError(
                    f"stripe {stripe}: second failure at disk {loc.disk}"
                )
            reads.append(
                self.cdd(client).submit(
                    "read", loc.disk, loc.offset, layout.block_size,
                    trace=trace,
                )
            )
        ploc = layout.parity_location(stripe)
        if ploc.disk in self.failed_disks:
            raise DataLossError(f"stripe {stripe}: parity disk also failed")
        reads.append(
            self.cdd(client).submit(
                "read", ploc.disk, ploc.offset, layout.block_size,
                trace=trace,
            )
        )
        yield self.env.all_of(reads)
        # XOR all surviving blocks to regenerate the lost one.
        yield self.cluster.nodes[client].cpu.xor(
            (len(reads)) * layout.block_size
        )

    # -- writes ------------------------------------------------------------
    def _write(self, client: int, pieces: List[Piece], trace=None):
        layout: Raid5Layout = self.layout  # type: ignore[assignment]
        by_stripe = self.sios.pieces_by_stripe(pieces)
        stripe_events = []
        for stripe, spieces in by_stripe.items():
            stripe_events.append(
                self.env.process(
                    self._write_stripe(client, stripe, spieces, trace)
                )
            )
        yield self.env.all_of(stripe_events)

    def _is_full_stripe(self, stripe: int, spieces: List[Piece]) -> bool:
        want = set(self.layout.stripe_blocks(stripe))
        have = {
            p.block
            for p in spieces
            if p.intra == 0 and p.nbytes == self.layout.block_size
        }
        return want <= have

    def _write_stripe(self, client: int, stripe: int, spieces: List[Piece],
                      trace=None):
        layout: Raid5Layout = self.layout  # type: ignore[assignment]
        bs = layout.block_size
        cpu = self.cluster.nodes[client].cpu
        tracer = _obs.TRACER
        t0 = self.env.now
        # The queued request must be released (or cancelled) even if
        # this process is interrupted while waiting for the grant, so
        # the try covers the wait itself, not just the held region.
        lock = self._stripe_lock(stripe).acquire(owner=client)
        try:
            yield lock
            if tracer.enabled:
                tracer.record(
                    LOCK_WAIT, f"node{client}.lock", t0, self.env.now,
                    trace=trace, group=stripe, client=client, scope="stripe",
                )
            ploc = layout.parity_location(stripe)
            parity_alive = ploc.disk not in self.failed_disks
            if self.full_stripe_optimization and self._is_full_stripe(
                stripe, spieces
            ):
                # Full-stripe write: parity computed in memory, no reads.
                yield cpu.xor(len(spieces) * bs)
                events = [
                    self._write_piece_to(client, p.placement, p, trace)
                    for p in spieces
                    if p.placement.disk not in self.failed_disks
                ]
                if parity_alive:
                    events.append(
                        self.cdd(client).submit(
                            "write", ploc.disk, ploc.offset, bs, trace=trace
                        )
                    )
                yield self.env.all_of(events)
                return

            # Read-modify-write.  The faithful (default) mode updates
            # parity once per modified block, as the era's block-level
            # software RAID-5 drivers did; batch mode amortizes one
            # parity read/write over the whole request's stripe share.
            groups = (
                [spieces] if self.batch_rmw else [[p] for p in spieces]
            )
            for group in groups:
                modified = sum(p.nbytes for p in group)
                # Parity I/O covers the union of the modified intra-block
                # ranges (parity bytes pair with data bytes positionally).
                plo = min(p.intra for p in group)
                phi = max(p.intra + p.nbytes for p in group)
                reads = []
                for p in group:
                    if p.placement.disk not in self.failed_disks:
                        reads.append(
                            self.cdd(client).submit(
                                "read",
                                p.placement.disk,
                                p.placement.offset + p.intra,
                                p.nbytes,
                                trace=trace,
                            )
                        )
                if parity_alive:
                    reads.append(
                        self.cdd(client).submit(
                            "read", ploc.disk, ploc.offset + plo, phi - plo,
                            trace=trace,
                        )
                    )
                if reads:
                    yield self.env.all_of(reads)
                # Two XOR passes: strip old data out of parity, add new.
                yield cpu.xor(modified, passes=2)
                writes = [
                    self._write_piece_to(client, p.placement, p, trace)
                    for p in group
                    if p.placement.disk not in self.failed_disks
                ]
                if parity_alive:
                    writes.append(
                        self.cdd(client).submit(
                            "write", ploc.disk, ploc.offset + plo, phi - plo,
                            trace=trace,
                        )
                    )
                yield self.env.all_of(writes)
        finally:
            self._stripe_lock(stripe).release(lock)


class RaidxSystem(DistributedArraySystem):
    """RAID-x: orthogonal striping with background clustered mirroring."""

    name = "raidx"
    layout_name = "raidx"

    def __init__(
        self,
        cluster,
        locking: bool = False,
        mirror_policy: MirrorPolicy | str = MirrorPolicy.BACKGROUND,
        read_local_mirror: bool = False,
        read_policy: str = "static",
    ):
        super().__init__(cluster, locking, read_policy=read_policy)
        self.mirror_policy = MirrorPolicy.parse(mirror_policy)
        self.read_local_mirror = read_local_mirror
        #: Outstanding background image-flush events.
        self._pending_flushes: List[Event] = []
        #: Mirror groups with an un-flushed image (stale-image guard).
        self._dirty_groups: Set[int] = set()
        #: Extents queued but not yet issued to disk — rewrites of the
        #: same extent are absorbed in the write-behind buffer.
        self._queued_extents: Set[Tuple[int, int, int]] = set()
        self.background_bytes = 0.0
        self.coalesced_extents = 0
        self.absorbed_rewrites = 0
        #: Vulnerability windows: seconds each image extent spent
        #: un-flushed after its data committed — the price of deferral
        #: (a data-disk failure inside the window costs redundancy,
        #: though never the data itself).
        self.vulnerability_windows: List[float] = []

    # -- reads -------------------------------------------------------------
    def _image_clean(self, block: int) -> bool:
        layout: RaidxLayout = self.layout  # type: ignore[assignment]
        mg = layout.mirror_group_of(block)
        return (
            mg.image_disk not in self.failed_disks
            and mg.group_id not in self._dirty_groups
        )

    def _read_source(self, client: int, piece: Piece) -> Optional[Placement]:
        layout: RaidxLayout = self.layout  # type: ignore[assignment]
        primary = piece.placement
        mirror = layout.redundancy_locations(piece.block)[0]
        if primary.disk not in self.failed_disks:
            if self.read_local_mirror and self._image_clean(piece.block):
                # Serve from a *local* image copy when the primary is
                # remote and the image sits on the reading node's disk.
                if (
                    self.sios.node_of_disk(primary.disk) != client
                    and self.sios.node_of_disk(mirror.disk) == client
                ):
                    return mirror
            if (
                self.read_policy == "shortest_queue"
                and self._image_clean(piece.block)
            ):
                return self._balance([primary, mirror])
            return primary
        if not self._image_clean(piece.block):
            return None  # image missing or not yet consistent
        return mirror

    # -- writes ------------------------------------------------------------
    def _write(self, client: int, pieces: List[Piece], trace=None):
        # Foreground: data blocks stripe across all disks in parallel.
        events = []
        for p in pieces:
            if p.placement.disk in self.failed_disks:
                # Degraded write: only the image will carry this block.
                continue
            events.append(
                self._write_piece_tolerant(client, p.placement, p, trace)
            )
        extents = self._image_extents(pieces)
        for g, disk, _off, _n in extents:
            if disk not in self.failed_disks:
                self._dirty_groups.add(g)
        if self.mirror_policy is MirrorPolicy.FOREGROUND:
            events.extend(self._flush_extents(client, extents, trace=trace))
            if events:
                yield self.env.all_of(events)
            return
        if events:
            yield self.env.all_of(events)
        # Background: hand the clustered image extents to the flusher;
        # rewrites of an already-queued extent are absorbed.
        self._pending_flushes.extend(
            self._flush_extents(client, extents, absorb=True, trace=trace)
        )

    def _image_extents(
        self, pieces: List[Piece]
    ) -> List[Tuple[int, int, int, int]]:
        """Coalesce image fragments into (group, disk, offset, nbytes) runs.

        Fragments of one mirror group are contiguous in image space, so a
        full group becomes a single long (n-1)-block extent — the paper's
        "image blocks gathered as a long block written into the same disk".
        """
        layout: RaidxLayout = self.layout  # type: ignore[assignment]
        bs = layout.block_size
        frags: List[Tuple[int, int, int, int]] = []
        for p in pieces:
            mg = layout.mirror_group_of(p.block)
            pos = mg.blocks.index(p.block)
            frags.append(
                (
                    mg.group_id,
                    mg.image_disk,
                    mg.image_offset + pos * bs + p.intra,
                    p.nbytes,
                )
            )
        frags.sort(key=lambda f: (f[1], f[2]))
        runs: List[Tuple[int, int, int, int]] = []
        for g, disk, off, n in frags:
            if runs and runs[-1][1] == disk and runs[-1][2] + runs[-1][3] == off:
                pg, pd, po, pn = runs[-1]
                runs[-1] = (pg, pd, po, pn + n)
            else:
                runs.append((g, disk, off, n))
        self.coalesced_extents += len(runs)
        return runs

    def _flush_extents(self, client, extents, absorb: bool = False,
                       trace=None) -> List[Event]:
        events = []
        tracer = _obs.TRACER
        for group, disk, off, nbytes in extents:
            if disk in self.failed_disks:
                continue
            key = (disk, off, nbytes)
            if absorb:
                if key in self._queued_extents:
                    # Write-behind absorption: the queued flush will
                    # carry the newer contents of this extent.
                    self.absorbed_rewrites += 1
                    if tracer.enabled:
                        tracer.count("mirror.absorbed_rewrites")
                    continue
                self._queued_extents.add(key)
            events.append(
                self.env.process(
                    self._flush_one(client, group, disk, off, nbytes, key,
                                    absorb, trace)
                )
            )
        return events

    def _flush_one(self, client, group, disk, off, nbytes, key, tracked,
                   trace=None):
        from repro.errors import DiskFailedError

        exposed_at = self.env.now
        try:
            yield from self.cdd(client).block_io(
                "write", disk, off, nbytes, priority=1, trace=trace
            )
            self.vulnerability_windows.append(self.env.now - exposed_at)
            tracer = _obs.TRACER
            if tracer.enabled:
                owner = self.sios.node_of_disk(disk)
                tracer.record(
                    MIRROR_FLUSH, f"node{owner}.mirror", exposed_at,
                    self.env.now, trace=trace, disk=disk, nbytes=nbytes,
                    deferred=tracked,
                )
        except DiskFailedError as e:
            # The image disk died under the flush: the data block still
            # lives on its primary, so mark the disk and move on.
            self.failed_disks.add(e.disk_id)
            if tracked:
                self._queued_extents.discard(key)
            return
        if tracked:
            self._queued_extents.discard(key)
        self.background_bytes += nbytes
        self._dirty_groups.discard(group)

    def drain(self):
        """Wait until every background image flush has completed."""
        while self._pending_flushes:
            pending, self._pending_flushes = self._pending_flushes, []
            yield self.env.all_of(pending)

    @property
    def pending_background_flushes(self) -> int:
        return sum(1 for e in self._pending_flushes if not e.processed)

    def vulnerability_stats(self) -> dict:
        """Mean/max/p95 of the image-flush exposure windows (seconds)."""
        w = self.vulnerability_windows
        if not w:
            return {"count": 0, "mean": 0.0, "max": 0.0, "p95": 0.0}
        ordered = sorted(w)
        return {
            "count": len(w),
            "mean": sum(w) / len(w),
            "max": ordered[-1],
            "p95": ordered[max(0, int(0.95 * len(ordered)) - 1)],
        }


class NfsSystem(StorageSystem):
    """Central-server baseline: every chunk is a user-level RPC.

    The server (node 0 by default) stripes its export RAID-0 style over
    its own local disks.  Transfers move in rsize/wsize chunks — 8 KiB,
    the NFSv2-over-UDP default of the paper's era — each a full RPC with
    user-level processing at both ends.
    """

    name = "nfs"

    def __init__(
        self,
        cluster,
        server: int = 0,
        transfer_size: int = 8 * KiB,
        server_cache_mb: int = 128,
        stable_writes: bool = True,
    ):
        """``server_cache_mb`` models the server's buffer cache: reads of
        recently touched blocks skip the disk (network/CPU-bound), while
        writes are stable — synchronously on disk — per NFSv2 semantics.
        Set 0 to disable (fully cold server).  ``stable_writes=False``
        models NFSv3 asynchronous writes (chunks pipeline like reads,
        with the commit deferred)."""
        super().__init__(cluster)
        if transfer_size <= 0:
            raise ConfigurationError("transfer size must be positive")
        self.server = server
        self.transfer_size = transfer_size
        self.stable_writes = stable_writes
        cfg = cluster.config
        self._server_disks = list(cluster.nodes[server].disk_ids)
        self._block_size = cfg.geometry.block_size
        self._rows = cfg.disk.capacity_bytes // self._block_size
        from repro.cluster.cache import BlockCache

        cache_blocks = (server_cache_mb * 1_000_000) // self._block_size
        self._cache = (
            BlockCache(server, capacity_blocks=cache_blocks)
            if cache_blocks > 0
            else None
        )

    @property
    def server_cache(self):
        """The server's buffer cache (or None when disabled)."""
        return self._cache

    @property
    def capacity(self) -> int:
        return self._rows * self._block_size * len(self._server_disks)

    @property
    def block_size(self) -> int:
        return self._block_size

    def _server_location(self, block: int) -> Tuple[int, int]:
        """(global disk id, byte offset) of an export block — RAID-0
        striping across the server's local disks."""
        width = len(self._server_disks)
        disk = self._server_disks[block % width]
        return disk, (block // width) * self._block_size

    def io(self, client: int, op: str, offset: int, nbytes: int):
        if offset < 0 or nbytes < 0 or offset + nbytes > self.capacity:
            raise ConfigurationError("request outside the NFS export")
        tracer = _obs.TRACER
        trace = tracer.new_trace() if tracer.enabled else None
        t0 = self.env.now
        pos = offset
        end = offset + nbytes
        if op == "write" and self.stable_writes:
            # NFSv2 stable writes: each chunk commits synchronously
            # before the next is issued — no client-side write-behind.
            while pos < end:
                take = min(self.transfer_size, end - pos)
                yield from self._rpc(client, op, pos, take, trace)
                pos += take
        else:
            chunks = []
            while pos < end:
                take = min(self.transfer_size, end - pos)
                chunks.append(
                    self.env.process(self._rpc(client, op, pos, take, trace))
                )
                pos += take
            if chunks:
                yield self.env.all_of(chunks)
        if op == "read":
            self.bytes_read += nbytes
        else:
            self.bytes_written += nbytes
        if tracer.enabled:
            tracer.record(
                REQUEST, f"node{client}.request", t0, self.env.now,
                trace=trace, op=op, offset=offset, nbytes=nbytes,
                arch=self.name,
            )

    def _rpc(self, client: int, op: str, offset: int, nbytes: int,
             trace=None):
        transport = self.cluster.transport
        server_node = self.cluster.nodes[self.server]
        client_node = self.cluster.nodes[client]
        # Client-side user-level RPC processing.
        yield client_node.cpu.driver_entry(kernel_level=False)
        req_size = HEADER_BYTES + (nbytes if op == "write" else 0)
        yield from transport.message(
            MessageKind.RPC_REQ, client, self.server, req_size, trace=trace
        )
        # Server-side user-level processing + local disk I/O.
        yield server_node.cpu.driver_entry(kernel_level=False)
        from repro.io.request import split_into_blocks

        for block, intra, take in split_into_blocks(
            offset, nbytes, self.block_size
        ):
            if op == "read" and self._cache is not None:
                if self._cache.lookup(block):
                    # Buffer-cache hit: a memory copy instead of disk I/O.
                    yield server_node.cpu.memcpy(take)
                    continue
            disk, disk_off = self._server_location(block)
            yield from server_node.disk_io(
                disk, op, disk_off + intra, take, trace=trace
            )
            if self._cache is not None:
                self._cache.insert(block)
        reply_size = HEADER_BYTES + (nbytes if op == "read" else 0)
        yield from transport.message(
            MessageKind.RPC_REPLY, self.server, client, reply_size,
            trace=trace,
        )


ARCHITECTURES = {
    "raid0": Raid0System,
    "raid5": Raid5System,
    "raid10": Raid10System,
    "chained": ChainedSystem,
    "raidx": RaidxSystem,
    "nfs": NfsSystem,
}

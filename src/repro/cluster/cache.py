"""Per-node block cache with write-invalidate consistency.

Used by the file-system layer (Andrew benchmark): reads hit the local
cache when possible; writes invalidate the block on every peer that
cached it, via small control messages — the data-consistency behaviour
the CDDs maintain "at the data block level" (paper §4).

The raw parallel-I/O benchmarks (Fig. 5) run uncached, matching the
paper's "all files are uncached" methodology.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Set


class BlockCache:
    """An LRU cache of logical block numbers for one node."""

    def __init__(self, node_id: int, capacity_blocks: int = 2048):
        if capacity_blocks <= 0:
            raise ValueError("cache capacity must be positive")
        self.node_id = node_id
        self.capacity_blocks = capacity_blocks
        self._lru: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __contains__(self, block: int) -> bool:
        return block in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    def lookup(self, block: int) -> bool:
        """True on hit (and refreshes recency)."""
        if block in self._lru:
            self._lru.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, block: int) -> None:
        """Cache a block, evicting LRU entries as needed."""
        if block in self._lru:
            self._lru.move_to_end(block)
            return
        while len(self._lru) >= self.capacity_blocks:
            self._lru.popitem(last=False)
        self._lru[block] = True

    def invalidate(self, block: int) -> bool:
        """Drop a block (returns True if it was cached)."""
        if self._lru.pop(block, None) is not None:
            self.invalidations += 1
            return True
        return False

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheDirectory:
    """Tracks which nodes cache which blocks, to target invalidations.

    A simplification of the replicated lock-group table's knowledge: the
    simulation keeps one authoritative directory instead of n replicas,
    and charges invalidation messages per caching peer.
    """

    def __init__(self, caches: List[BlockCache]):
        self.caches = caches
        self._where: Dict[int, Set[int]] = {}

    def note_cached(self, node: int, block: int) -> None:
        self.caches[node].insert(block)
        self._where.setdefault(block, set()).add(node)

    def lookup(self, node: int, block: int) -> bool:
        return self.caches[node].lookup(block)

    def invalidate_peers(self, writer: int, block: int) -> List[int]:
        """Invalidate ``block`` on all peers of ``writer``; returns the
        list of nodes that actually held it (for message charging)."""
        holders = self._where.get(block, set())
        touched = []
        for node in sorted(holders):
            if node == writer:
                continue
            if self.caches[node].invalidate(block):
                touched.append(node)
        self._where[block] = {writer} if writer in holders else set()
        return touched

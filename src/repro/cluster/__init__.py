"""Cluster layer: single I/O space, cooperative disk drivers, protocols.

This package turns the hardware models into the paper's serverless
storage cluster: every node runs a cooperative disk driver (CDD) whose
client module redirects block I/O to the storage-manager module of the
disk's owner, over the switched fabric, with consistency maintained by a
replicated lock-group table — no central file server.
"""

from repro.cluster.message import Message, MessageKind, MessageStats, HEADER_BYTES
from repro.cluster.transport import Transport
from repro.cluster.consistency import DistributedLockManager, LockGroupTable
from repro.cluster.cdd import CooperativeDiskDriver
from repro.cache import BlockCache  # moved to its own layer in PR 9
from repro.cluster.sios import SingleIOSpace, Piece
from repro.cluster.cluster import Cluster, build_cluster
from repro.cluster.monitoring import ClusterMonitor, MonitorLog
from repro.cluster.systems import (
    ARCHITECTURES,
    ChainedSystem,
    DistributedArraySystem,
    NfsSystem,
    Raid0System,
    Raid5System,
    Raid10System,
    RaidxSystem,
    StorageSystem,
)

__all__ = [
    "ARCHITECTURES",
    "BlockCache",
    "ChainedSystem",
    "Cluster",
    "ClusterMonitor",
    "MonitorLog",
    "CooperativeDiskDriver",
    "DistributedArraySystem",
    "DistributedLockManager",
    "HEADER_BYTES",
    "LockGroupTable",
    "Message",
    "MessageKind",
    "MessageStats",
    "NfsSystem",
    "Piece",
    "Raid0System",
    "Raid10System",
    "Raid5System",
    "RaidxSystem",
    "SingleIOSpace",
    "StorageSystem",
    "Transport",
    "build_cluster",
]

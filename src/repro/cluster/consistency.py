"""Data-consistency module: the replicated lock-group table.

The paper (§4): "Each record in this table corresponds to a group of
data blocks that have been granted to a specific CDD client with write
permissions.  The write locks in each record are granted and released
atomically.  This lock-group table is replicated among the data
consistency modules in the CDDs."

Model: block groups hash to a *home* CDD that orders grant/release for
the group; the grant is then (optionally) broadcast to the other
replicas.  Acquiring a group held by another client blocks FIFO.  All
grant traffic uses small control messages at kernel level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.message import ACK_BYTES, MessageKind
from repro.errors import LockProtocolError
from repro.obs import runtime as _obs
from repro.obs.trace import LOCK_WAIT
from repro.sim.core import Environment
from repro.sim.sync import Mutex


@dataclass
class LockRecord:
    """One lock-group table record: a granted block group."""

    group: int
    owner_node: int
    granted_at: float


class LockGroupTable:
    """The replicated table of granted write-lock groups.

    Every CDD holds a replica; in the simulation all replicas share this
    object (replication cost is charged as messages by the manager), and
    the table tracks what each replica would contain.
    """

    def __init__(self) -> None:
        self._records: Dict[int, LockRecord] = {}
        self.grants = 0
        self.releases = 0

    def record_grant(self, group: int, owner: int, now: float) -> None:
        if group in self._records:
            raise LockProtocolError(
                f"group {group} already granted to node "
                f"{self._records[group].owner_node}"
            )
        self._records[group] = LockRecord(group, owner, now)
        self.grants += 1

    def record_release(self, group: int, owner: int) -> None:
        rec = self._records.get(group)
        if rec is None or rec.owner_node != owner:
            raise LockProtocolError(
                f"release of group {group} not held by node {owner}"
            )
        del self._records[group]
        self.releases += 1

    def holder(self, group: int) -> Optional[int]:
        rec = self._records.get(group)
        return rec.owner_node if rec else None

    def held_groups(self) -> Set[int]:
        return set(self._records)

    def __len__(self) -> int:
        return len(self._records)


class DistributedLockManager:
    """Grant/release write-lock groups with home-node ordering.

    ``lock_group_blocks`` logical blocks form one lockable group; the
    home CDD of group ``g`` is node ``g mod n``.
    """

    def __init__(
        self,
        env: Environment,
        transport,
        n_nodes: int,
        lock_group_blocks: int = 64,
        broadcast_grants: bool = False,
    ):
        self.env = env
        self.transport = transport
        self.n_nodes = n_nodes
        self.lock_group_blocks = lock_group_blocks
        self.broadcast_grants = broadcast_grants
        self.table = LockGroupTable()
        self._mutexes: Dict[int, Mutex] = {}

    # -- addressing ------------------------------------------------------
    def group_of_block(self, block: int) -> int:
        return block // self.lock_group_blocks

    def groups_for_blocks(self, blocks) -> List[int]:
        """Sorted, deduplicated lock groups covering ``blocks`` —
        sorted order gives global acquisition order (deadlock freedom)."""
        return sorted({self.group_of_block(b) for b in blocks})

    def home_of_group(self, group: int) -> int:
        return group % self.n_nodes

    def _mutex(self, group: int) -> Mutex:
        m = self._mutexes.get(group)
        if m is None:
            m = Mutex(self.env)
            self._mutexes[group] = m
        return m

    # -- protocol ----------------------------------------------------------
    def acquire(self, client: int, blocks, trace=None) -> "object":
        """Process generator: acquire write locks on all groups covering
        ``blocks`` in global order; returns an opaque handle for release."""
        groups = self.groups_for_blocks(blocks)
        held: List[Tuple[int, object]] = []
        tracer = _obs.TRACER
        try:
            for g in groups:
                home = self.home_of_group(g)
                if home != client:
                    yield from self.transport.message(
                        MessageKind.LOCK_REQ, client, home, ACK_BYTES,
                        trace=trace,
                    )
                # Ownership of the request moves into `held` the moment
                # it exists: the rollback below is then the single place
                # that can ever abandon a grant mid-protocol.
                req = self._mutex(g).acquire(owner=client)
                held.append((g, req))
                t0 = self.env.now
                yield req
                if tracer.enabled:
                    tracer.record(
                        LOCK_WAIT, f"node{home}.lock", t0, self.env.now,
                        trace=trace, group=g, client=client,
                    )
                self.table.record_grant(g, client, self.env.now)
                if home != client:
                    yield from self.transport.message(
                        MessageKind.LOCK_GRANT, home, client, ACK_BYTES,
                        trace=trace,
                    )
                if self.broadcast_grants:
                    # Replicate the record to the other consistency modules.
                    for peer in range(self.n_nodes):
                        if peer not in (home, client):
                            self.transport.send(
                                MessageKind.LOCK_GRANT, home, peer, ACK_BYTES,
                                trace=trace,
                            )
        except BaseException:
            # Atomic grant (§4): a failure or interrupt mid-protocol may
            # not strand the groups already granted.  Undo the table
            # records and release (or cancel) every request, newest
            # first, then let the failure propagate to the caller.
            for g, req in reversed(held):
                if self.table.holder(g) == client:
                    self.table.record_release(g, client)
                self._mutex(g).release(req)
            raise
        return LockHandle(client, held)

    def release(self, handle: "LockHandle", trace=None):
        """Process generator: release all groups of ``handle``."""
        for g, req in reversed(handle.held):
            self.table.record_release(g, handle.client)
            self._mutex(g).release(req)
            home = self.home_of_group(g)
            if home != handle.client:
                # Release notification rides an async control message.
                self.transport.send(
                    MessageKind.LOCK_RELEASE, handle.client, home, ACK_BYTES,
                    trace=trace,
                )
        handle.held = []
        return
        yield  # pragma: no cover - keeps this a generator


@dataclass
class LockHandle:
    """Opaque receipt for a set of granted lock groups."""

    client: int
    held: List[Tuple[int, object]] = field(default_factory=list)

    @property
    def groups(self) -> List[int]:
        return [g for g, _ in self.held]

"""Time-series instrumentation of a running cluster.

A :class:`ClusterMonitor` samples utilization and queue metrics on a
fixed simulated-time cadence — the data behind "where did the time go"
analyses and the terminal charts in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class Sample:
    """One instant's cluster-wide metrics."""

    time: float
    disk_utilization: float
    network_utilization: float
    cpu_utilization: float
    max_disk_queue: int
    pending_flushes: int


@dataclass
class MonitorLog:
    samples: List[Sample] = field(default_factory=list)

    def series(self, metric: str) -> List[float]:
        return [getattr(s, metric) for s in self.samples]

    def times(self) -> List[float]:
        return [s.time for s in self.samples]

    def peak(self, metric: str) -> float:
        vals = self.series(metric)
        return max(vals) if vals else float("nan")

    def __len__(self) -> int:
        return len(self.samples)


class ClusterMonitor:
    """Samples a cluster every ``interval`` simulated seconds.

    Utilizations are *interval-local*: the busy time accrued since the
    previous sample divided by the interval, not the running average —
    so the series shows load changes (ramp-up, failures, drain).
    """

    def __init__(self, cluster, interval: float = 0.05):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        self.interval = interval
        self.log = MonitorLog()
        self._last_disk_busy = 0.0
        self._last_net_busy = 0.0
        self._last_cpu_busy = 0.0
        self._last_time = 0.0
        self._proc = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Arm the sampling process (idempotent)."""
        if self._proc is None:
            # Re-baseline so a restart doesn't fold the stopped gap into
            # its first interval.
            (
                self._last_disk_busy,
                self._last_net_busy,
                self._last_cpu_busy,
            ) = self._totals()[:3]
            self._last_time = self.cluster.env.now
            self._proc = self.cluster.env.process(self._run())

    def stop(self) -> None:
        """Stop sampling (safe to call when never started).

        Flushes one final sample covering the partial interval since the
        last cadence tick, normalized by the actual elapsed time — the
        tail of a run is not silently dropped.
        """
        if self._proc is not None:
            if self._proc.is_alive:
                self._proc.interrupt()
            elapsed = self.cluster.env.now - self._last_time
            if elapsed > 0:
                self._sample(elapsed)
        self._proc = None

    # -- internals -------------------------------------------------------
    def _totals(self):
        disks = self.cluster.all_disks()
        disk_busy = sum(d.stats.busy_time for d in disks)
        net_busy = sum(
            nic.tx.busy_time + nic.rx.busy_time
            for nic in self.cluster.network.nics
        )
        cpu_busy = sum(
            node.cpu._work.busy_time for node in self.cluster.nodes
        )
        max_queue = max((d.queue_depth for d in disks), default=0)
        return disk_busy, net_busy, cpu_busy, max_queue

    def _sample(self, elapsed: float) -> None:
        """Append one interval-local sample covering ``elapsed`` seconds."""
        cluster = self.cluster
        n_disks = max(1, cluster.n_disks)
        n_ports = max(1, 2 * len(cluster.network.nics))
        n_cpus = max(1, len(cluster.nodes))
        disk_busy, net_busy, cpu_busy, max_queue = self._totals()
        pending = getattr(cluster.storage, "pending_background_flushes", 0)
        self.log.samples.append(
            Sample(
                time=cluster.env.now,
                disk_utilization=min(
                    1.0,
                    (disk_busy - self._last_disk_busy)
                    / (elapsed * n_disks),
                ),
                network_utilization=min(
                    1.0,
                    (net_busy - self._last_net_busy) / (elapsed * n_ports),
                ),
                cpu_utilization=min(
                    1.0,
                    (cpu_busy - self._last_cpu_busy) / (elapsed * n_cpus),
                ),
                max_disk_queue=max_queue,
                pending_flushes=pending,
            )
        )
        self._last_disk_busy = disk_busy
        self._last_net_busy = net_busy
        self._last_cpu_busy = cpu_busy
        self._last_time = cluster.env.now

    def _run(self):
        from repro.sim.events import Interrupt

        while True:
            try:
                yield float(self.interval)
            except Interrupt:
                return
            self._sample(self.interval)
